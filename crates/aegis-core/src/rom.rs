//! Precomputed lookup tables mirroring the paper's wired logic.
//!
//! The paper implements Aegis with three ROM structures:
//!
//! - Figure 3: `(slope, fault address) → group ID` — [`GroupRom`];
//! - Figure 4: `(slope, inversion vector) → bits to invert` —
//!   [`InversionRom`];
//! - §2.4: the `n×n` "on which slope do these two bits collide" ROM used by
//!   Aegis-rw — [`CollisionRom`].
//!
//! A software table computed once at construction has the same
//! input→output behaviour as the combinational circuits in the figures.

use crate::Rectangle;
use bitblock::BitBlock;

/// `(slope, offset) → group ID` table (the paper's Figure 3 logic).
#[derive(Debug, Clone)]
pub struct GroupRom {
    /// `table[slope * bits + offset]` = group.
    table: Vec<u16>,
    bits: usize,
    slopes: usize,
}

impl GroupRom {
    /// Builds the table for a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle has more than `u16::MAX` groups (never the
    /// case for realistic block sizes).
    #[must_use]
    pub fn new(rect: &Rectangle) -> Self {
        assert!(rect.groups() <= u16::MAX as usize);
        let bits = rect.bits();
        let slopes = rect.slopes();
        let mut table = Vec::with_capacity(bits * slopes);
        for slope in 0..slopes {
            for offset in 0..bits {
                table.push(rect.group_of(offset, slope) as u16);
            }
        }
        Self {
            table,
            bits,
            slopes,
        }
    }

    /// Group of `offset` under `slope`.
    ///
    /// # Panics
    ///
    /// Panics if either input is out of range.
    #[must_use]
    pub fn group_of(&self, offset: usize, slope: usize) -> usize {
        assert!(
            offset < self.bits && slope < self.slopes,
            "GroupRom index out of range"
        );
        self.table[slope * self.bits + offset] as usize
    }
}

/// `(slope, group) → member-bit mask` table (the paper's Figure 4 logic).
#[derive(Debug, Clone)]
pub struct InversionRom {
    /// `masks[slope * groups + group]` = n-bit mask of the group's members.
    masks: Vec<BitBlock>,
    groups: usize,
    slopes: usize,
    bits: usize,
}

impl InversionRom {
    /// Builds the mask table for a rectangle.
    #[must_use]
    pub fn new(rect: &Rectangle) -> Self {
        let groups = rect.groups();
        let slopes = rect.slopes();
        let mut masks = Vec::with_capacity(groups * slopes);
        for slope in 0..slopes {
            for group in 0..groups {
                masks.push(BitBlock::from_indices(
                    rect.bits(),
                    rect.group_members(slope, group),
                ));
            }
        }
        Self {
            masks,
            groups,
            slopes,
            bits: rect.bits(),
        }
    }

    /// Member mask of one group under one slope.
    ///
    /// # Panics
    ///
    /// Panics if either input is out of range.
    #[must_use]
    pub fn group_mask(&self, slope: usize, group: usize) -> &BitBlock {
        assert!(
            slope < self.slopes && group < self.groups,
            "InversionRom index out of range"
        );
        &self.masks[slope * self.groups + group]
    }

    /// Combined mask of every group whose bit is set in `inversion_vector`
    /// — exactly the bits written in inverted form (Figure 4's output).
    ///
    /// # Panics
    ///
    /// Panics if `slope` is out of range or the vector width differs from
    /// the group count.
    #[must_use]
    pub fn inversion_mask(&self, slope: usize, inversion_vector: &BitBlock) -> BitBlock {
        assert_eq!(
            inversion_vector.len(),
            self.groups,
            "inversion vector width must equal the group count"
        );
        let mut mask = BitBlock::zeros(self.bits);
        for group in inversion_vector.ones() {
            mask |= self.group_mask(slope, group);
        }
        mask
    }
}

/// The §2.4 ROM: for every pair of bit offsets, the unique slope on which
/// they collide (`u16::MAX` encodes "never collide" — same-column pairs).
#[derive(Debug, Clone)]
pub struct CollisionRom {
    table: Vec<u16>,
    bits: usize,
}

const NO_COLLISION: u16 = u16::MAX;

impl CollisionRom {
    /// Builds the `n×n` collision table.
    #[must_use]
    pub fn new(rect: &Rectangle) -> Self {
        let bits = rect.bits();
        let mut table = vec![NO_COLLISION; bits * bits];
        for o1 in 0..bits {
            for o2 in (o1 + 1)..bits {
                if let Some(slope) = rect.collision_slope(o1, o2) {
                    table[o1 * bits + o2] = slope as u16;
                    table[o2 * bits + o1] = slope as u16;
                }
            }
        }
        Self { table, bits }
    }

    /// Slope on which two distinct bits collide, if any.
    ///
    /// # Panics
    ///
    /// Panics if either offset is out of range or they are equal.
    #[must_use]
    pub fn collision_slope(&self, offset1: usize, offset2: usize) -> Option<usize> {
        assert!(
            offset1 < self.bits && offset2 < self.bits,
            "offset out of range"
        );
        assert_ne!(offset1, offset2, "a bit always collides with itself");
        let entry = self.table[offset1 * self.bits + offset2];
        (entry != NO_COLLISION).then_some(entry as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect() -> Rectangle {
        Rectangle::new(5, 7, 32).unwrap()
    }

    #[test]
    fn group_rom_matches_geometry() {
        let r = rect();
        let rom = GroupRom::new(&r);
        for slope in 0..r.slopes() {
            for offset in 0..r.bits() {
                assert_eq!(rom.group_of(offset, slope), r.group_of(offset, slope));
            }
        }
    }

    #[test]
    fn inversion_rom_masks_partition_the_block() {
        let r = rect();
        let rom = InversionRom::new(&r);
        for slope in 0..r.slopes() {
            let mut union = BitBlock::zeros(r.bits());
            let mut total = 0;
            for group in 0..r.groups() {
                let mask = rom.group_mask(slope, group);
                total += mask.count_ones();
                union |= mask;
            }
            assert_eq!(total, r.bits(), "groups overlap at slope {slope}");
            assert_eq!(union.count_ones(), r.bits());
        }
    }

    #[test]
    fn inversion_mask_unions_selected_groups() {
        let r = rect();
        let rom = InversionRom::new(&r);
        let mut vector = BitBlock::zeros(r.groups());
        vector.set(0, true);
        vector.set(3, true);
        let mask = rom.inversion_mask(2, &vector);
        let expected = rom.group_mask(2, 0) | rom.group_mask(2, 3);
        assert_eq!(mask, expected);
    }

    #[test]
    fn empty_vector_gives_empty_mask() {
        let r = rect();
        let rom = InversionRom::new(&r);
        assert_eq!(
            rom.inversion_mask(0, &BitBlock::zeros(r.groups()))
                .count_ones(),
            0
        );
    }

    #[test]
    fn collision_rom_matches_geometry() {
        let r = rect();
        let rom = CollisionRom::new(&r);
        for o1 in 0..r.bits() {
            for o2 in 0..r.bits() {
                if o1 != o2 {
                    assert_eq!(rom.collision_slope(o1, o2), r.collision_slope(o1, o2));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "collides with itself")]
    fn collision_rom_rejects_identical_offsets() {
        let rom = CollisionRom::new(&rect());
        let _ = rom.collision_slope(3, 3);
    }
}
