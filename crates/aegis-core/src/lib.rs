//! The Aegis stuck-at-fault recovery scheme for phase-change memory.
//!
//! Reproduction of the primary contribution of *Aegis: Partitioning Data
//! Block for Efficient Recovery of Stuck-at-Faults in Phase Change Memory*
//! (Fan, Jiang, Shu, Zhang, Zheng — MICRO-46, 2013).
//!
//! ## The idea
//!
//! Inversion-based recovery partitions a data block into groups and stores
//! a group inverted when that masks the stuck cells inside it. Everything
//! hinges on the *partition scheme*. Aegis places the block's bits on an
//! `A×B` rectangle (`A ≤ B`, `B` prime) and uses lines of common slope as
//! groups: changing the slope re-partitions the block, and — because two
//! points determine a line — any two bits share a group under **at most
//! one** slope ([`Rectangle`], Theorems 1–2). A block therefore needs only
//! `C(f,2)+1` candidate slopes to be guaranteed a collision-free
//! configuration for `f` faults, with a constant `B` groups instead of
//! SAFER's exponential group growth.
//!
//! ## What this crate provides
//!
//! - [`Rectangle`]: the partition geometry with the paper's theorems
//!   enforced as tested invariants;
//! - [`rom`]: the precomputed lookup structures of the paper's Figures 3–4
//!   and §2.4;
//! - [`AegisCodec`], [`AegisRwCodec`], [`AegisRwPCodec`]: functional
//!   encoders/decoders driving simulated PCM cells
//!   ([`pcm_sim::PcmBlock`]);
//! - [`AegisPolicy`], [`AegisRwPolicy`], [`AegisRwPPolicy`]: `O(f²)` Monte
//!   Carlo predicates, property-tested equivalent to the codecs;
//! - [`cost`]: the closed-form per-block metadata costs of Table 1.
//!
//! # Examples
//!
//! ```
//! use aegis_core::{AegisCodec, Rectangle};
//! use bitblock::BitBlock;
//! use pcm_sim::codec::StuckAtCodec;
//! use pcm_sim::PcmBlock;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Protect a 512-bit block with the Aegis 17×31 formation.
//! let mut codec = AegisCodec::new(Rectangle::new(17, 31, 512)?);
//! let mut block = PcmBlock::pristine(512);
//!
//! // Wear injects stuck-at faults over time…
//! block.force_stuck(37, true);
//! block.force_stuck(245, false);
//!
//! // …which the codec masks via group inversion, transparently.
//! let data = BitBlock::from_indices(512, [5usize, 37, 400]);
//! codec.write(&mut block, &data)?;
//! assert_eq!(codec.read(&block), data);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod geometry;
mod predicate;

pub mod analysis;
pub mod batch;
pub mod cost;
pub mod primes;
pub mod rom;

pub use codec::{AegisCodec, AegisRwCodec, AegisRwPCodec};
pub use geometry::{GeometryError, Point, Rectangle};
pub use predicate::{AegisPolicy, AegisRwPPolicy, AegisRwPolicy};
