//! Hardware-cost model: the closed-form bit counts behind the paper's
//! Table 1.
//!
//! Table 1 reports, for each hard FTC 1–10 and a 512-bit block, the
//! per-block metadata bits of ECP, SAFER, Aegis, Aegis-rw and Aegis-rw-p.
//! The ECP and SAFER formulas are reconstructed from their papers and
//! validated against every value the Aegis paper prints; the Aegis formulas
//! come from §2.3–2.4.
//!
//! One paper-internal inconsistency is preserved deliberately: Table 1's
//! Aegis-rw cost for hard FTC 10 assumes `B = 23`, although the text's own
//! requirement `⌊f/2⌋·⌈f/2⌉ + 1 = 26 ≤ B` would force `B = 29`. Both the
//! printed value ([`aegis_rw_table1_cost`]) and the self-consistent one
//! ([`aegis_rw_cost`]) are exposed.

use crate::primes::next_prime_at_least;

/// `⌈log₂ n⌉`, with `ceil_log2(1) == 0`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn ceil_log2(n: usize) -> usize {
    assert!(n > 0, "log2 of zero");
    (n - 1).checked_ilog2().map_or(0, |b| b as usize + 1)
}

/// Address bits of an `n`-bit block.
#[must_use]
fn address_bits(block_bits: usize) -> usize {
    ceil_log2(block_bits)
}

/// ECP-N per-block cost: `N` entries of (address pointer + replacement bit)
/// plus one full/valid bit — `N·(⌈log₂n⌉ + 1) + 1`.
///
/// # Examples
///
/// ```
/// use aegis_core::cost::ecp_cost;
/// assert_eq!(ecp_cost(6, 512), 61); // the paper's ECP6 annotation
/// ```
#[must_use]
pub fn ecp_cost(pointers: usize, block_bits: usize) -> usize {
    pointers * (address_bits(block_bits) + 1) + 1
}

/// SAFER cost for `2^m` partition groups on an `n`-bit block:
/// `(2^m − 1)` inversion bits, `m` stored bit-position selectors of
/// `⌈log₂⌈log₂n⌉⌉` bits each, a `⌈log₂(m+1)⌉`-bit count of selectors in
/// use, and one fail bit.
///
/// Reproduces every SAFER value of the paper's Table 1 (m = 0..=9,
/// 512-bit blocks → 1, 7, 14, 22, 35, 55, 91, 159, 292, 552).
#[must_use]
pub fn safer_cost(m: usize, block_bits: usize) -> usize {
    (1 << m) - 1 + m * ceil_log2(address_bits(block_bits)) + ceil_log2(m + 1) + 1
}

/// SAFER's hard FTC with `2^m` groups is `m + 1`; this returns the Table 1
/// cost for a required hard FTC.
#[must_use]
pub fn safer_table1_cost(hard_ftc: usize, block_bits: usize) -> usize {
    safer_cost(hard_ftc.saturating_sub(1), block_bits)
}

/// Number of SAFER groups used to reach a hard FTC (the paper's `N` row).
#[must_use]
pub fn safer_groups_for_ftc(hard_ftc: usize) -> usize {
    1 << hard_ftc.saturating_sub(1)
}

/// The smallest admissible `B` for an `n`-bit block: prime, at least
/// `⌈√n⌉` (so some `A ≤ B` gives `A·B ≥ n`), and at least `min_slopes`.
#[must_use]
pub fn minimal_b(block_bits: usize, min_slopes: usize) -> usize {
    let geometric = (block_bits as f64).sqrt().ceil() as usize;
    next_prime_at_least(geometric.max(min_slopes))
}

/// Candidate slopes base Aegis needs for hard FTC `f`: `C(f,2) + 1`.
#[must_use]
pub fn aegis_slopes_needed(hard_ftc: usize) -> usize {
    hard_ftc * (hard_ftc - 1) / 2 + 1
}

/// Candidate slopes Aegis-rw needs for hard FTC `f`:
/// `⌊f/2⌋·⌈f/2⌉ + 1` (the worst W/R split).
#[must_use]
pub fn aegis_rw_slopes_needed(hard_ftc: usize) -> usize {
    (hard_ftc / 2) * hard_ftc.div_ceil(2) + 1
}

/// Base Aegis minimal cost for a hard FTC (Table 1 row "Aegis"): slope
/// counter of `⌈log₂(C(f,2)+1)⌉` bits plus the `B`-bit inversion vector,
/// with `B` the smallest admissible prime ≥ `C(f,2)+1`.
///
/// # Examples
///
/// ```
/// use aegis_core::cost::aegis_table1_cost;
/// // Table 1: 23, 24, 25, 26, 27, 27, 28, 34, 43, 53.
/// let row: Vec<usize> = (1..=10).map(|f| aegis_table1_cost(f, 512)).collect();
/// assert_eq!(row, [23, 24, 25, 26, 27, 27, 28, 34, 43, 53]);
/// ```
///
/// # Panics
///
/// Panics if `hard_ftc == 0`.
#[must_use]
pub fn aegis_table1_cost(hard_ftc: usize, block_bits: usize) -> usize {
    assert!(hard_ftc > 0, "hard FTC must be at least 1");
    let slopes = aegis_slopes_needed(hard_ftc);
    ceil_log2(slopes) + minimal_b(block_bits, slopes)
}

/// Aegis-rw cost from the §2.4 model: the slope counter shrinks to
/// `⌈log₂(⌊f/2⌋·⌈f/2⌉+1)⌉` bits and `B` stays at the geometric minimum.
///
/// The paper's printed Table 1 row ([`PAPER_TABLE1_AEGIS_RW`]) differs from
/// this model by one counter bit at hard FTC 5 and 7 and ignores that hard
/// FTC 10 needs 26 > 23 slopes; see EXPERIMENTS.md for the reconciliation.
#[must_use]
pub fn aegis_rw_table1_cost(hard_ftc: usize, block_bits: usize) -> usize {
    assert!(hard_ftc > 0, "hard FTC must be at least 1");
    let b = minimal_b(block_bits, 0);
    ceil_log2(aegis_rw_slopes_needed(hard_ftc)) + b
}

/// The Aegis-rw row exactly as printed in the paper's Table 1 (512-bit
/// blocks, hard FTC 1..=10). Kept verbatim because no single formula
/// reproduces it (see [`aegis_rw_table1_cost`]).
pub const PAPER_TABLE1_AEGIS_RW: [usize; 10] = [23, 24, 25, 26, 27, 27, 28, 28, 28, 28];

/// The Aegis row as printed in the paper's Table 1 (512-bit blocks).
pub const PAPER_TABLE1_AEGIS: [usize; 10] = [23, 24, 25, 26, 27, 27, 28, 34, 43, 53];

/// The Aegis-rw-p row as printed in the paper's Table 1 (512-bit blocks).
pub const PAPER_TABLE1_AEGIS_RW_P: [usize; 10] = [1, 8, 9, 15, 15, 21, 21, 27, 27, 32];

/// Self-consistent Aegis-rw cost: like [`aegis_rw_table1_cost`] but `B` is
/// raised to actually provide the `⌊f/2⌋·⌈f/2⌉+1` slopes the guarantee
/// needs.
#[must_use]
pub fn aegis_rw_cost(hard_ftc: usize, block_bits: usize) -> usize {
    assert!(hard_ftc > 0, "hard FTC must be at least 1");
    let slopes = aegis_rw_slopes_needed(hard_ftc);
    ceil_log2(slopes) + minimal_b(block_bits, slopes)
}

/// Aegis-rw-p cost for a hard FTC (Table 1 row "Aegis-rw-p"):
/// `p = ⌊f/2⌋` group pointers of `⌈log₂B⌉` bits, a slope counter of
/// `⌈log₂(⌊f/2⌋·⌈f/2⌉+1)⌉` bits, a case flag and a pointers-in-use flag.
/// Hard FTC 1 is the special case needing a single inversion bit.
///
/// # Examples
///
/// ```
/// use aegis_core::cost::aegis_rw_p_table1_cost;
/// // Table 1: 1, 8, 9, 15, 15, 21, 21, 27, 27, 32.
/// let row: Vec<usize> = (1..=10).map(|f| aegis_rw_p_table1_cost(f, 512)).collect();
/// assert_eq!(row, [1, 8, 9, 15, 15, 21, 21, 27, 27, 32]);
/// ```
#[must_use]
pub fn aegis_rw_p_table1_cost(hard_ftc: usize, block_bits: usize) -> usize {
    assert!(hard_ftc > 0, "hard FTC must be at least 1");
    if hard_ftc == 1 {
        return 1;
    }
    let b = minimal_b(block_bits, 0);
    let pointers = hard_ftc / 2;
    ceil_log2(aegis_rw_slopes_needed(hard_ftc)) + pointers * ceil_log2(b) + 2
}

/// One row set of Table 1 for a given hard FTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Hard fault-tolerance capability this row is provisioned for.
    pub hard_ftc: usize,
    /// ECP cost in bits.
    pub ecp: usize,
    /// SAFER cost in bits.
    pub safer: usize,
    /// SAFER group count (the paper's `N` row).
    pub safer_groups: usize,
    /// Base Aegis cost in bits.
    pub aegis: usize,
    /// Aegis-rw cost in bits (as printed in the paper).
    pub aegis_rw: usize,
    /// Aegis-rw-p cost in bits.
    pub aegis_rw_p: usize,
}

/// Computes the full Table 1 for hard FTC 1..=max_ftc on `block_bits`-bit
/// blocks.
#[must_use]
pub fn table1(max_ftc: usize, block_bits: usize) -> Vec<Table1Row> {
    (1..=max_ftc)
        .map(|f| Table1Row {
            hard_ftc: f,
            ecp: ecp_cost(f, block_bits),
            safer: safer_table1_cost(f, block_bits),
            safer_groups: safer_groups_for_ftc(f),
            aegis: aegis_table1_cost(f, block_bits),
            aegis_rw: aegis_rw_table1_cost(f, block_bits),
            aegis_rw_p: aegis_rw_p_table1_cost(f, block_bits),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(17), 5);
        assert_eq!(ceil_log2(61), 6);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn ecp_row_matches_table1() {
        let row: Vec<usize> = (1..=10).map(|f| ecp_cost(f, 512)).collect();
        assert_eq!(row, [11, 21, 31, 41, 51, 61, 71, 81, 91, 101]);
    }

    #[test]
    fn safer_row_matches_table1() {
        let row: Vec<usize> = (1..=10).map(|f| safer_table1_cost(f, 512)).collect();
        assert_eq!(row, [1, 7, 14, 22, 35, 55, 91, 159, 292, 552]);
        let n: Vec<usize> = (1..=10).map(safer_groups_for_ftc).collect();
        assert_eq!(n, [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
    }

    #[test]
    fn safer_figure_annotations() {
        // Figure 5 annotations: SAFER32 = 55, SAFER64 = 91, SAFER128 = 159.
        assert_eq!(safer_cost(5, 512), 55);
        assert_eq!(safer_cost(6, 512), 91);
        assert_eq!(safer_cost(7, 512), 159);
    }

    #[test]
    fn aegis_rw_model_row_tracks_paper_within_one_bit() {
        let row: Vec<usize> = (1..=10).map(|f| aegis_rw_table1_cost(f, 512)).collect();
        assert_eq!(row, [23, 24, 25, 26, 26, 27, 27, 28, 28, 28]);
        for (model, paper) in row.iter().zip(PAPER_TABLE1_AEGIS_RW) {
            assert!(
                paper.abs_diff(*model) <= 1,
                "model {model} vs paper {paper}"
            );
        }
    }

    #[test]
    fn aegis_rw_consistent_variant_diverges_only_at_ftc10() {
        for f in 1..=9 {
            assert_eq!(aegis_rw_cost(f, 512), aegis_rw_table1_cost(f, 512), "f={f}");
        }
        // f = 10 needs 26 slopes, hence B = 29 rather than 23.
        assert_eq!(aegis_rw_cost(10, 512), 5 + 29);
        assert_eq!(aegis_rw_table1_cost(10, 512), 28);
    }

    #[test]
    fn paper_aegis_row_matches_model_exactly() {
        let row: Vec<usize> = (1..=10).map(|f| aegis_table1_cost(f, 512)).collect();
        assert_eq!(row, PAPER_TABLE1_AEGIS);
    }

    #[test]
    fn paper_rw_p_row_matches_model_exactly() {
        let row: Vec<usize> = (1..=10).map(|f| aegis_rw_p_table1_cost(f, 512)).collect();
        assert_eq!(row, PAPER_TABLE1_AEGIS_RW_P);
    }

    #[test]
    fn slope_requirements_match_section_2_4_example() {
        // "for hard FTC of 10, Aegis needs 46 slopes while Aegis-rw needs
        // only 26 slopes."
        assert_eq!(aegis_slopes_needed(10), 46);
        assert_eq!(aegis_rw_slopes_needed(10), 26);
    }

    #[test]
    fn minimal_b_for_paper_blocks() {
        assert_eq!(minimal_b(512, 0), 23);
        assert_eq!(minimal_b(256, 0), 17);
        assert_eq!(minimal_b(512, 29), 29);
        assert_eq!(minimal_b(512, 30), 31);
    }

    #[test]
    fn table1_assembles_all_rows() {
        let table = table1(10, 512);
        assert_eq!(table.len(), 10);
        assert_eq!(table[7].aegis, 34);
        assert_eq!(table[9].aegis_rw_p, 32);
    }
}
