//! Cross-block batched Aegis kernels over lane-major SoA batches.
//!
//! The single-block kernels in [`crate::rom`]/`codec` stream the same
//! [`ShiftRom`] row from memory once per block. The batched kernels here
//! load each `(slope, group)` mask word **once** and apply it to a whole
//! lane chunk of a [`BatchBitBlock`] — the cross-block SoA restructuring
//! of ROADMAP item 2. The chunk width follows the selected
//! [`bitblock::simd`] backend (eight lanes on AVX-512, four on AVX2, two
//! on NEON; `SIM_FORCE_SCALAR=1` pins the portable loops), and each chunk
//! marches through [`bitblock::simd::slope_bad_lanes`] /
//! [`bitblock::simd::encode_slope_lanes`], which pin the chunk's batch
//! words in vector registers for an entire slope pass.
//!
//! # The mask formulation of the collision predicates
//!
//! The `O(f²)` pair predicates ([`crate::AegisPolicy`],
//! [`crate::AegisRwPolicy`]) ask, per slope, whether some fault pair that
//! "matters" shares a group. Over per-lane fault masks the same question
//! becomes per *group*: with `F` the fault-offset mask and `W ⊆ F` the
//! stuck-at-Wrong mask of one lane, a group mask `G` makes a slope bad iff
//!
//! - **base Aegis** ([`PairRule::AnyWrong`], pairs matter unless R–R):
//!   `|G ∩ F| ≥ 2` and `G ∩ W ≠ ∅` — at least one member pair, not all-R;
//! - **Aegis-rw** ([`PairRule::Mixed`], only W–R pairs matter):
//!   `G ∩ W ≠ ∅` and `G ∩ (F \ W) ≠ ∅` — a W member next to an R member.
//!
//! A block is recoverable iff some slope has no bad group — exactly
//! [`crate::AegisPolicy::recoverable`] / [`crate::AegisRwPolicy`]'s
//! verdict (the differential suites in `tests/batched_kernels.rs` pin the
//! equivalence case by case). The fold computes "≥ 2 members" without a
//! popcount via the slope kernels' `seen`/`dup` accumulator pair, which is
//! what lets every backend vectorize it; lanes already decided recoverable
//! are handed back to the kernel as "bad", so a chunk stops scanning the
//! moment its last open lane resolves.
//!
//! Aegis-rw-p's pointer-budget stage is deliberately *not* batched: its
//! per-good-slope group walk is data-dependent per lane, and the Monte
//! Carlo engine's incremental pair cache already answers it faster for
//! the sparse fault populations the simulator sees (DESIGN.md §15).
//!
//! The single-lane twins ([`encode_single`], [`predicate_single`]) run the
//! identical algorithm one lane at a time over plain [`BitBlock`] masks;
//! they are the differential reference the ≥4× batch bench races against,
//! playing the role `write_scalar` plays for the codec kernels.
//!
//! # Precondition
//!
//! Fault offsets within one lane must be distinct — the Monte Carlo
//! engine's standing invariant (a cell fails once). A duplicated offset
//! would collapse to one mask bit and under-count pairs.

use crate::rom::ShiftRom;
use bitblock::{simd, BatchBitBlock, BitBlock};
use pcm_sim::Fault;

/// Which fault pairs poison a slope (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRule {
    /// Base Aegis: every pair matters unless both members are stuck-at-R.
    AnyWrong,
    /// Aegis-rw: only mixed W–R pairs matter.
    Mixed,
}

/// Per-lane fault populations as lane-major F/W mask batches.
///
/// `F` holds one bit per fault offset; `W ⊆ F` holds the offsets whose
/// faults are stuck-at-Wrong for the data being written.
#[derive(Debug, Clone)]
pub struct FaultBatch {
    f: BatchBitBlock,
    w: BatchBitBlock,
}

impl FaultBatch {
    /// An empty batch of `lanes` populations over `bits`-wide blocks.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    #[must_use]
    pub fn zeros(bits: usize, lanes: usize) -> Self {
        Self {
            f: BatchBitBlock::zeros(bits, lanes),
            w: BatchBitBlock::zeros(bits, lanes),
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.f.lanes()
    }

    /// Per-lane block width in bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.f.bits()
    }

    /// Replaces lane `lane` with the population `faults` under the W/R
    /// split `wrong` (`wrong[i]` ⇔ `faults[i]` is stuck-at-Wrong).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range, the slice lengths differ, or a
    /// fault offset exceeds the block width. Debug builds additionally
    /// check the distinct-offsets precondition.
    pub fn set_lane(&mut self, lane: usize, faults: &[Fault], wrong: &[bool]) {
        assert_eq!(faults.len(), wrong.len(), "split width mismatch");
        debug_assert!(
            faults
                .iter()
                .enumerate()
                .all(|(i, a)| faults[..i].iter().all(|b| a.offset != b.offset)),
            "fault offsets within a lane must be distinct"
        );
        self.f.clear_lane(lane);
        self.w.clear_lane(lane);
        for (fault, &is_wrong) in faults.iter().zip(wrong) {
            self.f.set(lane, fault.offset, true);
            if is_wrong {
                self.w.set(lane, fault.offset, true);
            }
        }
    }

    /// Zeroes lane `lane` (an empty population — always recoverable).
    pub fn clear_lane(&mut self, lane: usize) {
        self.f.clear_lane(lane);
        self.w.clear_lane(lane);
    }
}

/// Encodes L lanes at once under one slope: for every lane `l`,
/// `out[l] = data[l] XOR union(mask(slope, g) for g in inversions[l])`.
///
/// `inversions` is a lane-major batch of inversion vectors (`bits ==
/// shift.groups()`). Group masks within one slope are disjoint, so the
/// XOR accumulation equals the union — the same identity
/// `AegisCodec::write`'s kernel relies on. Lane chunks run through
/// [`bitblock::simd::encode_slope_lanes`], which keeps each chunk's
/// codewords in registers across the whole slope pass.
///
/// # Panics
///
/// Panics if `slope` is out of range (debug builds; see
/// [`ShiftRom::mask_words`]), if the batch shapes disagree, or if
/// `inversions` is not `shift.groups()` wide.
pub fn encode_batch(
    shift: &ShiftRom,
    slope: usize,
    inversions: &BatchBitBlock,
    data: &BatchBitBlock,
    out: &mut BatchBitBlock,
) {
    let lanes = data.lanes();
    assert_eq!(inversions.lanes(), lanes, "lane count mismatch");
    assert_eq!(out.lanes(), lanes, "lane count mismatch");
    assert_eq!(data.bits(), shift.bits(), "block width mismatch");
    assert_eq!(out.bits(), shift.bits(), "block width mismatch");
    assert_eq!(
        inversions.bits(),
        shift.groups(),
        "inversion vector width must equal the group count"
    );
    let rows = shift.slope_rows(slope);
    let words = shift.words_per_mask();
    let inv_words = inversions.words_per_lane();
    let chunk = simd::chunk_lanes();
    let mut l0 = 0;
    while l0 < lanes {
        let l1 = (l0 + chunk).min(lanes);
        simd::encode_slope_lanes(
            rows,
            words,
            inversions.as_words(),
            inv_words,
            data.as_words(),
            out.as_words_mut(),
            lanes,
            l0,
            l1,
        );
        l0 = l1;
    }
}

/// Single-lane twin of [`encode_batch`]: `out = data XOR union(selected
/// group masks)` over plain [`BitBlock`]s — the same per-row loop the
/// codec kernel (`AegisCodec::write`) runs, kept as the differential and
/// bench reference for the batched path.
///
/// # Panics
///
/// As [`encode_batch`], for the single-lane shapes.
pub fn encode_single(
    shift: &ShiftRom,
    slope: usize,
    inversion: &BitBlock,
    data: &BitBlock,
    out: &mut BitBlock,
) {
    assert_eq!(data.len(), shift.bits(), "block width mismatch");
    assert_eq!(out.len(), shift.bits(), "block width mismatch");
    assert_eq!(
        inversion.len(),
        shift.groups(),
        "inversion vector width must equal the group count"
    );
    out.copy_from(data);
    for group in inversion.ones() {
        out.xor_words(shift.mask_words(slope, group));
    }
}

/// Batched recoverability verdicts: `out[l]` ⇔ lane `l`'s population can
/// absorb a write under `rule` — bit-identical to the corresponding
/// single-block predicate ([`crate::AegisPolicy::recoverable`] for
/// [`PairRule::AnyWrong`], [`crate::AegisRwPolicy`] for
/// [`PairRule::Mixed`]).
///
/// Scans slopes in ascending order, one lane chunk at a time: a lane is
/// decided recoverable at its first good slope, and a chunk's scan stops
/// early once every lane in it is decided (or every slope is exhausted —
/// undecided lanes are unrecoverable). Within a slope pass each
/// `(slope, group)` ROM row is streamed exactly once for the whole chunk.
///
/// # Panics
///
/// Panics if `out.len() != batch.lanes()` or the batch width differs from
/// the ROM's.
pub fn predicate_batch(shift: &ShiftRom, batch: &FaultBatch, rule: PairRule, out: &mut [bool]) {
    let lanes = batch.lanes();
    assert_eq!(out.len(), lanes, "verdict width mismatch");
    assert_eq!(batch.bits(), shift.bits(), "block width mismatch");
    out.fill(false);
    let words = shift.words_per_mask();
    let mixed = rule == PairRule::Mixed;
    let chunk = simd::chunk_lanes();
    let mut l0 = 0;
    while l0 < lanes {
        let l1 = (l0 + chunk).min(lanes);
        let full = (1u64 << (l1 - l0)) - 1;
        // Decided-recoverable lanes re-enter the kernel as "already bad"
        // so their verdicts are settled and the chunk can stop as soon as
        // the kernel reports every lane bad.
        let mut decided = 0u64;
        for slope in 0..shift.slopes() {
            let bad = simd::slope_bad_lanes(
                shift.slope_rows(slope),
                words,
                batch.f.as_words(),
                batch.w.as_words(),
                lanes,
                l0,
                l1,
                mixed,
                decided,
            );
            let mut good = !bad & full;
            decided |= good;
            while good != 0 {
                out[l0 + good.trailing_zeros() as usize] = true;
                good &= good - 1;
            }
            if decided == full {
                break;
            }
        }
        l0 = l1;
    }
}

/// Single-lane twin of [`predicate_batch`] over plain F/W masks: the same
/// group-mask fold, one lane at a time — the single-block kernel the batch
/// bench races against.
///
/// # Panics
///
/// Panics if the masks disagree with each other or with the ROM's width.
#[must_use]
pub fn predicate_single(shift: &ShiftRom, f: &BitBlock, w: &BitBlock, rule: PairRule) -> bool {
    assert_eq!(f.len(), shift.bits(), "block width mismatch");
    assert_eq!(w.len(), shift.bits(), "block width mismatch");
    let fw = f.as_words();
    let ww = w.as_words();
    'slopes: for slope in 0..shift.slopes() {
        for group in 0..shift.groups() {
            let row = shift.mask_words(slope, group);
            let (mut seen, mut dup, mut wseen, mut rseen) = (0u64, 0u64, 0u64, 0u64);
            for (i, &rw) in row.iter().enumerate() {
                let x = rw & fw[i];
                dup |= x & x.wrapping_sub(1);
                if seen != 0 {
                    dup |= x;
                }
                seen |= x;
                wseen |= rw & ww[i];
                rseen |= x & !ww[i];
            }
            let bad = match rule {
                PairRule::AnyWrong => dup != 0 && wseen != 0,
                PairRule::Mixed => wseen != 0 && rseen != 0,
            };
            if bad {
                continue 'slopes;
            }
        }
        return true;
    }
    false
}

/// Builds the `(F, W)` masks [`predicate_single`] consumes from a fault
/// slice and its W/R split — the bridge from the engine's representation.
///
/// # Panics
///
/// Panics if the slice lengths differ or an offset exceeds `bits`.
#[must_use]
pub fn fault_masks(bits: usize, faults: &[Fault], wrong: &[bool]) -> (BitBlock, BitBlock) {
    assert_eq!(faults.len(), wrong.len(), "split width mismatch");
    let mut f = BitBlock::zeros(bits);
    let mut w = BitBlock::zeros(bits);
    for (fault, &is_wrong) in faults.iter().zip(wrong) {
        f.set(fault.offset, true);
        if is_wrong {
            w.set(fault.offset, true);
        }
    }
    (f, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rom::InversionRom;
    use crate::{AegisPolicy, AegisRwPolicy, Rectangle};
    use pcm_sim::policy::RecoveryPolicy;
    use sim_rng::{Rng, SeedableRng, SmallRng};

    fn rect() -> Rectangle {
        Rectangle::new(5, 7, 32).unwrap()
    }

    fn random_population(
        rng: &mut SmallRng,
        bits: usize,
        max_faults: usize,
    ) -> (Vec<Fault>, Vec<bool>) {
        let count = rng.random_range(0..=max_faults);
        let mut offsets: Vec<usize> = Vec::new();
        while offsets.len() < count {
            let o = rng.random_range(0..bits);
            if !offsets.contains(&o) {
                offsets.push(o);
            }
        }
        let faults: Vec<Fault> = offsets
            .iter()
            .map(|&o| Fault::new(o, rng.random()))
            .collect();
        let wrong: Vec<bool> = (0..count).map(|_| rng.random()).collect();
        (faults, wrong)
    }

    #[test]
    fn batched_encode_matches_single_and_the_inversion_rom() {
        let r = rect();
        let shift = ShiftRom::new(&r);
        let rom = InversionRom::new(&r);
        let mut rng = SmallRng::seed_from_u64(61);
        let lanes = 5;
        for slope in 0..r.slopes() {
            let mut data = BatchBitBlock::zeros(r.bits(), lanes);
            let mut inversions = BatchBitBlock::zeros(r.groups(), lanes);
            let mut lane_data = Vec::new();
            let mut lane_inv = Vec::new();
            for lane in 0..lanes {
                let d = BitBlock::random(&mut rng, r.bits());
                let v = BitBlock::random(&mut rng, r.groups());
                data.load_lane(lane, &d);
                inversions.load_lane(lane, &v);
                lane_data.push(d);
                lane_inv.push(v);
            }
            let mut out = BatchBitBlock::zeros(r.bits(), lanes);
            encode_batch(&shift, slope, &inversions, &data, &mut out);
            for lane in 0..lanes {
                let mut single = BitBlock::zeros(r.bits());
                encode_single(
                    &shift,
                    slope,
                    &lane_inv[lane],
                    &lane_data[lane],
                    &mut single,
                );
                assert_eq!(out.lane(lane), single, "slope {slope} lane {lane}");
                // And both equal the block-level ROM's definition.
                let expect = &lane_data[lane] ^ &rom.inversion_mask(slope, &lane_inv[lane]);
                assert_eq!(single, expect, "slope {slope} lane {lane}");
            }
        }
    }

    #[test]
    fn batched_predicate_matches_the_pair_policies() {
        let r = rect();
        let shift = ShiftRom::new(&r);
        let base = AegisPolicy::new(r.clone());
        let rw = AegisRwPolicy::new(r.clone());
        let mut rng = SmallRng::seed_from_u64(4821);
        let lanes = 8;
        let mut batch = FaultBatch::zeros(r.bits(), lanes);
        for _ in 0..60 {
            let mut pops = Vec::new();
            for lane in 0..lanes {
                let (faults, wrong) = random_population(&mut rng, r.bits(), 10);
                batch.set_lane(lane, &faults, &wrong);
                pops.push((faults, wrong));
            }
            for (rule, policy) in [
                (PairRule::AnyWrong, &base as &dyn RecoveryPolicy),
                (PairRule::Mixed, &rw as &dyn RecoveryPolicy),
            ] {
                let mut verdicts = vec![false; lanes];
                predicate_batch(&shift, &batch, rule, &mut verdicts);
                for (lane, (faults, wrong)) in pops.iter().enumerate() {
                    let want = policy.recoverable(faults, wrong);
                    assert_eq!(verdicts[lane], want, "{rule:?} lane {lane}: {faults:?}");
                    let (f, w) = fault_masks(r.bits(), faults, wrong);
                    assert_eq!(
                        predicate_single(&shift, &f, &w, rule),
                        want,
                        "{rule:?} single lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_saturated_populations_decide_correctly() {
        let r = Rectangle::new(2, 3, 6).unwrap();
        let shift = ShiftRom::new(&r);
        let mut batch = FaultBatch::zeros(r.bits(), 2);
        // Lane 0: empty (always recoverable). Lane 1: every bit stuck and
        // wrong — every slope has a multi-W group, so base Aegis fails.
        let faults: Vec<Fault> = (0..6).map(|o| Fault::new(o, false)).collect();
        let wrong = vec![true; 6];
        batch.set_lane(1, &faults, &wrong);
        let mut verdicts = vec![false; 2];
        predicate_batch(&shift, &batch, PairRule::AnyWrong, &mut verdicts);
        assert!(verdicts[0], "an empty population is always recoverable");
        assert!(!verdicts[1], "an all-wrong saturated population is not");
        // Under -rw the same all-W population has no mixed pair at all.
        predicate_batch(&shift, &batch, PairRule::Mixed, &mut verdicts);
        assert!(verdicts[0] && verdicts[1]);
        // clear_lane resets lane 1 back to recoverable everywhere.
        batch.clear_lane(1);
        predicate_batch(&shift, &batch, PairRule::AnyWrong, &mut verdicts);
        assert!(verdicts[0] && verdicts[1]);
    }
}
