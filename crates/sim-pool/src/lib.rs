//! A zero-dependency dynamic-scheduling thread pool for embarrassingly
//! parallel, index-addressed simulation work.
//!
//! The Monte Carlo engines in this workspace evaluate many independent
//! tasks (pages of a simulated memory, block trials) whose cost varies by
//! an order of magnitude: a page whose blocks die early is cheap, a page
//! that survives tens of thousands of writes is expensive. Static
//! chunking (`pages / threads` contiguous slices per worker) therefore
//! leaves tail threads idle while the unlucky worker grinds through the
//! long-lived pages. This crate replaces those static chunks with
//! *dynamic scheduling*: workers repeatedly pull small index batches from
//! a shared atomic counter until the range is exhausted, so a worker that
//! finishes early simply steals the batches a slower worker would have
//! received under a static split.
//!
//! Determinism is preserved by construction:
//!
//! - The pool never decides *what* a task computes, only *which worker*
//!   runs it. Each task must derive all randomness from its own index
//!   (the engines seed a per-page RNG from `(seed, page_idx)`).
//! - Results are written into index-keyed slots, so the output order is
//!   independent of scheduling order.
//! - Workers get private scratch state from a caller-supplied factory;
//!   scratch never migrates between tasks of different workers except
//!   through the task-local reset the caller already performs. The Monte
//!   Carlo engine's factory hands each worker a *batch* arena
//!   (`pcm_sim::montecarlo::BatchScratch`): inside one task the worker
//!   pulls the page's blocks through the batched lane-lockstep evaluator,
//!   but from the pool's perspective that is still one index-addressed
//!   task — scheduling granularity (pages) and batching granularity
//!   (lanes within a page) are independent axes, which is why the lane
//!   width, like the thread count, can never affect results.
//!
//! The only observable scheduling artefacts are the [`PoolStats`]
//! counters, which are explicitly *not* deterministic and are reported
//! through the telemetry layer's volatile channel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Environment variable consulted by [`resolve_threads`] when no explicit
/// thread count is given.
pub const THREADS_ENV: &str = "SIM_THREADS";

/// Scheduling statistics for one [`run_indexed`] invocation.
///
/// `threads` and `tasks` are deterministic; `batches` and `stolen` depend
/// on OS scheduling and must only be reported through channels that are
/// excluded from determinism checks (see `sim-telemetry`'s volatile
/// counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Number of worker threads used.
    pub threads: usize,
    /// Total number of tasks executed.
    pub tasks: usize,
    /// Number of successful batch pulls from the shared counter.
    pub batches: u64,
    /// Tasks executed beyond the fair static share `ceil(tasks/threads)`,
    /// summed over workers — a measure of how much dynamic scheduling
    /// rebalanced the load. Always 0 for a single worker.
    pub stolen: u64,
}

/// Resolves the effective worker count.
///
/// Priority: `explicit` argument, then the [`THREADS_ENV`] environment
/// variable, then [`std::thread::available_parallelism`]. Zero and
/// unparseable values are ignored at each level; the result is always at
/// least 1.
#[must_use]
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Batch size for the shared-counter pulls: small enough to rebalance
/// (8 pulls per worker under a uniform load), large enough to keep
/// counter contention negligible.
fn batch_size(tasks: usize, threads: usize) -> usize {
    (tasks / (threads * 8)).max(1)
}

/// Per-worker utilization sample from one [`run_indexed_stats`] run.
///
/// All timing fields are wall-clock and therefore *volatile*: like
/// [`PoolStats::batches`], they must only be reported through channels
/// excluded from determinism checks (the telemetry trace sidecar).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Worker index within this run (0-based; worker 0 is the caller's
    /// thread when the run was inline).
    pub worker: usize,
    /// Tasks this worker executed.
    pub tasks: usize,
    /// Successful batch pulls from the shared counter.
    pub batches: u64,
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Nanoseconds of the worker's wall time not spent executing tasks
    /// (spawn-to-first-pull, counter pulls, final empty pull). Always 0
    /// for an inline single-threaded run.
    pub idle_ns: u64,
    /// Latency of each successful batch pull, nanoseconds, in pull order.
    pub pull_ns: Vec<u64>,
}

impl WorkerStats {
    /// Fraction of this worker's wall time spent executing tasks,
    /// 0..=1 (0.0 when no time was observed at all).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let wall = self.busy_ns + self.idle_ns;
        if wall == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.busy_ns as f64 / wall as f64
        }
    }
}

/// Pool-wide busy fraction: total busy nanoseconds over total observed
/// wall nanoseconds across the sampled workers (0.0 for an empty or
/// unobserved sample). This is the utilization figure surfaced in live
/// status heartbeats.
#[must_use]
pub fn busy_fraction(workers: &[WorkerStats]) -> f64 {
    let busy: u64 = workers.iter().map(|w| w.busy_ns).sum();
    let wall: u64 = workers.iter().map(|w| w.busy_ns + w.idle_ns).sum();
    if wall == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        busy as f64 / wall as f64
    }
}

#[allow(clippy::cast_possible_truncation)]
fn nanos(from: Instant) -> u64 {
    from.elapsed().as_nanos() as u64
}

/// Runs `tasks` index-addressed tasks on `threads` workers and returns
/// the results in index order together with scheduling statistics.
///
/// `make_scratch` is called once per worker to build private scratch
/// state; `work(&mut scratch, index)` computes task `index`. The result
/// vector satisfies `result[i] == work(_, i)` regardless of thread count
/// or scheduling order, provided `work` derives everything from `index`
/// and the (reset) scratch.
///
/// With `threads <= 1` everything runs inline on the caller's thread and
/// no threads are spawned.
///
/// # Panics
/// Propagates panics from `work` and panics if a worker thread cannot be
/// joined.
pub fn run_indexed<T, S, MS, W>(
    threads: usize,
    tasks: usize,
    make_scratch: MS,
    work: W,
) -> (Vec<T>, PoolStats)
where
    T: Send,
    MS: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    let (out, stats, _) = run_indexed_impl::<false, _, _, _, _>(threads, tasks, make_scratch, work);
    (out, stats)
}

/// Like [`run_indexed`], but additionally measures per-worker wall-clock
/// utilization ([`WorkerStats`], ascending worker index). Identical
/// scheduling and results; the extra `Instant` reads cost a few tens of
/// nanoseconds per batch and per task, so reserve this variant for
/// instrumented runs.
///
/// # Panics
/// Propagates panics from `work` and panics if a worker thread cannot be
/// joined.
pub fn run_indexed_stats<T, S, MS, W>(
    threads: usize,
    tasks: usize,
    make_scratch: MS,
    work: W,
) -> (Vec<T>, PoolStats, Vec<WorkerStats>)
where
    T: Send,
    MS: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    run_indexed_impl::<true, _, _, _, _>(threads, tasks, make_scratch, work)
}

fn run_indexed_impl<const TIMED: bool, T, S, MS, W>(
    threads: usize,
    tasks: usize,
    make_scratch: MS,
    work: W,
) -> (Vec<T>, PoolStats, Vec<WorkerStats>)
where
    T: Send,
    MS: Fn() -> S + Sync,
    W: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(tasks.max(1));
    let mut stats = PoolStats {
        threads,
        tasks,
        batches: 0,
        stolen: 0,
    };
    if tasks == 0 {
        return (Vec::new(), stats, Vec::new());
    }
    let chunk = batch_size(tasks, threads);

    if threads == 1 {
        let started = TIMED.then(Instant::now);
        let mut scratch = make_scratch();
        let mut out = Vec::with_capacity(tasks);
        for idx in 0..tasks {
            out.push(work(&mut scratch, idx));
        }
        stats.batches = tasks.div_ceil(chunk) as u64;
        let workers = match started {
            Some(started) => vec![WorkerStats {
                worker: 0,
                tasks,
                batches: stats.batches,
                busy_ns: nanos(started),
                idle_ns: 0,
                pull_ns: Vec::new(),
            }],
            None => Vec::new(),
        };
        return (out, stats, workers);
    }

    let next = AtomicUsize::new(0);
    let fair_share = tasks.div_ceil(threads);
    let mut per_worker: Vec<(WorkerStats, Vec<(usize, T)>)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let next = &next;
            let make_scratch = &make_scratch;
            let work = &work;
            handles.push(scope.spawn(move || {
                let spawned = TIMED.then(Instant::now);
                let mut scratch = make_scratch();
                let mut local: Vec<(usize, T)> = Vec::new();
                let mut timing = WorkerStats {
                    worker,
                    ..WorkerStats::default()
                };
                loop {
                    let pull_started = TIMED.then(Instant::now);
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= tasks {
                        break;
                    }
                    if let Some(pull_started) = pull_started {
                        timing.pull_ns.push(nanos(pull_started));
                    }
                    timing.batches += 1;
                    let end = (start + chunk).min(tasks);
                    let batch_started = TIMED.then(Instant::now);
                    for idx in start..end {
                        local.push((idx, work(&mut scratch, idx)));
                    }
                    if let Some(batch_started) = batch_started {
                        timing.busy_ns += nanos(batch_started);
                    }
                }
                timing.tasks = local.len();
                if let Some(spawned) = spawned {
                    timing.idle_ns = nanos(spawned).saturating_sub(timing.busy_ns);
                }
                (timing, local)
            }));
        }
        for handle in handles {
            per_worker.push(handle.join().expect("sim-pool worker panicked"));
        }
    });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    let mut workers = Vec::with_capacity(if TIMED { threads } else { 0 });
    for (timing, local) in per_worker {
        stats.batches += timing.batches;
        stats.stolen += (local.len().saturating_sub(fair_share)) as u64;
        if TIMED {
            workers.push(timing);
        }
        for (idx, value) in local {
            debug_assert!(slots[idx].is_none(), "task {idx} produced twice");
            slots[idx] = Some(value);
        }
    }
    workers.sort_by_key(|w| w.worker);
    let out: Vec<T> = slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| slot.unwrap_or_else(|| panic!("task {idx} was never executed")))
        .collect();
    (out, stats, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        // Zero is ignored, falling through to env/parallelism (>= 1).
        assert!(resolve_threads(Some(0)) >= 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn results_are_index_ordered_for_any_thread_count() {
        let expected: Vec<u64> = (0..257u64).map(|i| i * i + 7).collect();
        for threads in [1, 2, 3, 8, 300] {
            let (got, stats) =
                run_indexed(threads, 257, || (), |(), i| (i as u64) * (i as u64) + 7);
            assert_eq!(got, expected, "threads={threads}");
            assert_eq!(stats.tasks, 257);
            assert!(stats.threads >= 1 && stats.threads <= 257);
            assert!(stats.batches >= 1);
        }
    }

    #[test]
    fn empty_task_range_returns_empty() {
        let (got, stats) = run_indexed(4, 0, || (), |(), i| i);
        assert!(got.is_empty());
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.stolen, 0);
    }

    #[test]
    fn single_thread_runs_inline_with_zero_steals() {
        let (got, stats) = run_indexed(
            1,
            100,
            || 0u64,
            |acc, i| {
                *acc += 1;
                (i, *acc)
            },
        );
        // Scratch persists across tasks on the same worker.
        assert_eq!(got.last(), Some(&(99, 100)));
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.stolen, 0);
    }

    #[test]
    fn scratch_factory_runs_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let made = AtomicUsize::new(0);
        let threads = 4;
        let (_, stats) = run_indexed(
            threads,
            64,
            || made.fetch_add(1, Ordering::Relaxed),
            |_, i| i,
        );
        assert_eq!(made.load(Ordering::Relaxed), stats.threads);
    }

    #[test]
    fn uneven_work_is_rebalanced() {
        // One pathological slow index; dynamic pulls let other workers
        // absorb the rest of the range. We only assert correctness and
        // that the stats fields are coherent (stolen is scheduling
        // dependent, so no exact value).
        let (got, stats) = run_indexed(
            4,
            128,
            || (),
            |(), i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i * 2
            },
        );
        assert_eq!(got[127], 254);
        assert!(stats.batches as usize >= stats.threads.min(128 / batch_size(128, stats.threads)));
    }

    #[test]
    fn threads_are_clamped_to_tasks() {
        let (got, stats) = run_indexed(64, 3, || (), |(), i| i);
        assert_eq!(got, vec![0, 1, 2]);
        assert!(stats.threads <= 3);
    }

    #[test]
    fn stats_variant_reports_coherent_worker_utilization() {
        let (got, stats, workers) = run_indexed_stats(
            3,
            120,
            || (),
            |(), i| {
                std::hint::black_box(i);
                i * 3
            },
        );
        assert_eq!(got[119], 357);
        assert_eq!(workers.len(), stats.threads);
        // Workers are sorted and their per-worker figures sum to the
        // pool totals.
        for (i, w) in workers.iter().enumerate() {
            assert_eq!(w.worker, i);
            assert_eq!(w.pull_ns.len() as u64, w.batches);
        }
        assert_eq!(workers.iter().map(|w| w.tasks).sum::<usize>(), stats.tasks);
        assert_eq!(
            workers.iter().map(|w| w.batches).sum::<u64>(),
            stats.batches
        );
    }

    #[test]
    fn inline_stats_have_zero_idle_and_no_pulls() {
        let (got, stats, workers) = run_indexed_stats(1, 10, || (), |(), i| i);
        assert_eq!(got.len(), 10);
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].worker, 0);
        assert_eq!(workers[0].tasks, 10);
        assert_eq!(workers[0].batches, stats.batches);
        assert_eq!(workers[0].idle_ns, 0);
        assert!(workers[0].pull_ns.is_empty());
    }

    #[test]
    fn busy_fraction_weights_workers_by_wall_time() {
        let workers = vec![
            WorkerStats {
                worker: 0,
                busy_ns: 300,
                idle_ns: 100,
                ..WorkerStats::default()
            },
            WorkerStats {
                worker: 1,
                busy_ns: 100,
                idle_ns: 500,
                ..WorkerStats::default()
            },
        ];
        assert!((workers[0].occupancy() - 0.75).abs() < 1e-12);
        // Pool-wide: 400 busy of 1000 observed wall nanoseconds.
        assert!((busy_fraction(&workers) - 0.4).abs() < 1e-12);
        assert_eq!(busy_fraction(&[]), 0.0);
        assert_eq!(WorkerStats::default().occupancy(), 0.0);
    }

    #[test]
    fn stats_variant_matches_untimed_results() {
        let (plain, _) = run_indexed(4, 99, || (), |(), i| i * i);
        let (timed, _, _) = run_indexed_stats(4, 99, || (), |(), i| i * i);
        assert_eq!(plain, timed);
    }
}
