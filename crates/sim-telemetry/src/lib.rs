//! Hermetic observability substrate for the Aegis simulator stack.
//!
//! Zero external dependencies (the workspace builds `--offline`); four
//! small pieces that compose into per-run telemetry:
//!
//! - [`Registry`] — named atomic [`Counter`]s and log₂-scale
//!   [`Histogram`]s, ~free when disabled (handles become no-ops and no
//!   per-metric state is ever allocated);
//! - [`Event`] — a JSONL event stream in the same hand-rolled JSON style
//!   as `sim_rng::bench`, deterministic by construction (no wall-clock
//!   data), plus a parser for reports and round-trip tests;
//! - [`RunManifest`] — the reproducibility sidecar (seed and run options,
//!   git describe, per-phase wall-clock durations);
//! - [`RunTelemetry`] — the per-run front door: create, hand
//!   [`RunTelemetry::registry`] down the stack, wrap phases in
//!   [`RunTelemetry::span`], then [`RunTelemetry::finish`].
//!
//! Metric names follow `layer.scheme.metric` (see [`metric_name`] /
//! [`split_metric`] and DESIGN.md § Observability).
//!
//! On top of the deterministic stream sit two volatile (wall-clock)
//! layers, kept in a separate `<run-id>.trace.jsonl` sidecar so they can
//! never perturb the byte-identity contract: [`Tracer`] — hierarchical
//! spans with parent links collected into bounded, drop-counted
//! per-worker rings — and [`profile`] — span trees with self/total
//! times plus collapsed-stack and Chrome `trace_event` exporters.
//!
//! A third layer adds time-series and live observability:
//! [`SeriesWriter`] emits periodic metric snapshots keyed by pages
//! evaluated (deterministic per seed; volatile metrics tagged for
//! [`strip_volatile`]) into a `<run-id>.series.jsonl` sidecar — see
//! [`series`] — and [`StatusWriter`] heartbeats run liveness (phase,
//! progress, ETA, worker busy fraction) into an atomically-rewritten
//! `<run-id>.status.json` for `experiments monitor` — see [`status`].
//!
//! The statistical layer on top of both: [`estimate`] carries streaming
//! moment accumulators ([`Moments`]) and confidence intervals
//! (normal-approximation and [`wilson_interval`]) per
//! `(scheme, block_bits, metric)`, snapshotted at unit barriers into the
//! series sidecar and status heartbeats, and driving `--target-rse`
//! deterministic early stopping (DESIGN.md §16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod json;
pub mod manifest;
pub mod profile;
pub mod registry;
pub mod run;
pub mod series;
pub mod sink;
pub mod status;
pub mod trace;

pub use estimate::{
    wilson_interval, Convergence, Moments, UnitEstimate, DISPLAY_TARGET_RSE, MIN_SAMPLES, Z95,
};
pub use json::{escape, Json, JsonError};
pub use manifest::{git_describe, unix_millis, RunManifest};
pub use profile::{chrome_trace, collapsed_stack, NameStats, ProfileNode, SpanTree};
pub use registry::{
    bucket_index, metric_name, split_metric, Counter, Histogram, HistogramSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use run::{RunTelemetry, Span};
pub use series::{SeriesCursor, SeriesWriter};
pub use sink::{strip_volatile, Event, SharedBuf};
pub use status::{EstimateStatus, RunState, StatusRecord, StatusWriter, DEFAULT_STATUS_INTERVAL};
pub use trace::{
    PoolPhase, PoolWorkerUtil, TraceLog, TraceRecord, TraceSpan, Tracer, WorkerLog,
    WorkerSpanHandle, WorkerTracer, DEFAULT_TRACE_CAPACITY,
};
