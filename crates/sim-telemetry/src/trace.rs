//! Hierarchical wall-clock tracing with bounded, drop-counted span rings.
//!
//! Where the [`crate::sink`] event stream is deterministic by construction
//! (and therefore carries no durations), a [`Tracer`] records *volatile*
//! wall-clock spans: every span has a parent link, a worker id, a start
//! offset from the tracer's epoch, and a duration. The records never touch
//! the deterministic `.jsonl` stream — [`TraceLog::to_jsonl`] serializes
//! them into a separate `<run-id>.trace.jsonl` sidecar which, like the
//! manifest's phase timings, sits entirely outside the byte-identity
//! contract. Turning tracing on or off therefore cannot perturb the
//! stripped telemetry stream (pinned by `tests/determinism.rs`).
//!
//! Memory is bounded: every collector (the main thread and each worker)
//! owns a fixed-capacity ring. When a ring is full the *oldest* record is
//! overwritten — span records are pushed on close, so enclosing spans
//! (recorded last) survive and the tree keeps its roots — and every
//! overwrite is counted. Drop counts surface as `trace.<worker>.dropped`
//! in the sidecar so a truncated profile is never silently read as
//! complete.
//!
//! Worker collectors are lock-free by ownership: a [`WorkerTracer`] is
//! private to its worker thread and only merges its ring into the shared
//! tracer when dropped (one mutex lock per worker per pool run).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{escape, Json, JsonError};

/// Default per-collector ring capacity (records). At ~100 bytes per
/// record this bounds each collector near 6 MB; a paper-scale fig5 sweep
/// records well under this per worker.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Unique span id (allocation order, scheduling-dependent).
    pub id: u32,
    /// Enclosing span id, if any.
    pub parent: Option<u32>,
    /// Span name (e.g. `page`, `mc.Aegis 9x61`).
    pub name: String,
    /// Collector that recorded the span (0 = main thread).
    pub worker: u32,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Per-worker utilization sample for one pool run, fed from `sim-pool`'s
/// worker statistics (this crate cannot depend on `sim-pool`, so the
/// engine converts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolWorkerUtil {
    /// Worker index within the pool run (0-based).
    pub worker: usize,
    /// Tasks this worker executed.
    pub tasks: usize,
    /// Successful batch pulls from the shared counter.
    pub batches: u64,
    /// Nanoseconds spent executing tasks.
    pub busy_ns: u64,
    /// Nanoseconds not executing tasks (startup, pulls, tail wait).
    pub idle_ns: u64,
    /// Latency of each batch pull, nanoseconds.
    pub pull_ns: Vec<u64>,
}

impl PoolWorkerUtil {
    /// Fraction of the worker's wall time spent executing tasks.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        match self.busy_ns + self.idle_ns {
            0 => 0.0,
            wall => self.busy_ns as f64 / wall as f64,
        }
    }
}

/// Utilization of every worker across one pool run (one engine phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPhase {
    /// Phase label (e.g. `mc.Aegis 9x61`).
    pub phase: String,
    /// Per-worker samples, ascending worker index.
    pub workers: Vec<PoolWorkerUtil>,
}

/// Fixed-capacity ring that overwrites its oldest record when full.
#[derive(Debug)]
struct Ring {
    cap: usize,
    records: Vec<TraceRecord>,
    /// Index of the oldest record once the ring has wrapped.
    next: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            cap: cap.max(1),
            records: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, record: TraceRecord) {
        if self.records.len() < self.cap {
            self.records.push(record);
        } else {
            self.records[self.next] = record;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Drains into a [`WorkerLog`], oldest record first.
    fn into_log(mut self, worker: u32) -> WorkerLog {
        if self.dropped > 0 {
            self.records.rotate_left(self.next);
        }
        WorkerLog {
            worker,
            records: self.records,
            dropped: self.dropped,
        }
    }
}

/// One collector's finished records plus its drop count.
#[derive(Debug, Clone)]
pub struct WorkerLog {
    /// Collector id (0 = main thread).
    pub worker: u32,
    /// Records in completion order, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records overwritten because the ring was full.
    pub dropped: u64,
}

#[derive(Default)]
struct Inner {
    stack: Vec<u32>,
    ring: Option<Ring>,
    workers: Vec<WorkerLog>,
    pool: Vec<PoolPhase>,
}

struct TracerCore {
    epoch: Instant,
    next_id: AtomicU32,
    next_worker: AtomicU32,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TracerCore {
    fn elapsed_ns(&self) -> u64 {
        #[allow(clippy::cast_possible_truncation)]
        {
            self.epoch.elapsed().as_nanos() as u64
        }
    }
}

/// A hierarchical span collector for one run.
///
/// `Tracer::disabled()` hands out no-op spans and collectors, so
/// instrumented code pays only an `Option` check when tracing is off.
/// The main thread records through [`Tracer::span`] (guard-based, one
/// mutex lock per open/close); worker threads obtain a private
/// [`WorkerTracer`] via [`Tracer::worker`].
pub struct Tracer(Option<Arc<TracerCore>>);

impl Tracer {
    /// An enabled tracer whose collectors each hold up to `capacity`
    /// records.
    #[must_use]
    pub fn new(capacity: usize) -> Tracer {
        Tracer(Some(Arc::new(TracerCore {
            epoch: Instant::now(),
            next_id: AtomicU32::new(0),
            next_worker: AtomicU32::new(1),
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                stack: Vec::new(),
                ring: Some(Ring::new(capacity)),
                workers: Vec::new(),
                pool: Vec::new(),
            }),
        })))
    }

    /// An enabled tracer with [`DEFAULT_TRACE_CAPACITY`] rings.
    #[must_use]
    pub fn with_default_capacity() -> Tracer {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }

    /// A tracer that records nothing.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// Whether this tracer records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a main-thread span; it closes (and is recorded) when the
    /// returned guard drops. The parent is the innermost main-thread span
    /// still open.
    #[must_use]
    pub fn span(&self, name: &str) -> TraceSpan<'_> {
        let Some(core) = &self.0 else {
            return TraceSpan {
                core: None,
                id: 0,
                parent: None,
                name: String::new(),
                start_ns: 0,
            };
        };
        let id = core.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = {
            let mut inner = core.inner.lock().expect("tracer poisoned");
            let parent = inner.stack.last().copied();
            inner.stack.push(id);
            parent
        };
        TraceSpan {
            core: Some(core),
            id,
            parent,
            name: name.to_owned(),
            start_ns: core.elapsed_ns(),
        }
    }

    /// The innermost open main-thread span, if any — used to parent
    /// worker spans under the engine phase that spawned them.
    #[must_use]
    pub fn current(&self) -> Option<u32> {
        let core = self.0.as_ref()?;
        core.inner
            .lock()
            .expect("tracer poisoned")
            .stack
            .last()
            .copied()
    }

    /// Creates a private collector for one worker thread. Spans recorded
    /// on it with an empty local stack are parented under `parent`
    /// (usually [`Tracer::current`] at spawn time). The collector merges
    /// its ring back into the tracer when dropped.
    #[must_use]
    pub fn worker(&self, parent: Option<u32>) -> WorkerTracer {
        match &self.0 {
            None => WorkerTracer {
                core: None,
                worker: 0,
                parent: None,
                stack: Vec::new(),
                ring: Ring::new(1),
            },
            Some(core) => WorkerTracer {
                core: Some(Arc::clone(core)),
                worker: core.next_worker.fetch_add(1, Ordering::Relaxed),
                parent,
                stack: Vec::new(),
                ring: Ring::new(core.capacity),
            },
        }
    }

    /// Records one pool run's per-worker utilization under `phase`.
    pub fn record_pool(&self, phase: &str, workers: Vec<PoolWorkerUtil>) {
        if let Some(core) = &self.0 {
            core.inner
                .lock()
                .expect("tracer poisoned")
                .pool
                .push(PoolPhase {
                    phase: phase.to_owned(),
                    workers,
                });
        }
    }

    /// Closes the tracer and assembles the [`TraceLog`]; `None` when
    /// disabled. Every [`WorkerTracer`] must have been dropped first or
    /// its records are lost.
    #[must_use]
    pub fn finish(self, run_id: &str) -> Option<TraceLog> {
        let core = self.0?;
        let mut inner = core.inner.lock().expect("tracer poisoned");
        let inner = std::mem::take(&mut *inner);
        let mut logs = vec![inner.ring.unwrap_or_else(|| Ring::new(1)).into_log(0)];
        logs.extend(inner.workers);
        logs.sort_by_key(|log| log.worker);
        let mut spans = Vec::new();
        let mut drops = Vec::new();
        for log in logs {
            drops.push((log.worker, log.dropped));
            spans.extend(log.records);
        }
        spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.id.cmp(&b.id)));
        Some(TraceLog {
            run_id: run_id.to_owned(),
            capacity: core.capacity,
            spans,
            drops,
            pool: inner.pool,
        })
    }
}

/// Guard for one open main-thread span; see [`Tracer::span`].
pub struct TraceSpan<'a> {
    core: Option<&'a Arc<TracerCore>>,
    id: u32,
    parent: Option<u32>,
    name: String,
    start_ns: u64,
}

impl TraceSpan<'_> {
    /// The span's id (0 when the tracer is disabled).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let Some(core) = self.core else { return };
        let dur_ns = core.elapsed_ns().saturating_sub(self.start_ns);
        let mut inner = core.inner.lock().expect("tracer poisoned");
        inner.stack.retain(|&open| open != self.id);
        if let Some(ring) = inner.ring.as_mut() {
            ring.push(TraceRecord {
                id: self.id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                worker: 0,
                start_ns: self.start_ns,
                dur_ns,
            });
        }
    }
}

/// Handle for one open worker span; close it with [`WorkerTracer::end`].
#[derive(Debug)]
pub struct WorkerSpanHandle {
    id: u32,
    parent: Option<u32>,
    name: String,
    start_ns: u64,
}

/// A worker thread's private span collector; see [`Tracer::worker`].
///
/// All recording is thread-local (no locks, no atomics beyond id
/// allocation); the ring merges into the shared tracer on drop.
pub struct WorkerTracer {
    core: Option<Arc<TracerCore>>,
    worker: u32,
    parent: Option<u32>,
    stack: Vec<u32>,
    ring: Ring,
}

impl WorkerTracer {
    /// Whether this collector records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a span on this worker. Nested `begin`s parent under the
    /// innermost open worker span; top-level ones under the parent given
    /// to [`Tracer::worker`].
    #[must_use]
    pub fn begin(&mut self, name: &str) -> WorkerSpanHandle {
        let Some(core) = &self.core else {
            return WorkerSpanHandle {
                id: 0,
                parent: None,
                name: String::new(),
                start_ns: 0,
            };
        };
        let id = core.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = self.stack.last().copied().or(self.parent);
        self.stack.push(id);
        WorkerSpanHandle {
            id,
            parent,
            name: name.to_owned(),
            start_ns: core.elapsed_ns(),
        }
    }

    /// Closes a span opened with [`WorkerTracer::begin`].
    pub fn end(&mut self, handle: WorkerSpanHandle) {
        let Some(core) = &self.core else { return };
        let dur_ns = core.elapsed_ns().saturating_sub(handle.start_ns);
        self.stack.retain(|&open| open != handle.id);
        self.ring.push(TraceRecord {
            id: handle.id,
            parent: handle.parent,
            name: handle.name,
            worker: self.worker,
            start_ns: handle.start_ns,
            dur_ns,
        });
    }
}

impl Drop for WorkerTracer {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            let ring = std::mem::replace(&mut self.ring, Ring::new(1));
            let log = ring.into_log(self.worker);
            core.inner
                .lock()
                .expect("tracer poisoned")
                .workers
                .push(log);
        }
    }
}

/// A finished trace: every collector's spans merged, drop counts, and
/// per-phase pool utilization. Serialized to `<run-id>.trace.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// The run this trace belongs to.
    pub run_id: String,
    /// Ring capacity the trace was recorded with.
    pub capacity: usize,
    /// All spans, sorted by `(start_ns, id)`.
    pub spans: Vec<TraceRecord>,
    /// `(worker, dropped)` per collector, ascending worker id.
    pub drops: Vec<(u32, u64)>,
    /// Pool utilization per engine phase, in recording order.
    pub pool: Vec<PoolPhase>,
}

fn opt_u32(value: Option<u32>) -> String {
    value.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

impl TraceLog {
    /// Total records dropped across all collectors.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.drops.iter().map(|&(_, d)| d).sum()
    }

    /// Serializes the trace as JSONL (wall-clock data throughout; the
    /// whole file is outside the determinism contract).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"event\": \"trace_start\", \"run_id\": {}, \"capacity\": {}}}\n",
            escape(&self.run_id),
            self.capacity
        ));
        for span in &self.spans {
            out.push_str(&format!(
                "{{\"event\": \"span\", \"id\": {}, \"parent\": {}, \"name\": {}, \
                 \"worker\": {}, \"start_ns\": {}, \"dur_ns\": {}}}\n",
                span.id,
                opt_u32(span.parent),
                escape(&span.name),
                span.worker,
                span.start_ns,
                span.dur_ns
            ));
        }
        for &(worker, dropped) in &self.drops {
            out.push_str(&format!(
                "{{\"event\": \"worker_drops\", \"name\": {}, \"worker\": {worker}, \
                 \"dropped\": {dropped}}}\n",
                escape(&format!("trace.{worker}.dropped"))
            ));
        }
        for phase in &self.pool {
            let cells: Vec<String> = phase
                .workers
                .iter()
                .map(|w| {
                    let pulls: Vec<String> = w.pull_ns.iter().map(u64::to_string).collect();
                    format!(
                        "{{\"worker\": {}, \"tasks\": {}, \"batches\": {}, \"busy_ns\": {}, \
                         \"idle_ns\": {}, \"pull_ns\": [{}]}}",
                        w.worker,
                        w.tasks,
                        w.batches,
                        w.busy_ns,
                        w.idle_ns,
                        pulls.join(", ")
                    )
                })
                .collect();
            out.push_str(&format!(
                "{{\"event\": \"pool_phase\", \"phase\": {}, \"workers\": [{}]}}\n",
                escape(&phase.phase),
                cells.join(", ")
            ));
        }
        out.push_str(&format!(
            "{{\"event\": \"trace_end\", \"spans\": {}, \"dropped\": {}}}\n",
            self.spans.len(),
            self.total_dropped()
        ));
        out
    }

    /// Parses a trace sidecar written by [`TraceLog::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed lines, unknown event tags, or a
    /// `trace_end` whose totals disagree with the parsed records.
    pub fn parse(text: &str) -> Result<TraceLog, JsonError> {
        let fail = |message: String| JsonError { pos: 0, message };
        let mut log = TraceLog {
            run_id: String::new(),
            capacity: 0,
            spans: Vec::new(),
            drops: Vec::new(),
            pool: Vec::new(),
        };
        let mut saw_end = false;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let value = Json::parse(line)?;
            let kind = value
                .str_field("event")
                .ok_or_else(|| fail("missing event tag".to_owned()))?;
            let u64_of = |key: &str| {
                value
                    .u64_field(key)
                    .ok_or_else(|| fail(format!("missing {key}")))
            };
            #[allow(clippy::cast_possible_truncation)]
            match kind {
                "trace_start" => {
                    log.run_id = value
                        .str_field("run_id")
                        .ok_or_else(|| fail("missing run_id".to_owned()))?
                        .to_owned();
                    log.capacity = u64_of("capacity")? as usize;
                }
                "span" => {
                    let parent = match value.get("parent") {
                        Some(Json::Null) | None => None,
                        Some(v) => {
                            Some(v.as_u64().ok_or_else(|| fail("bad parent".to_owned()))? as u32)
                        }
                    };
                    log.spans.push(TraceRecord {
                        id: u64_of("id")? as u32,
                        parent,
                        name: value
                            .str_field("name")
                            .ok_or_else(|| fail("missing name".to_owned()))?
                            .to_owned(),
                        worker: u64_of("worker")? as u32,
                        start_ns: u64_of("start_ns")?,
                        dur_ns: u64_of("dur_ns")?,
                    });
                }
                "worker_drops" => {
                    log.drops
                        .push((u64_of("worker")? as u32, u64_of("dropped")?));
                }
                "pool_phase" => {
                    let workers = value
                        .get("workers")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| fail("missing workers".to_owned()))?
                        .iter()
                        .map(|w| {
                            let get = |key: &str| {
                                w.u64_field(key)
                                    .ok_or_else(|| fail(format!("missing {key}")))
                            };
                            let pull_ns = w
                                .get("pull_ns")
                                .and_then(Json::as_arr)
                                .ok_or_else(|| fail("missing pull_ns".to_owned()))?
                                .iter()
                                .map(|p| p.as_u64().ok_or_else(|| fail("bad pull_ns".to_owned())))
                                .collect::<Result<Vec<_>, _>>()?;
                            Ok(PoolWorkerUtil {
                                worker: get("worker")? as usize,
                                tasks: get("tasks")? as usize,
                                batches: get("batches")?,
                                busy_ns: get("busy_ns")?,
                                idle_ns: get("idle_ns")?,
                                pull_ns,
                            })
                        })
                        .collect::<Result<Vec<_>, JsonError>>()?;
                    log.pool.push(PoolPhase {
                        phase: value
                            .str_field("phase")
                            .ok_or_else(|| fail("missing phase".to_owned()))?
                            .to_owned(),
                        workers,
                    });
                }
                "trace_end" => {
                    if u64_of("spans")? != log.spans.len() as u64 {
                        return Err(fail("trace_end span count mismatch".to_owned()));
                    }
                    if u64_of("dropped")? != log.total_dropped() {
                        return Err(fail("trace_end drop count mismatch".to_owned()));
                    }
                    saw_end = true;
                }
                other => return Err(fail(format!("unknown trace event '{other}'"))),
            }
        }
        if !saw_end {
            return Err(fail("trace stream has no trace_end line".to_owned()));
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let span = tracer.span("ignored");
            assert_eq!(span.id(), 0);
        }
        let mut worker = tracer.worker(None);
        let h = worker.begin("ignored");
        worker.end(h);
        drop(worker);
        assert!(tracer.finish("x").is_none());
    }

    #[test]
    fn spans_nest_with_parent_links() {
        let tracer = Tracer::new(16);
        {
            let outer = tracer.span("outer");
            assert_eq!(tracer.current(), Some(outer.id()));
            let inner = tracer.span("inner");
            assert_eq!(tracer.current(), Some(inner.id()));
            drop(inner);
            assert_eq!(tracer.current(), Some(outer.id()));
        }
        let log = tracer.finish("t").unwrap();
        assert_eq!(log.spans.len(), 2);
        let outer = log.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = log.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.worker, 0);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn worker_spans_parent_under_the_given_span() {
        let tracer = Tracer::new(16);
        let phase = tracer.span("phase");
        let mut worker = tracer.worker(Some(phase.id()));
        let phase_id = phase.id();
        let outer = worker.begin("task");
        let nested = worker.begin("sub");
        worker.end(nested);
        worker.end(outer);
        drop(worker);
        drop(phase);
        let log = tracer.finish("t").unwrap();
        let task = log.spans.iter().find(|s| s.name == "task").unwrap();
        let sub = log.spans.iter().find(|s| s.name == "sub").unwrap();
        assert_eq!(task.parent, Some(phase_id));
        assert_eq!(sub.parent, Some(task.id));
        assert_eq!(task.worker, 1);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let tracer = Tracer::new(4);
        let mut worker = tracer.worker(None);
        for i in 0..10 {
            let h = worker.begin(&format!("s{i}"));
            worker.end(h);
        }
        drop(worker);
        let log = tracer.finish("t").unwrap();
        assert_eq!(log.spans.len(), 4);
        assert_eq!(log.total_dropped(), 6);
        // The newest records survive (oldest were overwritten).
        let names: Vec<&str> = log.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["s6", "s7", "s8", "s9"]);
        assert!(log.drops.contains(&(1, 6)));
    }

    #[test]
    fn trace_log_round_trips_through_jsonl() {
        let tracer = Tracer::new(8);
        {
            let _phase = tracer.span("phase");
            let mut worker = tracer.worker(tracer.current());
            let h = worker.begin("task");
            worker.end(h);
        }
        tracer.record_pool(
            "phase",
            vec![PoolWorkerUtil {
                worker: 0,
                tasks: 3,
                batches: 2,
                busy_ns: 100,
                idle_ns: 10,
                pull_ns: vec![5, 7],
            }],
        );
        let log = tracer.finish("round-trip").unwrap();
        let text = log.to_jsonl();
        assert!(text.contains("\"trace.1.dropped\""));
        let parsed = TraceLog::parse(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn parser_rejects_corrupt_streams() {
        assert!(TraceLog::parse("not json\n").is_err());
        assert!(TraceLog::parse("{\"event\": \"mystery\"}\n").is_err());
        // A truncated stream (no trace_end) must not parse as complete.
        let tracer = Tracer::new(8);
        let _ = tracer.span("s");
        let text = tracer.finish("t").unwrap().to_jsonl();
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("trace_end"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(TraceLog::parse(&truncated).is_err());
        // A tampered span count is caught by the trailer check.
        let tampered = text.replace("\"spans\": 1", "\"spans\": 7");
        assert!(TraceLog::parse(&tampered).is_err());
    }

    #[test]
    fn occupancy_is_busy_over_wall() {
        let util = PoolWorkerUtil {
            worker: 0,
            tasks: 1,
            batches: 1,
            busy_ns: 75,
            idle_ns: 25,
            pull_ns: Vec::new(),
        };
        assert!((util.occupancy() - 0.75).abs() < 1e-12);
    }
}
