//! Time-series telemetry: periodic metric snapshots keyed by *pages
//! evaluated*, written to a `<run-id>.series.jsonl` sidecar.
//!
//! Where the main event stream ([`crate::sink`]) carries one final
//! snapshot per metric, a [`SeriesWriter`] samples every counter and
//! histogram at deterministic barriers while the run is still going. The
//! sample key is the cumulative number of pages evaluated — never wall
//! clock — so the sidecar is byte-identical per seed at any thread count
//! and with tracing or monitoring on or off. Volatile metrics (the
//! sim-pool steal counters) are sampled too, but tagged as
//! [`Event::SeriesVolatile`] so [`crate::sink::strip_volatile`] removes
//! them before byte comparison, exactly like the main stream's
//! `volatile` lines.
//!
//! Samples are only taken at *barriers*: points where every worker
//! thread has joined and the registry's counter values are a pure
//! function of the seed (unit completions in the experiment runner,
//! chunk boundaries coinciding with unit completions in checkpointed
//! runs). Sampling anywhere else would observe scheduling-dependent
//! partial counts and break the determinism contract.
//!
//! Checkpoint/resume: the writer exposes its cursor
//! ([`SeriesWriter::cursor`]) for inclusion in an engine snapshot, and
//! [`SeriesWriter::resume`] reopens the sidecar in append mode at that
//! cursor, so an interrupted-and-resumed run's sidecar is byte-identical
//! to an uninterrupted one's.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::registry::Registry;
use crate::sink::{Event, SharedBuf};

/// The series writer's position, serialized into checkpoints so a
/// resumed run continues the sidecar instead of restarting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeriesCursor {
    /// Next event sequence number.
    pub seq: u64,
    /// Cumulative pages evaluated.
    pub pages: u64,
    /// Pages key of the last emitted sample (`None` before the first).
    pub last_sample: Option<u64>,
}

struct SeriesState {
    writer: Option<Box<dyn Write + Send>>,
    cursor: SeriesCursor,
}

/// Periodic snapshot writer for one run; see the module docs.
pub struct SeriesWriter {
    run_id: String,
    /// Minimum pages between samples (0 = sample at every barrier).
    every: u64,
    state: Mutex<SeriesState>,
}

impl SeriesWriter {
    fn with_sink(
        run_id: &str,
        every: u64,
        writer: Option<Box<dyn Write + Send>>,
        cursor: SeriesCursor,
        emit_start: bool,
    ) -> io::Result<SeriesWriter> {
        let series = SeriesWriter {
            run_id: run_id.to_owned(),
            every,
            state: Mutex::new(SeriesState { writer, cursor }),
        };
        if emit_start {
            series.emit(&Event::RunStart {
                run_id: run_id.to_owned(),
            })?;
        }
        Ok(series)
    }

    /// A writer that records nothing.
    #[must_use]
    pub fn disabled() -> SeriesWriter {
        SeriesWriter {
            run_id: String::new(),
            every: 0,
            state: Mutex::new(SeriesState {
                writer: None,
                cursor: SeriesCursor::default(),
            }),
        }
    }

    /// Creates `<dir>/<run-id>.series.jsonl` (truncating any previous
    /// sidecar) and writes the opening `run_start` line.
    ///
    /// # Errors
    ///
    /// Fails when the directory or file cannot be created/written.
    pub fn create(run_id: &str, dir: &Path, every: u64) -> io::Result<SeriesWriter> {
        fs::create_dir_all(dir)?;
        let file = fs::File::create(dir.join(format!("{run_id}.series.jsonl")))?;
        Self::with_sink(
            run_id,
            every,
            Some(Box::new(io::BufWriter::new(file))),
            SeriesCursor::default(),
            true,
        )
    }

    /// Reopens `<dir>/<run-id>.series.jsonl` in append mode at `cursor`
    /// (taken from a checkpoint), so the resumed run's samples continue
    /// the interrupted run's byte-for-byte.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be opened for appending.
    pub fn resume(
        run_id: &str,
        dir: &Path,
        every: u64,
        cursor: SeriesCursor,
    ) -> io::Result<SeriesWriter> {
        fs::create_dir_all(dir)?;
        let file = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(dir.join(format!("{run_id}.series.jsonl")))?;
        Self::with_sink(
            run_id,
            every,
            Some(Box::new(io::BufWriter::new(file))),
            cursor,
            false,
        )
    }

    /// Streams samples into a [`SharedBuf`] (for in-process tests).
    ///
    /// # Errors
    ///
    /// Fails when the opening `run_start` line cannot be written.
    pub fn with_buffer(run_id: &str, buffer: SharedBuf, every: u64) -> io::Result<SeriesWriter> {
        Self::with_sink(
            run_id,
            every,
            Some(Box::new(buffer)),
            SeriesCursor::default(),
            true,
        )
    }

    /// Whether this writer records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.state
            .lock()
            .expect("series state poisoned")
            .writer
            .is_some()
    }

    /// The run identifier.
    #[must_use]
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The writer's current position (for checkpointing).
    #[must_use]
    pub fn cursor(&self) -> SeriesCursor {
        self.state.lock().expect("series state poisoned").cursor
    }

    fn emit(&self, event: &Event) -> io::Result<()> {
        let mut state = self.state.lock().expect("series state poisoned");
        Self::emit_locked(&mut state, event)
    }

    fn emit_locked(state: &mut SeriesState, event: &Event) -> io::Result<()> {
        let seq = state.cursor.seq;
        if let Some(writer) = state.writer.as_mut() {
            let line = event.to_json(seq);
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            state.cursor.seq = seq + 1;
        }
        Ok(())
    }

    /// Advances the pages-evaluated cursor by `pages_delta` and, when the
    /// sampling interval has been crossed, snapshots every registry metric
    /// at this barrier: deterministic counters first (sorted by name),
    /// then histograms, then volatile counters — all keyed by the
    /// cumulative page count. Returns whether a sample was emitted.
    ///
    /// Must only be called at barriers (no simulation worker running).
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn advance(&self, registry: &Registry, pages_delta: u64) -> io::Result<bool> {
        self.advance_with(registry, pages_delta, &[])
    }

    /// [`SeriesWriter::advance`] plus streaming estimate snapshots: after
    /// the deterministic counters and histograms, one
    /// [`Event::SeriesEstimate`] line per entry of `estimates` — the RSE
    /// trajectory of every unit metric, keyed by the same cumulative page
    /// count. Estimates are emitted in slice order, which callers keep
    /// deterministic (unit declaration order), before the volatile block
    /// so the stripped sidecar stays contiguous.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn advance_with(
        &self,
        registry: &Registry,
        pages_delta: u64,
        estimates: &[crate::estimate::UnitEstimate],
    ) -> io::Result<bool> {
        let mut state = self.state.lock().expect("series state poisoned");
        if state.writer.is_none() {
            return Ok(false);
        }
        state.cursor.pages += pages_delta;
        let pages = state.cursor.pages;
        let due = match state.cursor.last_sample {
            None => true,
            Some(last) => pages >= last + self.every.max(1),
        };
        if !due {
            return Ok(false);
        }
        for (name, value) in registry.counters() {
            Self::emit_locked(&mut state, &Event::Series { name, pages, value })?;
        }
        for (name, snap) in registry.histograms() {
            Self::emit_locked(
                &mut state,
                &Event::series_from_snapshot(&name, pages, &snap),
            )?;
        }
        for est in estimates {
            Self::emit_locked(
                &mut state,
                &Event::SeriesEstimate {
                    name: est.name(),
                    pages,
                    count: est.moments.count(),
                    mean: est.moments.mean(),
                    rse: est.moments.rse(),
                    ci95: est.moments.ci95_half_width(),
                },
            )?;
        }
        for (name, value) in registry.volatile_counters() {
            Self::emit_locked(&mut state, &Event::SeriesVolatile { name, pages, value })?;
        }
        state.cursor.last_sample = Some(pages);
        // Flush at every barrier so an interrupt at a checkpoint barrier
        // leaves a complete sidecar behind for `resume` to append to.
        if let Some(writer) = state.writer.as_mut() {
            writer.flush()?;
        }
        Ok(true)
    }

    /// Writes the closing `run_end` line and flushes. Returns the total
    /// event count (0 when disabled).
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(self) -> io::Result<u64> {
        let events = {
            let state = self.state.lock().expect("series state poisoned");
            if state.writer.is_none() {
                return Ok(0);
            }
            state.cursor.seq + 1
        };
        self.emit(&Event::RunEnd { events })?;
        let mut state = self.state.into_inner().expect("series state poisoned");
        if let Some(writer) = state.writer.as_mut() {
            writer.flush()?;
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::strip_volatile;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("mc.A.pages").add(4);
        reg.histogram("mc.A.page_fault_arrivals").record(3);
        reg.volatile_counter("pool.A.pages_stolen").add(2);
        reg
    }

    #[test]
    fn advance_emits_ordered_samples_at_barriers() {
        let buf = SharedBuf::new();
        let series = SeriesWriter::with_buffer("s1", buf.clone(), 0).unwrap();
        let reg = sample_registry();
        assert!(series.advance(&reg, 4).unwrap());
        reg.counter("mc.A.pages").add(4);
        assert!(series.advance(&reg, 4).unwrap());
        let events = series.finish().unwrap();

        let parsed = Event::parse_stream(&buf.text()).unwrap();
        assert_eq!(parsed.len() as u64, events);
        assert!(matches!(&parsed[0], Event::RunStart { run_id } if run_id == "s1"));
        // Per barrier: counter, histogram, volatile — in that order.
        assert!(matches!(&parsed[1], Event::Series { name, pages, value }
                if name == "mc.A.pages" && *pages == 4 && *value == 4));
        assert!(matches!(&parsed[2], Event::SeriesHistogram { pages, .. } if *pages == 4));
        assert!(
            matches!(&parsed[3], Event::SeriesVolatile { name, pages, .. }
                if name == "pool.A.pages_stolen" && *pages == 4)
        );
        assert!(matches!(&parsed[4], Event::Series { pages, value, .. }
                if *pages == 8 && *value == 8));
        assert!(matches!(parsed.last(), Some(Event::RunEnd { .. })));
    }

    #[test]
    fn interval_skips_barriers_between_samples() {
        let buf = SharedBuf::new();
        let series = SeriesWriter::with_buffer("s2", buf.clone(), 8).unwrap();
        let reg = sample_registry();
        assert!(series.advance(&reg, 4).unwrap(), "first barrier samples");
        assert!(!series.advance(&reg, 4).unwrap(), "pages 8 < 4 + 8");
        assert!(series.advance(&reg, 4).unwrap(), "pages 12 >= 4 + 8");
        series.finish().unwrap();
        let pages: Vec<u64> = Event::parse_stream(&buf.text())
            .unwrap()
            .iter()
            .filter_map(|e| match e {
                Event::Series { pages, .. } => Some(*pages),
                _ => None,
            })
            .collect();
        assert_eq!(pages, vec![4, 12]);
    }

    #[test]
    fn stripped_series_is_volatile_free() {
        let buf = SharedBuf::new();
        let series = SeriesWriter::with_buffer("s3", buf.clone(), 0).unwrap();
        let reg = sample_registry();
        series.advance(&reg, 4).unwrap();
        series.finish().unwrap();
        let raw = buf.text();
        assert!(raw.contains("series_volatile"));
        let stripped = strip_volatile(&raw);
        assert!(!stripped.contains("series_volatile"));
        assert!(stripped.contains("\"event\": \"series\""));
        assert!(stripped.contains("series_histogram"));
    }

    #[test]
    fn advance_with_emits_estimate_trajectory() {
        use crate::estimate::{Moments, UnitEstimate};
        let buf = SharedBuf::new();
        let series = SeriesWriter::with_buffer("s4", buf.clone(), 0).unwrap();
        let reg = sample_registry();
        let est = vec![UnitEstimate {
            unit: "Aegis 9x61#512".to_owned(),
            metric: "lifetime",
            moments: Moments::from_samples(&[10, 12, 14, 16]),
        }];
        series.advance_with(&reg, 4, &est).unwrap();
        series.finish().unwrap();
        let parsed = Event::parse_stream(&buf.text()).unwrap();
        let estimate = parsed
            .iter()
            .find_map(|e| match e {
                Event::SeriesEstimate {
                    name,
                    pages,
                    count,
                    mean,
                    ..
                } => Some((name.clone(), *pages, *count, *mean)),
                _ => None,
            })
            .expect("estimate line emitted");
        assert_eq!(estimate, ("Aegis 9x61#512.lifetime".to_owned(), 4, 4, 13.0));
        // Ordering: the estimate sits between the deterministic block and
        // the volatile tail, so stripping keeps one contiguous prefix.
        let vol_idx = parsed
            .iter()
            .position(|e| matches!(e, Event::SeriesVolatile { .. }))
            .unwrap();
        let est_idx = parsed
            .iter()
            .position(|e| matches!(e, Event::SeriesEstimate { .. }))
            .unwrap();
        assert!(est_idx < vol_idx);
    }

    #[test]
    fn disabled_writer_emits_nothing() {
        let series = SeriesWriter::disabled();
        assert!(!series.is_enabled());
        let reg = sample_registry();
        assert!(!series.advance(&reg, 4).unwrap());
        assert_eq!(series.cursor(), SeriesCursor::default());
        assert_eq!(series.finish().unwrap(), 0);
    }

    #[test]
    fn resume_appends_byte_identically() {
        let dir =
            std::env::temp_dir().join(format!("sim-telemetry-series-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let reg = sample_registry();

        // Straight run: two barriers, then finish.
        let straight = SeriesWriter::create("straight", &dir, 0).unwrap();
        straight.advance(&reg, 4).unwrap();
        straight.advance(&reg, 4).unwrap();
        straight.finish().unwrap();

        // Interrupted run: one barrier, cursor saved, process "dies".
        let first = SeriesWriter::create("split", &dir, 0).unwrap();
        first.advance(&reg, 4).unwrap();
        let cursor = first.cursor();
        drop(first); // no finish(): the interrupt path never closes the stream
        let resumed = SeriesWriter::resume("split", &dir, 0, cursor).unwrap();
        resumed.advance(&reg, 4).unwrap();
        resumed.finish().unwrap();

        let a = fs::read_to_string(dir.join("straight.series.jsonl")).unwrap();
        let b = fs::read_to_string(dir.join("split.series.jsonl")).unwrap();
        assert_eq!(
            a.replace("straight", "split"),
            b,
            "resumed sidecar must equal the uninterrupted one"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
