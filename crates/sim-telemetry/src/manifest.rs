//! Run manifests: the reproducibility sidecar written next to each
//! telemetry event stream as `<run-id>.manifest.json`.
//!
//! The manifest is the one place wall-clock data is allowed to live
//! (creation timestamp, git describe, per-phase durations); keeping it
//! out of the JSONL stream is what lets same-seed event streams be
//! byte-identical. The `options` map records everything needed to replay
//! the run — seed, pages, trials, failure criterion — so every CSV in
//! `results/` is reproducible from its manifest alone.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{escape, Json, JsonError};

/// Metadata for one finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The run identifier (also the event stream's file stem).
    pub run_id: String,
    /// Unix milliseconds when the run started.
    pub created_unix_ms: u64,
    /// `git describe --always --dirty` output, or `"unknown"`.
    pub git: String,
    /// Replay inputs (seed, pages, trials, ...), sorted by key.
    pub options: BTreeMap<String, String>,
    /// `(span name, duration in nanoseconds)` in completion order.
    pub phases: Vec<(String, u64)>,
    /// Number of events in the JSONL stream, `run_start`/`run_end` included.
    pub events: u64,
    /// File name of the event stream, when one was written to disk.
    pub events_file: Option<String>,
}

impl RunManifest {
    /// Renders the manifest as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"run_id\": {},", escape(&self.run_id));
        let _ = writeln!(out, "  \"created_unix_ms\": {},", self.created_unix_ms);
        let _ = writeln!(out, "  \"git\": {},", escape(&self.git));
        let _ = writeln!(out, "  \"options\": {{");
        let n_options = self.options.len();
        for (i, (key, value)) in self.options.iter().enumerate() {
            let comma = if i + 1 < n_options { "," } else { "" };
            let _ = writeln!(out, "    {}: {}{comma}", escape(key), escape(value));
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"phases\": [");
        let n_phases = self.phases.len();
        for (i, (name, nanos)) in self.phases.iter().enumerate() {
            let comma = if i + 1 < n_phases { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"nanos\": {nanos}}}{comma}",
                escape(name)
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"events\": {},", self.events);
        match &self.events_file {
            Some(file) => {
                let _ = writeln!(out, "  \"events_file\": {}", escape(file));
            }
            None => {
                let _ = writeln!(out, "  \"events_file\": null");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a manifest back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed JSON or missing required fields.
    pub fn parse(text: &str) -> Result<RunManifest, JsonError> {
        let value = Json::parse(text)?;
        let fail = |message: &str| JsonError {
            pos: 0,
            message: message.to_owned(),
        };
        let mut options = BTreeMap::new();
        if let Some(Json::Obj(fields)) = value.get("options") {
            for (key, field) in fields {
                options.insert(
                    key.clone(),
                    field
                        .as_str()
                        .ok_or_else(|| fail("option values must be strings"))?
                        .to_owned(),
                );
            }
        }
        let mut phases = Vec::new();
        if let Some(list) = value.get("phases").and_then(Json::as_arr) {
            for phase in list {
                phases.push((
                    phase
                        .str_field("name")
                        .ok_or_else(|| fail("phase missing name"))?
                        .to_owned(),
                    phase
                        .u64_field("nanos")
                        .ok_or_else(|| fail("phase missing nanos"))?,
                ));
            }
        }
        Ok(RunManifest {
            run_id: value
                .str_field("run_id")
                .ok_or_else(|| fail("missing run_id"))?
                .to_owned(),
            created_unix_ms: value
                .u64_field("created_unix_ms")
                .ok_or_else(|| fail("missing created_unix_ms"))?,
            git: value.str_field("git").unwrap_or("unknown").to_owned(),
            options,
            phases,
            events: value.u64_field("events").unwrap_or(0),
            events_file: value.str_field("events_file").map(str::to_owned),
        })
    }
}

/// Current wall clock as Unix milliseconds (0 if the clock is broken).
#[must_use]
pub fn unix_millis() -> u64 {
    #[allow(clippy::cast_possible_truncation)]
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Best-effort `git describe --always --dirty`; `"unknown"` when git is
/// unavailable or the working directory is not a repository.
#[must_use]
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut options = BTreeMap::new();
        options.insert("seed".to_owned(), "42".to_owned());
        options.insert("pages".to_owned(), "256".to_owned());
        let manifest = RunManifest {
            run_id: "fig5-s42".to_owned(),
            created_unix_ms: 1_722_000_000_123,
            git: "3116881-dirty".to_owned(),
            options,
            phases: vec![
                ("fig5.montecarlo".to_owned(), 1_234_567),
                ("fig5.codec-probe".to_owned(), 89),
            ],
            events: 17,
            events_file: Some("fig5-s42.jsonl".to_owned()),
        };
        let parsed = RunManifest::parse(&manifest.to_json()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn manifest_tolerates_null_events_file() {
        let manifest = RunManifest {
            run_id: "x".to_owned(),
            created_unix_ms: 5,
            git: "unknown".to_owned(),
            options: BTreeMap::new(),
            phases: Vec::new(),
            events: 0,
            events_file: None,
        };
        let parsed = RunManifest::parse(&manifest.to_json()).unwrap();
        assert_eq!(parsed.events_file, None);
    }

    #[test]
    fn manifest_rejects_missing_run_id() {
        assert!(RunManifest::parse("{\"events\": 3}").is_err());
    }

    #[test]
    fn git_describe_never_panics() {
        let described = git_describe();
        assert!(!described.is_empty());
    }
}
