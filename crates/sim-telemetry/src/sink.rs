//! JSONL event stream: one JSON object per line, written through any
//! `Write` sink (a file under `results/telemetry/` in production, an
//! in-memory [`SharedBuf`] in tests).
//!
//! The stream is *deterministic by construction*: events carry a
//! sequence number and metric snapshots but never wall-clock data —
//! span timing lives only in the run manifest — so two same-seed runs
//! produce byte-identical `.jsonl` files (asserted by
//! `tests/determinism.rs`).
//!
//! One exception is carved out explicitly: [`Event::Volatile`] lines
//! carry scheduling-dependent values (the sim-pool steal counters).
//! Their *presence, order and sequence numbers* are still deterministic
//! — only the values vary — and [`strip_volatile`] removes them so the
//! byte-identity contract becomes "streams are identical after
//! stripping volatile lines".

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::json::{escape, Json, JsonError};
use crate::registry::HistogramSnapshot;

/// One line of the telemetry event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// First line of every stream.
    RunStart {
        /// The run this stream belongs to.
        run_id: String,
    },
    /// A span opened.
    SpanBegin {
        /// Span name (e.g. `fig5.montecarlo`).
        name: String,
    },
    /// A span closed. Durations are manifest-only, so this carries no time.
    SpanEnd {
        /// Span name.
        name: String,
    },
    /// Final value of one counter.
    Counter {
        /// Metric name (`layer.scheme.metric`).
        name: String,
        /// Final value.
        value: u64,
    },
    /// Final state of one histogram. `buckets` is a sparse
    /// `[index, count]` list to keep lines short.
    Histogram {
        /// Metric name (`layer.scheme.metric`).
        name: String,
        /// Sample count.
        count: u64,
        /// Sample sum.
        sum: u64,
        /// Non-empty buckets as `(index, count)` pairs, ascending.
        buckets: Vec<(usize, u64)>,
    },
    /// Final value of one *volatile* counter: a metric whose value is
    /// scheduling-dependent (thread interleaving), unlike everything else
    /// in the stream. Emitted in sorted-name order at a deterministic
    /// stream position; see [`strip_volatile`].
    Volatile {
        /// Metric name (`layer.scheme.metric`).
        name: String,
        /// Final value (not covered by the determinism contract).
        value: u64,
    },
    /// Periodic deterministic sample of one counter, keyed by pages
    /// evaluated (never wall clock). Lives in the `<run-id>.series.jsonl`
    /// sidecar; covered by the byte-identity contract.
    Series {
        /// Metric name (`layer.scheme.metric`).
        name: String,
        /// Pages evaluated when the sample was taken.
        pages: u64,
        /// Counter value at the sample barrier.
        value: u64,
    },
    /// Periodic deterministic sample of one histogram, keyed by pages
    /// evaluated. Same sparse bucket encoding as [`Event::Histogram`].
    SeriesHistogram {
        /// Metric name (`layer.scheme.metric`).
        name: String,
        /// Pages evaluated when the sample was taken.
        pages: u64,
        /// Sample count.
        count: u64,
        /// Sample sum.
        sum: u64,
        /// Non-empty buckets as `(index, count)` pairs, ascending.
        buckets: Vec<(usize, u64)>,
    },
    /// Periodic sample of one *volatile* counter (pool/trace metrics whose
    /// values are scheduling-dependent). Presence, order and sequence
    /// numbers are deterministic; [`strip_volatile`] removes these lines
    /// like [`Event::Volatile`].
    SeriesVolatile {
        /// Metric name (`layer.scheme.metric`).
        name: String,
        /// Pages evaluated when the sample was taken.
        pages: u64,
        /// Counter value (not covered by the determinism contract).
        value: u64,
    },
    /// Periodic deterministic estimate snapshot: the streaming mean, RSE
    /// and 95% CI half-width of one unit metric at a page-count barrier
    /// (the per-sample relative-standard-error trajectory). Lives in the
    /// `<run-id>.series.jsonl` sidecar; covered by the byte-identity
    /// contract — every field is a pure function of the samples processed.
    SeriesEstimate {
        /// Estimate name (`scheme#block_bits.metric`).
        name: String,
        /// Pages evaluated when the snapshot was taken.
        pages: u64,
        /// Samples accumulated.
        count: u64,
        /// Streaming mean.
        mean: f64,
        /// Relative standard error (may be infinite below two samples;
        /// serialized as `null`, JSON having no Infinity).
        rse: f64,
        /// 95% confidence half-width (normal approximation).
        ci95: f64,
    },
    /// Last line of every stream.
    RunEnd {
        /// Total number of events in the stream, this line included.
        events: u64,
    },
}

impl Event {
    /// Builds a histogram event from a registry snapshot.
    #[must_use]
    pub fn from_snapshot(name: &str, snap: &HistogramSnapshot) -> Event {
        Event::Histogram {
            name: name.to_owned(),
            count: snap.count,
            sum: snap.sum,
            buckets: snap
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
        }
    }

    /// Builds a deterministic series histogram sample from a registry
    /// snapshot, keyed by pages evaluated.
    #[must_use]
    pub fn series_from_snapshot(name: &str, pages: u64, snap: &HistogramSnapshot) -> Event {
        let Event::Histogram {
            name,
            count,
            sum,
            buckets,
        } = Event::from_snapshot(name, snap)
        else {
            unreachable!("from_snapshot always builds Event::Histogram")
        };
        Event::SeriesHistogram {
            name,
            pages,
            count,
            sum,
            buckets,
        }
    }

    /// Renders the event as one JSON line (no trailing newline). `seq` is
    /// the 0-based position of this event in the stream.
    #[must_use]
    pub fn to_json(&self, seq: u64) -> String {
        match self {
            Event::RunStart { run_id } => format!(
                "{{\"seq\": {seq}, \"event\": \"run_start\", \"run_id\": {}}}",
                escape(run_id)
            ),
            Event::SpanBegin { name } => format!(
                "{{\"seq\": {seq}, \"event\": \"span_begin\", \"name\": {}}}",
                escape(name)
            ),
            Event::SpanEnd { name } => format!(
                "{{\"seq\": {seq}, \"event\": \"span_end\", \"name\": {}}}",
                escape(name)
            ),
            Event::Counter { name, value } => format!(
                "{{\"seq\": {seq}, \"event\": \"counter\", \"name\": {}, \"value\": {value}}}",
                escape(name)
            ),
            Event::Histogram {
                name,
                count,
                sum,
                buckets,
            } => {
                let cells: Vec<String> = buckets
                    .iter()
                    .map(|(index, count)| format!("[{index}, {count}]"))
                    .collect();
                format!(
                    "{{\"seq\": {seq}, \"event\": \"histogram\", \"name\": {}, \
                     \"count\": {count}, \"sum\": {sum}, \"buckets\": [{}]}}",
                    escape(name),
                    cells.join(", ")
                )
            }
            Event::Volatile { name, value } => format!(
                "{{\"seq\": {seq}, \"event\": \"volatile\", \"name\": {}, \"value\": {value}}}",
                escape(name)
            ),
            Event::Series { name, pages, value } => format!(
                "{{\"seq\": {seq}, \"event\": \"series\", \"name\": {}, \"pages\": {pages}, \
                 \"value\": {value}}}",
                escape(name)
            ),
            Event::SeriesHistogram {
                name,
                pages,
                count,
                sum,
                buckets,
            } => {
                let cells: Vec<String> = buckets
                    .iter()
                    .map(|(index, count)| format!("[{index}, {count}]"))
                    .collect();
                format!(
                    "{{\"seq\": {seq}, \"event\": \"series_histogram\", \"name\": {}, \
                     \"pages\": {pages}, \"count\": {count}, \"sum\": {sum}, \"buckets\": [{}]}}",
                    escape(name),
                    cells.join(", ")
                )
            }
            Event::SeriesVolatile { name, pages, value } => format!(
                "{{\"seq\": {seq}, \"event\": \"series_volatile\", \"name\": {}, \
                 \"pages\": {pages}, \"value\": {value}}}",
                escape(name)
            ),
            Event::SeriesEstimate {
                name,
                pages,
                count,
                mean,
                rse,
                ci95,
            } => format!(
                "{{\"seq\": {seq}, \"event\": \"series_estimate\", \"name\": {}, \
                 \"pages\": {pages}, \"count\": {count}, \"mean\": {}, \"rse\": {}, \
                 \"ci95\": {}}}",
                escape(name),
                crate::estimate::json_f64(*mean),
                crate::estimate::json_f64(*rse),
                crate::estimate::json_f64(*ci95),
            ),
            Event::RunEnd { events } => {
                format!("{{\"seq\": {seq}, \"event\": \"run_end\", \"events\": {events}}}")
            }
        }
    }

    /// Parses one JSONL line back into `(seq, Event)`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the line is not valid JSON or lacks the
    /// fields its `event` tag requires.
    pub fn parse_line(line: &str) -> Result<(u64, Event), JsonError> {
        let value = Json::parse(line)?;
        let fail = |message: &str| JsonError {
            pos: 0,
            message: message.to_owned(),
        };
        let seq = value.u64_field("seq").ok_or_else(|| fail("missing seq"))?;
        let kind = value
            .str_field("event")
            .ok_or_else(|| fail("missing event tag"))?;
        let name = |value: &Json| -> Result<String, JsonError> {
            value
                .str_field("name")
                .map(str::to_owned)
                .ok_or_else(|| fail("missing name"))
        };
        let event = match kind {
            "run_start" => Event::RunStart {
                run_id: value
                    .str_field("run_id")
                    .ok_or_else(|| fail("missing run_id"))?
                    .to_owned(),
            },
            "span_begin" => Event::SpanBegin {
                name: name(&value)?,
            },
            "span_end" => Event::SpanEnd {
                name: name(&value)?,
            },
            "counter" => Event::Counter {
                name: name(&value)?,
                value: value
                    .u64_field("value")
                    .ok_or_else(|| fail("missing value"))?,
            },
            "histogram" => Event::Histogram {
                name: name(&value)?,
                count: value
                    .u64_field("count")
                    .ok_or_else(|| fail("missing count"))?,
                sum: value.u64_field("sum").ok_or_else(|| fail("missing sum"))?,
                buckets: parse_buckets(&value)?,
            },
            "volatile" => Event::Volatile {
                name: name(&value)?,
                value: value
                    .u64_field("value")
                    .ok_or_else(|| fail("missing value"))?,
            },
            "series" => Event::Series {
                name: name(&value)?,
                pages: value
                    .u64_field("pages")
                    .ok_or_else(|| fail("missing pages"))?,
                value: value
                    .u64_field("value")
                    .ok_or_else(|| fail("missing value"))?,
            },
            "series_histogram" => Event::SeriesHistogram {
                name: name(&value)?,
                pages: value
                    .u64_field("pages")
                    .ok_or_else(|| fail("missing pages"))?,
                count: value
                    .u64_field("count")
                    .ok_or_else(|| fail("missing count"))?,
                sum: value.u64_field("sum").ok_or_else(|| fail("missing sum"))?,
                buckets: parse_buckets(&value)?,
            },
            "series_volatile" => Event::SeriesVolatile {
                name: name(&value)?,
                pages: value
                    .u64_field("pages")
                    .ok_or_else(|| fail("missing pages"))?,
                value: value
                    .u64_field("value")
                    .ok_or_else(|| fail("missing value"))?,
            },
            "series_estimate" => {
                // `null` encodes a non-finite statistic (JSON has no
                // Infinity); parse it back as +∞ so round-trips are exact
                // for every value the emitter produces.
                let stat = |key: &str| -> Result<f64, JsonError> {
                    match value.get(key) {
                        Some(Json::Null) => Ok(f64::INFINITY),
                        Some(v) => v.as_f64().ok_or_else(|| fail("non-numeric estimate field")),
                        None => Err(fail("missing estimate field")),
                    }
                };
                Event::SeriesEstimate {
                    name: name(&value)?,
                    pages: value
                        .u64_field("pages")
                        .ok_or_else(|| fail("missing pages"))?,
                    count: value
                        .u64_field("count")
                        .ok_or_else(|| fail("missing count"))?,
                    mean: stat("mean")?,
                    rse: stat("rse")?,
                    ci95: stat("ci95")?,
                }
            }
            "run_end" => Event::RunEnd {
                events: value
                    .u64_field("events")
                    .ok_or_else(|| fail("missing events"))?,
            },
            other => return Err(fail(&format!("unknown event tag '{other}'"))),
        };
        Ok((seq, event))
    }

    /// Parses a full JSONL stream (blank lines skipped), checking that
    /// sequence numbers are contiguous from zero.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any malformed line or a seq gap.
    pub fn parse_stream(text: &str) -> Result<Vec<Event>, JsonError> {
        let mut events = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let (seq, event) = Event::parse_line(line)?;
            if seq != events.len() as u64 {
                return Err(JsonError {
                    pos: 0,
                    message: format!("seq gap: expected {}, got {seq}", events.len()),
                });
            }
            events.push(event);
        }
        Ok(events)
    }
}

/// Parses a sparse `"buckets": [[index, count], ...]` field.
fn parse_buckets(value: &Json) -> Result<Vec<(usize, u64)>, JsonError> {
    let fail = |message: &str| JsonError {
        pos: 0,
        message: message.to_owned(),
    };
    value
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("missing buckets"))?
        .iter()
        .map(|cell| {
            let pair = cell.as_arr().filter(|p| p.len() == 2);
            match pair {
                Some(p) => match (p[0].as_u64(), p[1].as_u64()) {
                    (Some(index), Some(count)) =>
                    {
                        #[allow(clippy::cast_possible_truncation)]
                        Ok((index as usize, count))
                    }
                    _ => Err(fail("bucket cell must be [index, count]")),
                },
                None => Err(fail("bucket cell must be [index, count]")),
            }
        })
        .collect()
}

/// Removes volatile event lines from a JSONL stream, returning the text
/// whose bytes *are* covered by the determinism contract.
///
/// Two same-seed runs (at any thread counts) must satisfy
/// `strip_volatile(a) == strip_volatile(b)`. Both [`Event::Volatile`]
/// final values and [`Event::SeriesVolatile`] samples are stripped. Lines
/// that fail to parse are kept, so the comparison still catches corrupted
/// streams; note the stripped text has seq gaps where volatile lines
/// were, so it is for byte comparison only — parse the *full* stream with
/// [`Event::parse_stream`].
#[must_use]
pub fn strip_volatile(stream: &str) -> String {
    stream
        .lines()
        .filter(|line| {
            !matches!(
                Event::parse_line(line),
                Ok((_, Event::Volatile { .. } | Event::SeriesVolatile { .. }))
            )
        })
        .map(|line| format!("{line}\n"))
        .collect()
}

/// A clonable, thread-safe in-memory `Write` sink for tests: every clone
/// appends to the same buffer.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("shared buffer poisoned").clone()
    }

    /// The accumulated bytes as UTF-8 text.
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8(self.contents()).expect("telemetry output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("shared buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn events_round_trip_through_the_parser() {
        let reg = Registry::new();
        let h = reg.histogram("codec.Aegis 9x61.slope_trials");
        h.record(1);
        h.record(5);
        let snap = &reg.histograms()[0].1;

        let events = vec![
            Event::RunStart {
                run_id: "ci-smoke".to_owned(),
            },
            Event::SpanBegin {
                name: "fig5.montecarlo".to_owned(),
            },
            Event::SpanEnd {
                name: "fig5.montecarlo".to_owned(),
            },
            Event::Counter {
                name: "codec.Aegis 9x61.verify_reads".to_owned(),
                value: 42,
            },
            Event::from_snapshot("codec.Aegis 9x61.slope_trials", snap),
            Event::RunEnd { events: 6 },
        ];
        let stream: String = events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json(i as u64) + "\n")
            .collect();
        let parsed = Event::parse_stream(&stream).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn stream_parser_rejects_seq_gaps_and_garbage() {
        let good = Event::RunStart {
            run_id: "x".to_owned(),
        }
        .to_json(0);
        let gap = Event::RunEnd { events: 2 }.to_json(5);
        assert!(Event::parse_stream(&format!("{good}\n{gap}\n")).is_err());
        assert!(Event::parse_stream("not json\n").is_err());
        assert!(Event::parse_line("{\"seq\": 0, \"event\": \"mystery\"}").is_err());
    }

    #[test]
    fn volatile_events_round_trip_and_strip() {
        let events = vec![
            Event::RunStart {
                run_id: "x".to_owned(),
            },
            Event::Counter {
                name: "mc.A.pages".to_owned(),
                value: 8,
            },
            Event::Volatile {
                name: "pool.A.pages_stolen".to_owned(),
                value: 3,
            },
            Event::RunEnd { events: 4 },
        ];
        let stream: String = events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json(i as u64) + "\n")
            .collect();
        assert_eq!(Event::parse_stream(&stream).unwrap(), events);

        let stripped = strip_volatile(&stream);
        assert!(!stripped.contains("\"volatile\""));
        assert!(stripped.contains("\"counter\""));
        assert_eq!(stripped.lines().count(), 3);

        // Two streams differing only in volatile values strip identically.
        let other = stream.replace("\"value\": 3", "\"value\": 900");
        assert_ne!(stream, other);
        assert_eq!(stripped, strip_volatile(&other));

        // Garbage lines are preserved so corruption still fails compares.
        assert_eq!(strip_volatile("not json\n"), "not json\n");
    }

    #[test]
    fn series_events_round_trip_and_strip() {
        let reg = Registry::new();
        let h = reg.histogram("codec.Aegis 9x61.slope_trials");
        h.record(3);
        let snap = &reg.histograms()[0].1;
        let events = vec![
            Event::RunStart {
                run_id: "x".to_owned(),
            },
            Event::Series {
                name: "mc.A.pages".to_owned(),
                pages: 4,
                value: 4,
            },
            Event::series_from_snapshot("codec.Aegis 9x61.slope_trials", 4, snap),
            Event::SeriesVolatile {
                name: "pool.A.pages_stolen".to_owned(),
                pages: 4,
                value: 2,
            },
            Event::RunEnd { events: 5 },
        ];
        let stream: String = events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json(i as u64) + "\n")
            .collect();
        assert_eq!(Event::parse_stream(&stream).unwrap(), events);

        // Volatile-tagged samples strip; deterministic samples stay.
        let stripped = strip_volatile(&stream);
        assert!(!stripped.contains("series_volatile"));
        assert!(stripped.contains("\"series\""));
        assert!(stripped.contains("series_histogram"));
        assert_eq!(stripped.lines().count(), 4);

        // Streams differing only in the volatile sample strip identically.
        let other = stream.replace("\"pages\": 4, \"value\": 2", "\"pages\": 4, \"value\": 77");
        assert_ne!(stream, other);
        assert_eq!(stripped, strip_volatile(&other));
    }

    #[test]
    fn series_estimate_round_trips_including_non_finite() {
        let events = vec![
            Event::RunStart {
                run_id: "x".to_owned(),
            },
            Event::SeriesEstimate {
                name: "Aegis 9x61#512.lifetime".to_owned(),
                pages: 64,
                count: 64,
                mean: 123456.75,
                rse: 0.03125,
                ci95: 7500.5,
            },
            // One sample: RSE is infinite and must survive the null trip.
            Event::SeriesEstimate {
                name: "ECP6#512.lifetime".to_owned(),
                pages: 1,
                count: 1,
                mean: 9.0,
                rse: f64::INFINITY,
                ci95: 0.0,
            },
            Event::RunEnd { events: 4 },
        ];
        let stream: String = events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json(i as u64) + "\n")
            .collect();
        assert!(stream.contains("\"rse\": null"));
        assert_eq!(Event::parse_stream(&stream).unwrap(), events);

        // Estimates are deterministic — strip_volatile keeps them.
        assert_eq!(strip_volatile(&stream), stream);
    }

    #[test]
    fn series_parser_requires_pages_key() {
        assert!(Event::parse_line(
            "{\"seq\": 0, \"event\": \"series\", \"name\": \"x\", \"value\": 1}"
        )
        .is_err());
        assert!(Event::parse_line(
            "{\"seq\": 0, \"event\": \"series_volatile\", \"name\": \"x\", \"value\": 1}"
        )
        .is_err());
        assert!(Event::parse_line(
            "{\"seq\": 0, \"event\": \"series_histogram\", \"name\": \"x\", \
             \"count\": 1, \"sum\": 1, \"buckets\": [[1, 1]]}"
        )
        .is_err());
    }

    #[test]
    fn shared_buf_clones_share_storage() {
        let buf = SharedBuf::new();
        let mut clone = buf.clone();
        clone.write_all(b"hello").unwrap();
        assert_eq!(buf.text(), "hello");
    }
}
