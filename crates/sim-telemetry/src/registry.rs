//! Named atomic counters and log-scale histograms.
//!
//! A [`Registry`] is the shared accumulation point for one run. Handles
//! ([`Counter`], [`Histogram`]) are cheap to clone and safe to use from
//! worker threads; a *disabled* registry hands out no-op handles so
//! instrumented code pays only an `Option` check on the hot path and the
//! registry itself never allocates per-metric state.
//!
//! Metric names follow the `layer.scheme.metric` convention documented in
//! DESIGN.md § Observability — e.g. `codec.Aegis 9x61.verify_reads` or
//! `mc.SAFER64-cache.policy_decisions`. Because scheme names may contain
//! dots-free arbitrary text but layers and metrics never contain dots,
//! [`split_metric`] splits on the *first* and *last* dot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: value 0, plus one bucket per power of two
/// up to `u64::MAX` (bucket `b` holds values in `[2^(b-1), 2^b)`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Returns the bucket index for a sample value.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Builds a `layer.scheme.metric` metric name.
#[must_use]
pub fn metric_name(layer: &str, scheme: &str, metric: &str) -> String {
    format!("{layer}.{scheme}.{metric}")
}

/// Splits a `layer.scheme.metric` name into its three components.
///
/// The layer is everything before the first dot and the metric everything
/// after the last dot, so scheme names containing spaces or `x` (like
/// `Aegis 9x61`) survive the round trip. Names with fewer than two dots
/// return `None`.
#[must_use]
pub fn split_metric(name: &str) -> Option<(&str, &str, &str)> {
    let first = name.find('.')?;
    let last = name.rfind('.')?;
    if first >= last {
        return None;
    }
    Some((&name[..first], &name[first + 1..last], &name[last + 1..]))
}

struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Per-bucket sample counts; see [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match self.count {
            0 => None,
            n => Some(self.sum as f64 / n as f64),
        }
    }

    /// Largest non-empty bucket index, or `None` when empty.
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Value at quantile `q ∈ [0, 1]` by the ceiling nearest-rank method
    /// over the bucket tallies: the lower bound of the bucket holding the
    /// sample of rank `⌈q·n⌉` (with `q = 0` mapping to rank 1). Bucket 0
    /// reports 0 and bucket `b > 0` reports `2^(b-1)`, so for samples that
    /// are exact bucket lower bounds (0, 1, 2, 4, …) this agrees with
    /// nearest-rank percentiles over the raw values. `NaN` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return f64::NAN;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        let rank = (self.count as f64 * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &tally) in self.buckets.iter().enumerate() {
            seen += tally;
            if seen >= rank {
                #[allow(clippy::cast_precision_loss)]
                return if bucket == 0 {
                    0.0
                } else {
                    (1u128 << (bucket - 1)) as f64
                };
            }
        }
        // count > 0 guarantees the cumulative walk reaches the rank unless
        // the tallies disagree with count (a corrupt snapshot).
        f64::NAN
    }
}

/// Handle to a named counter. No-op when obtained from a disabled
/// registry. Counters are monotone: the only mutation is [`Counter::add`].
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Handle to a named log₂-scale histogram. No-op when obtained from a
/// disabled registry.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.count.fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
            core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(core: &HistogramCore) -> HistogramSnapshot {
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            buckets: core
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A named collection of counters and histograms for one run.
///
/// `Registry::new()` is enabled; `Registry::disabled()` hands out no-op
/// handles and its snapshot maps stay empty forever, which is what the
/// "zero overhead-visible state" telemetry invariant tests assert.
pub struct Registry {
    enabled: bool,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    /// Names of counters whose values are scheduling-dependent (e.g. the
    /// sim-pool steal counters). They are excluded from [`Registry::counters`]
    /// and emitted as `volatile` events so determinism checks can strip them.
    volatile: Mutex<std::collections::BTreeSet<String>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            enabled: true,
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            volatile: Mutex::new(std::collections::BTreeSet::new()),
        }
    }

    /// A registry whose handles are all no-ops and which records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            volatile: Mutex::new(std::collections::BTreeSet::new()),
        }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns (registering on first use) the counter handle for `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter(None);
        }
        let mut map = self.counters.lock().expect("counter map poisoned");
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Returns (registering on first use) the counter handle for `name`,
    /// marking it *volatile*: its value is scheduling-dependent and must
    /// not take part in deterministic byte-identity comparisons. Volatile
    /// counters are excluded from [`Registry::counters`], surface through
    /// [`Registry::volatile_counters`], and are serialized as `volatile`
    /// events (see [`crate::sink::strip_volatile`]).
    #[must_use]
    pub fn volatile_counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter(None);
        }
        self.volatile
            .lock()
            .expect("volatile set poisoned")
            .insert(name.to_owned());
        self.counter(name)
    }

    /// Returns (registering on first use) the histogram handle for `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram(None);
        }
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        let core = map.entry(name.to_owned()).or_default();
        Histogram(Some(Arc::clone(core)))
    }

    /// Sorted snapshot of every *deterministic* counter (volatile counters
    /// are excluded; see [`Registry::volatile_counters`]). Empty for a
    /// disabled registry.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        let volatile = self.volatile.lock().expect("volatile set poisoned");
        self.counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .filter(|(name, _)| !volatile.contains(name.as_str()))
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// Sorted snapshot of every *volatile* counter. Empty for a disabled
    /// registry.
    #[must_use]
    pub fn volatile_counters(&self) -> Vec<(String, u64)> {
        let volatile = self.volatile.lock().expect("volatile set poisoned");
        self.counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .filter(|(name, _)| volatile.contains(name.as_str()))
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// Sorted snapshot of every histogram. Empty for a disabled registry.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(name, core)| (name.clone(), Histogram::snapshot(core)))
            .collect()
    }

    /// Adds a previously captured [`HistogramSnapshot`] into the named
    /// histogram (summing count, sum and per-bucket tallies).
    ///
    /// This is the restore half of [`Registry::histograms`]: a checkpoint
    /// or a shard merge serialises the snapshots, and a later process
    /// replays them here before accumulating new samples, so the final
    /// [`Registry::histograms`] output is byte-identical to a run that was
    /// never interrupted or split. No-op on a disabled registry.
    pub fn add_histogram_snapshot(&self, name: &str, snap: &HistogramSnapshot) {
        let handle = self.histogram(name);
        if let Some(core) = &handle.0 {
            core.count.fetch_add(snap.count, Ordering::Relaxed);
            core.sum.fetch_add(snap.sum, Ordering::Relaxed);
            for (bucket, add) in core.buckets.iter().zip(&snap.buckets) {
                bucket.fetch_add(*add, Ordering::Relaxed);
            }
        }
    }

    /// Merges every metric from `other` into `self` (adding counters,
    /// summing histogram buckets, preserving volatility). Disabled
    /// registries absorb nothing.
    pub fn absorb(&self, other: &Registry) {
        if !self.enabled {
            return;
        }
        for (name, value) in other.counters() {
            self.counter(&name).add(value);
        }
        for (name, value) in other.volatile_counters() {
            self.volatile_counter(&name).add(value);
        }
        for (name, snap) in other.histograms() {
            self.add_histogram_snapshot(&name, &snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_shared_by_name() {
        let reg = Registry::new();
        let a = reg.counter("codec.Aegis 9x61.verify_reads");
        let b = reg.counter("codec.Aegis 9x61.verify_reads");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4, "handles to the same name share one cell");
        let before = a.get();
        a.add(0);
        assert!(a.get() >= before, "counters never decrease");
        assert_eq!(
            reg.counters(),
            vec![("codec.Aegis 9x61.verify_reads".to_owned(), 4)]
        );
    }

    #[test]
    fn disabled_registry_has_zero_visible_state() {
        let reg = Registry::disabled();
        let c = reg.counter("mc.X.pages");
        let h = reg.histogram("mc.X.page_fault_arrivals");
        c.add(100);
        h.record(7);
        assert_eq!(c.get(), 0);
        assert!(reg.counters().is_empty());
        assert!(reg.histograms().is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn histogram_buckets_follow_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);

        let reg = Registry::new();
        let h = reg.histogram("codec.Aegis 9x61.slope_trials");
        for v in [0, 1, 2, 3, 4] {
            h.record(v);
        }
        let snap = &reg.histograms()[0].1;
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 10);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[3], 1);
        assert_eq!(snap.mean(), Some(2.0));
        assert_eq!(snap.max_bucket(), Some(3));
    }

    #[test]
    fn bucket_boundaries_sit_exactly_at_powers_of_two() {
        // bucket_index(v) = floor(log2 v) + 1 for v > 0, so each power of
        // two opens a new bucket: 2^k is the smallest value in bucket k+1
        // and 2^k − 1 the largest in bucket k.
        for k in 1..64u32 {
            let pow = 1u64 << k;
            assert_eq!(bucket_index(pow), k as usize + 1, "2^{k}");
            assert_eq!(bucket_index(pow - 1), k as usize, "2^{k} - 1");
            assert_eq!(bucket_index(pow + 1), k as usize + 1, "2^{k} + 1");
        }
        // The top bucket is the last slot: no power of two can overflow
        // the fixed bucket array.
        assert_eq!(bucket_index(1 << 63), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let reg = Registry::new();
        let h = reg.histogram("mc.X.boundary");
        h.record((1 << 10) - 1);
        h.record(1 << 10);
        h.record((1 << 10) + 1);
        let snap = &reg.histograms()[0].1;
        assert_eq!(snap.buckets[10], 1, "2^10 - 1 stays below the boundary");
        assert_eq!(snap.buckets[11], 2, "2^10 and 2^10 + 1 cross it");
        assert_eq!(snap.max_bucket(), Some(11));
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("mc.X.lat");
        // 0, 1, 2, 4, 8: each sample is its bucket's lower bound.
        for v in [0, 1, 2, 4, 8] {
            h.record(v);
        }
        let snap = &reg.histograms()[0].1;
        assert_eq!(snap.quantile(0.0), 0.0, "q=0 is the minimum");
        assert_eq!(snap.quantile(0.5), 2.0, "rank ⌈0.5·5⌉ = 3");
        assert_eq!(snap.quantile(0.9), 8.0, "rank ⌈0.9·5⌉ = 5");
        assert_eq!(snap.quantile(1.0), 8.0);

        // Non-boundary samples report their bucket's lower bound.
        let reg2 = Registry::new();
        let h2 = reg2.histogram("mc.X.lat");
        h2.record(700); // bucket 10 = [512, 1024)
        let snap2 = &reg2.histograms()[0].1;
        assert_eq!(snap2.quantile(0.5), 512.0);
    }

    #[test]
    fn quantile_of_empty_is_nan() {
        let snap = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        };
        assert!(snap.quantile(0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let snap = HistogramSnapshot {
            count: 1,
            sum: 1,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        };
        let _ = snap.quantile(1.5);
    }

    #[test]
    fn metric_names_split_on_first_and_last_dot() {
        let name = metric_name("codec", "Aegis 9x61", "verify_reads");
        assert_eq!(
            split_metric(&name),
            Some(("codec", "Aegis 9x61", "verify_reads"))
        );
        // Scheme names may themselves contain dots.
        assert_eq!(
            split_metric("mc.v1.5-exp.pages"),
            Some(("mc", "v1.5-exp", "pages"))
        );
        assert_eq!(split_metric("nodots"), None);
        assert_eq!(split_metric("one.dot"), None);
    }

    #[test]
    fn volatile_counters_are_segregated() {
        let reg = Registry::new();
        reg.counter("mc.A.pages").add(3);
        let v = reg.volatile_counter("pool.A.pages_stolen");
        v.add(7);
        assert_eq!(reg.counters(), vec![("mc.A.pages".to_owned(), 3)]);
        assert_eq!(
            reg.volatile_counters(),
            vec![("pool.A.pages_stolen".to_owned(), 7)]
        );
        // Same underlying cell regardless of the accessor used.
        reg.counter("pool.A.pages_stolen").add(1);
        assert_eq!(reg.volatile_counters()[0].1, 8);

        let off = Registry::disabled();
        let c = off.volatile_counter("pool.A.pages_stolen");
        c.add(5);
        assert!(off.volatile_counters().is_empty());
    }

    #[test]
    fn absorb_preserves_volatility() {
        let shared = Registry::new();
        let local = Registry::new();
        local.volatile_counter("pool.A.worker_batches").add(4);
        local.counter("mc.A.pages").add(2);
        shared.absorb(&local);
        assert_eq!(shared.counters(), vec![("mc.A.pages".to_owned(), 2)]);
        assert_eq!(
            shared.volatile_counters(),
            vec![("pool.A.worker_batches".to_owned(), 4)]
        );
    }

    #[test]
    fn absorb_merges_counters_and_histograms() {
        let shared = Registry::new();
        shared.counter("codec.A.writes").add(1);
        let local = Registry::new();
        local.counter("codec.A.writes").add(2);
        local.counter("codec.B.writes").add(5);
        local.histogram("codec.A.slope_trials").record(4);
        shared.absorb(&local);
        assert_eq!(
            shared.counters(),
            vec![
                ("codec.A.writes".to_owned(), 3),
                ("codec.B.writes".to_owned(), 5)
            ]
        );
        assert_eq!(shared.histograms()[0].1.count, 1);

        let off = Registry::disabled();
        off.absorb(&local);
        assert!(off.counters().is_empty());
    }

    #[test]
    fn histogram_snapshot_round_trips_through_restore() {
        let source = Registry::new();
        let h = source.histogram("mc.A.page_fault_arrivals");
        for v in [0, 1, 3, 900, u64::MAX] {
            h.record(v);
        }
        let snaps = source.histograms();

        let restored = Registry::new();
        restored.histogram("mc.A.page_fault_arrivals").record(7);
        for (name, snap) in &snaps {
            restored.add_histogram_snapshot(name, snap);
        }

        let direct = Registry::new();
        let d = direct.histogram("mc.A.page_fault_arrivals");
        for v in [7, 0, 1, 3, 900, u64::MAX] {
            d.record(v);
        }
        assert_eq!(restored.histograms(), direct.histograms());

        let off = Registry::disabled();
        off.add_histogram_snapshot("mc.A.page_fault_arrivals", &snaps[0].1);
        assert!(off.histograms().is_empty());
    }
}
