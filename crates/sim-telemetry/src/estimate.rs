//! Streaming uncertainty quantification: moment accumulators and
//! confidence intervals for Monte Carlo estimates.
//!
//! Every figure the harness reproduces is a sample mean over per-page
//! Monte Carlo outcomes. This module turns those means into *intervals*:
//! a [`Moments`] accumulator ingests samples one at a time (the streaming
//! ergonomics of Welford's algorithm) and reports the mean, the standard
//! error, the 95% confidence half-width and the relative standard error
//! (RSE) at any point; [`wilson_interval`] covers Bernoulli proportions,
//! where the normal approximation collapses near 0 and 1.
//!
//! # Determinism
//!
//! The textbook Welford recurrence keeps a running f64 mean and M2; its
//! merge (Chan's parallel axis step) is *not* bitwise commutative, and a
//! merged result differs from a single pass in the last ulps — which
//! would break the repo's byte-identity contract the moment a sharded
//! campaign pools its moments. [`Moments`] instead carries the count and
//! the exact integer power sums Σx and Σx² in 128-bit integers: u64
//! samples accumulate without rounding, so [`Moments::merge`] is exactly
//! associative and commutative, and `merge(a, b)`, `merge(b, a)` and a
//! single pass over the concatenated samples produce bit-identical
//! statistics (pinned by the `estimates` property suite). Every derived
//! statistic is a pure function of `(count, Σx, Σx²)`, evaluated in one
//! fixed expression order — the same samples give the same bits no
//! matter how the accumulation was split across chunks, shards or
//! resumed sessions.
//!
//! # Early stopping
//!
//! `--target-rse` stops a `(block_bits, scheme)` unit at the first
//! page-count barrier where [`Moments::converged`] holds. Because the
//! decision reads only the samples of pages already processed — never a
//! clock, a thread id or a scheduling artifact — the stopped stream is
//! byte-identical across `--threads N`, tracing modes and SIGINT +
//! `--resume` (see DESIGN.md §16).

use crate::json::escape;

/// Two-sided 95% standard-normal quantile (z such that Φ(z) − Φ(−z) = 0.95).
pub const Z95: f64 = 1.959_963_984_540_054;

/// Minimum samples before an RSE is considered meaningful: below two
/// samples the variance is undefined, and early stopping never fires.
pub const MIN_SAMPLES: u64 = 2;

/// Streaming moment accumulator over u64 samples with an exactly
/// order-independent merge. See the module docs for why the power sums
/// are carried as exact integers instead of the f64 Welford recurrence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Moments {
    count: u64,
    sum: u128,
    sum_sq: u128,
}

impl Moments {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates every sample of a slice, in slice order (the order is
    /// irrelevant to the result — see the module docs — but fixed-order
    /// iteration keeps the hot path branch-predictable).
    #[must_use]
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut m = Self::new();
        for &x in samples {
            m.push(x);
        }
        m
    }

    /// Adds one sample.
    pub fn push(&mut self, x: u64) {
        self.count += 1;
        self.sum += u128::from(x);
        self.sum_sq += u128::from(x) * u128::from(x);
    }

    /// Pools another accumulator into this one. Exactly commutative and
    /// associative: integer addition of counts and power sums.
    pub fn merge(&mut self, other: &Moments) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Number of samples accumulated.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 when empty.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Unbiased sample variance, or 0 below [`MIN_SAMPLES`].
    ///
    /// The numerator `n·Σx² − (Σx)²` is evaluated in exact 128-bit
    /// integer arithmetic when it fits (it always does for page
    /// lifetimes), falling back to the algebraically identical f64
    /// expression on overflow — still a pure function of the sums, so
    /// determinism is unaffected.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn variance(&self) -> f64 {
        if self.count < MIN_SAMPLES {
            return 0.0;
        }
        let n = u128::from(self.count);
        let denom = (self.count as f64) * ((self.count - 1) as f64);
        match n
            .checked_mul(self.sum_sq)
            .and_then(|nsq| self.sum.checked_mul(self.sum).map(|sq| (nsq, sq)))
        {
            // Σ(x − mean)² ≥ 0, so the exact numerator cannot go negative;
            // saturate anyway rather than trust it.
            Some((nsq, sq)) => (nsq.saturating_sub(sq) as f64) / denom,
            None => {
                let (n, sum, sum_sq) = (self.count as f64, self.sum as f64, self.sum_sq as f64);
                ((n * sum_sq - sum * sum) / denom).max(0.0)
            }
        }
    }

    /// Standard error of the mean, or 0 below [`MIN_SAMPLES`].
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn stderr(&self) -> f64 {
        if self.count < MIN_SAMPLES {
            0.0
        } else {
            (self.variance() / self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        Z95 * self.stderr()
    }

    /// Relative standard error `stderr / mean`.
    ///
    /// Infinite below [`MIN_SAMPLES`] (no variance estimate yet) and for
    /// a zero mean with spread; 0 for a zero mean with zero spread (a
    /// degenerate but fully converged sample).
    #[must_use]
    pub fn rse(&self) -> f64 {
        if self.count < MIN_SAMPLES {
            return f64::INFINITY;
        }
        let stderr = self.stderr();
        if self.sum == 0 {
            if stderr == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            stderr / self.mean()
        }
    }

    /// The early-stop predicate: at least [`MIN_SAMPLES`] samples and an
    /// RSE at or below `target`. A pure function of the accumulated
    /// samples — the determinism contract for `--target-rse` rests on
    /// stop decisions being exactly this, evaluated only at page-count
    /// barriers.
    #[must_use]
    pub fn converged(&self, target: f64) -> bool {
        self.count >= MIN_SAMPLES && self.rse() <= target
    }
}

/// Wilson score interval for a Bernoulli proportion: `(lo, hi)` bounds
/// for the success probability after `successes` out of `trials`, at
/// normal quantile `z` ([`Z95`] for 95%). Unlike the Wald interval it
/// stays inside `[0, 1]` and keeps near-nominal coverage for p near 0
/// or 1 — the regime capped-page and fault-rate proportions live in.
/// Returns `(0.0, 1.0)` for zero trials.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Convergence state of one estimate against an RSE target, as shown by
/// `experiments monitor` and recorded in status heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Convergence {
    /// Fewer than [`MIN_SAMPLES`] samples: no variance estimate yet.
    Insufficient,
    /// RSE above the target.
    Converging,
    /// RSE at or below the target.
    Converged,
}

impl Convergence {
    /// Classifies `moments` against `target`.
    #[must_use]
    pub fn of(moments: &Moments, target: f64) -> Self {
        if moments.count() < MIN_SAMPLES {
            Convergence::Insufficient
        } else if moments.rse() <= target {
            Convergence::Converged
        } else {
            Convergence::Converging
        }
    }

    /// Stable lowercase tag used in status files and the monitor table.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Convergence::Insufficient => "insufficient",
            Convergence::Converging => "converging",
            Convergence::Converged => "converged",
        }
    }
}

/// Default RSE target used purely for *display* classification when a
/// run carries no `--target-rse`: the monitor still needs a line between
/// "converging" and "converged". 5% relative standard error — a ±10%
/// 95% interval — is the conventional "good enough to read the figure"
/// bar. Never used for early stopping.
pub const DISPLAY_TARGET_RSE: f64 = 0.05;

/// One named estimate snapshotted at a unit barrier: the unit label
/// (`scheme#block_bits`), the metric (`lifetime`, `faults`), and the
/// moments accumulated over the pages processed so far.
#[derive(Debug, Clone)]
pub struct UnitEstimate {
    /// Unit label, e.g. `Aegis 9x61#512`.
    pub unit: String,
    /// Metric name within the unit, e.g. `lifetime`.
    pub metric: &'static str,
    /// Moments over the samples processed so far.
    pub moments: Moments,
}

impl UnitEstimate {
    /// Series/status key `unit.metric` — e.g. `Aegis 9x61#512.lifetime`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}.{}", self.unit, self.metric)
    }
}

/// Formats an f64 for deterministic JSON embedding: Rust's shortest
/// round-trip representation for finite values (bit-stable for the
/// deterministic inputs this crate feeds it), `null` otherwise (JSON
/// has no Infinity/NaN).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders one estimate as the fields shared by series lines and status
/// heartbeats: `"name": …, "pages": …, "count": …, "mean": …, "rse": …,
/// "ci95": …` (no braces, so callers can prepend an event tag).
#[must_use]
pub fn estimate_fields(name: &str, pages: u64, moments: &Moments) -> String {
    format!(
        "{}: {{\"pages\": {pages}, \"count\": {}, \"mean\": {}, \"rse\": {}, \"ci95\": {}}}",
        escape(name),
        moments.count(),
        json_f64(moments.mean()),
        json_f64(moments.rse()),
        json_f64(moments.ci95_half_width()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_closed_form() {
        let m = Moments::from_samples(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(m.count(), 8);
        assert_eq!(m.mean(), 5.0);
        // Σ(x−5)² = 9+1+1+1+0+0+4+16 = 32; unbiased variance 32/7.
        assert_eq!(m.variance(), 32.0 / 7.0);
        assert_eq!(m.stderr(), (32.0 / 7.0 / 8.0f64).sqrt());
        assert_eq!(m.ci95_half_width(), Z95 * m.stderr());
        assert_eq!(m.rse(), m.stderr() / 5.0);
    }

    #[test]
    fn empty_and_single_sample_are_guarded() {
        let empty = Moments::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.variance(), 0.0);
        assert!(empty.rse().is_infinite());
        assert!(!empty.converged(f64::INFINITY));

        let mut one = Moments::new();
        one.push(7);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.variance(), 0.0);
        assert!(one.rse().is_infinite(), "one sample has no spread estimate");
        assert!(!one.converged(1e9), "never stop on a single sample");
    }

    #[test]
    fn zero_mean_rse_is_zero_only_when_degenerate() {
        let zeros = Moments::from_samples(&[0, 0, 0]);
        assert_eq!(zeros.rse(), 0.0);
        assert!(zeros.converged(0.0));
    }

    #[test]
    fn merge_is_bitwise_order_independent() {
        let all = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9];
        for split in 0..=all.len() {
            let a = Moments::from_samples(&all[..split]);
            let b = Moments::from_samples(&all[split..]);
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            let single = Moments::from_samples(&all);
            assert_eq!(ab, single, "split {split}: merge(a,b) != single pass");
            assert_eq!(ba, single, "split {split}: merge(b,a) != single pass");
            assert_eq!(ab.variance().to_bits(), single.variance().to_bits());
            assert_eq!(ab.rse().to_bits(), single.rse().to_bits());
        }
    }

    #[test]
    fn variance_overflow_falls_back_to_f64() {
        // Samples near 2^63: Σx² still fits a u128, but n·Σx² and (Σx)²
        // do not — the f64 fallback must stay finite and non-negative.
        let m = Moments::from_samples(&[1 << 63, 1 << 63, (1 << 63) + 2]);
        let v = m.variance();
        assert!(v.is_finite() && v >= 0.0, "fallback variance {v}");
    }

    #[test]
    fn wilson_brackets_the_proportion() {
        let (lo, hi) = wilson_interval(50, 100, Z95);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));

        // Near-zero proportion: interval stays inside [0, 1] and open
        // above zero (the Wald interval would collapse to a point).
        let (lo, hi) = wilson_interval(0, 100, Z95);
        assert!(lo.abs() < 1e-12, "lo collapses to ~0, got {lo}");
        assert!(hi > 0.0 && hi < 0.1);

        let (lo, hi) = wilson_interval(100, 100, Z95);
        assert!(lo > 0.9 && lo < 1.0);
        assert!((hi - 1.0).abs() < 1e-12, "hi collapses to ~1, got {hi}");

        assert_eq!(wilson_interval(0, 0, Z95), (0.0, 1.0));
    }

    #[test]
    fn convergence_classifies_against_target() {
        let m = Moments::from_samples(&[10, 10, 10, 10]);
        assert_eq!(Convergence::of(&m, 0.01), Convergence::Converged);
        let spread = Moments::from_samples(&[1, 100]);
        assert_eq!(Convergence::of(&spread, 0.01), Convergence::Converging);
        let mut one = Moments::new();
        one.push(5);
        assert_eq!(Convergence::of(&one, 0.01), Convergence::Insufficient);
        assert_eq!(Convergence::Converged.as_str(), "converged");
    }

    #[test]
    fn estimate_fields_render_deterministic_json() {
        let m = Moments::from_samples(&[1, 2, 3]);
        let fields = estimate_fields("Aegis 9x61#512.lifetime", 3, &m);
        let wrapped = format!("{{{fields}}}");
        let parsed = crate::Json::parse(&wrapped).expect("valid JSON");
        let est = parsed.get("Aegis 9x61#512.lifetime").expect("keyed");
        assert_eq!(est.u64_field("pages"), Some(3));
        assert_eq!(est.u64_field("count"), Some(3));
        assert_eq!(est.get("mean").and_then(crate::Json::as_f64), Some(2.0));

        // Non-finite statistics serialize as null, not invalid JSON.
        let mut one = Moments::new();
        one.push(1);
        let fields = estimate_fields("x.y", 1, &one);
        let parsed = crate::Json::parse(&format!("{{{fields}}}")).expect("valid JSON");
        assert_eq!(
            parsed.get("x.y").unwrap().get("rse"),
            Some(&crate::Json::Null)
        );
    }
}
