//! Live run status: an atomically-rewritten `<run-id>.status.json`
//! heartbeat file for `experiments monitor` to tail.
//!
//! Unlike every other telemetry artifact, the status file is *pure
//! liveness*: it is overwritten in place (temp file + rename, the
//! [`Checkpoint`-style] atomic pattern, so a reader can never observe a
//! torn write), carries wall-clock data (elapsed time, an ETA from a
//! monotonic clock), and sits entirely outside the determinism
//! contract. Turning status reporting on or off cannot perturb the
//! deterministic stream or the series sidecar.
//!
//! [`Checkpoint`-style]: https://en.wikipedia.org/wiki/Rename_(computing)#Atomicity
//!
//! Page-completion heartbeats arrive from simulation worker threads at
//! page rate, so [`StatusWriter::phase_progress`] rate-limits disk
//! writes (default one per 200 ms); state transitions
//! ([`StatusWriter::mark`], [`StatusWriter::begin_phase`]) always write
//! immediately so the monitor never misses a checkpoint or interrupt.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::estimate::{json_f64, Convergence, UnitEstimate, DISPLAY_TARGET_RSE};
use crate::json::{escape, Json, JsonError};
use crate::manifest::unix_millis;

/// Default minimum interval between rate-limited status rewrites.
pub const DEFAULT_STATUS_INTERVAL: Duration = Duration::from_millis(200);

/// Lifecycle state recorded in the status file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// The run is executing.
    Running,
    /// A checkpoint snapshot was just stored; the run keeps going.
    Checkpointed,
    /// The run stopped at a barrier after SIGINT; resumable.
    Interrupted,
    /// The run finished and its artifacts are complete.
    Done,
}

impl RunState {
    /// The state's serialized tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RunState::Running => "running",
            RunState::Checkpointed => "checkpointed",
            RunState::Interrupted => "interrupted",
            RunState::Done => "done",
        }
    }

    /// Parses a serialized tag.
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<RunState> {
        match tag {
            "running" => Some(RunState::Running),
            "checkpointed" => Some(RunState::Checkpointed),
            "interrupted" => Some(RunState::Interrupted),
            "done" => Some(RunState::Done),
            _ => None,
        }
    }
}

/// One estimate line in a status heartbeat: the latest `mean ± CI` of a
/// unit metric plus its convergence classification, as `experiments
/// monitor` renders it.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateStatus {
    /// Estimate name (`scheme#block_bits.metric`).
    pub name: String,
    /// Samples accumulated.
    pub count: u64,
    /// Streaming mean.
    pub mean: f64,
    /// Relative standard error (may be infinite below two samples).
    pub rse: f64,
    /// 95% confidence half-width.
    pub ci95: f64,
    /// Convergence tag: `insufficient`, `converging` or `converged`.
    pub state: String,
}

/// One parsed status file, as `experiments monitor` reads it.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusRecord {
    /// The run this heartbeat belongs to.
    pub run_id: String,
    /// Lifecycle state.
    pub state: RunState,
    /// Current engine phase (e.g. `mc.Aegis 9x61`).
    pub phase: String,
    /// Pages evaluated so far (completed units + current phase).
    pub pages_done: u64,
    /// Total pages the run will evaluate (0 when unknown).
    pub pages_total: u64,
    /// Wall-clock milliseconds since the writer was created (monotonic).
    pub elapsed_ms: u64,
    /// Estimated milliseconds to completion, when computable.
    pub eta_ms: Option<u64>,
    /// Mean worker busy fraction of the latest pool phase, 0..=1.
    pub busy: Option<f64>,
    /// Shard index, for `experiments shard` runs.
    pub shard_id: Option<u64>,
    /// Shard count, for `experiments shard` runs.
    pub shards: Option<u64>,
    /// SIMD dispatch backend the run resolved at startup (PR 9), e.g.
    /// `avx2` or `scalar` — shows which backend each shard of a
    /// mixed-machine campaign is running.
    pub simd_backend: Option<String>,
    /// Effective `SIM_EVAL_LANES` batch width.
    pub eval_lanes: Option<u64>,
    /// The run's `--target-rse` early-stop target, when set.
    pub target_rse: Option<f64>,
    /// Latest per-unit estimates (empty until the first unit barrier).
    pub estimates: Vec<EstimateStatus>,
    /// Heartbeat writes so far (monotone; proves liveness).
    pub heartbeats: u64,
    /// Wall clock of the last rewrite, Unix milliseconds (staleness check).
    pub updated_unix_ms: u64,
}

impl StatusRecord {
    /// Completion as a fraction of `pages_total`, when known.
    #[must_use]
    pub fn fraction(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match self.pages_total {
            0 => None,
            total => Some(self.pages_done as f64 / total as f64),
        }
    }

    /// Renders the record as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let opt_u64 = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |v| v.to_string());
        // A non-finite busy fraction (a degenerate pool phase) must not
        // poison the JSON: render it as null, like the estimate fields.
        let busy = self
            .busy
            .filter(|b| b.is_finite())
            .map_or_else(|| "null".to_owned(), |b| format!("{b:.4}"));
        let backend = self
            .simd_backend
            .as_deref()
            .map_or_else(|| "null".to_owned(), escape);
        let estimates: Vec<String> = self
            .estimates
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\": {}, \"count\": {}, \"mean\": {}, \"rse\": {}, \
                     \"ci95\": {}, \"state\": {}}}",
                    escape(&e.name),
                    e.count,
                    json_f64(e.mean),
                    json_f64(e.rse),
                    json_f64(e.ci95),
                    escape(&e.state),
                )
            })
            .collect();
        format!(
            "{{\n  \"run_id\": {},\n  \"state\": {},\n  \"phase\": {},\n  \
             \"pages_done\": {},\n  \"pages_total\": {},\n  \"elapsed_ms\": {},\n  \
             \"eta_ms\": {},\n  \"busy\": {},\n  \"shard_id\": {},\n  \"shards\": {},\n  \
             \"simd_backend\": {},\n  \"eval_lanes\": {},\n  \"target_rse\": {},\n  \
             \"estimates\": [{}],\n  \
             \"heartbeats\": {},\n  \"updated_unix_ms\": {}\n}}\n",
            escape(&self.run_id),
            escape(self.state.as_str()),
            escape(&self.phase),
            self.pages_done,
            self.pages_total,
            self.elapsed_ms,
            opt_u64(self.eta_ms),
            busy,
            opt_u64(self.shard_id),
            opt_u64(self.shards),
            backend,
            opt_u64(self.eval_lanes),
            self.target_rse.map_or_else(|| "null".to_owned(), json_f64),
            estimates.join(", "),
            self.heartbeats,
            self.updated_unix_ms,
        )
    }

    /// Parses a status file written by [`StatusWriter`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed JSON, a missing required field,
    /// or an unknown state tag.
    pub fn parse(text: &str) -> Result<StatusRecord, JsonError> {
        let value = Json::parse(text)?;
        let fail = |message: &str| JsonError {
            pos: 0,
            message: message.to_owned(),
        };
        let state = value
            .str_field("state")
            .and_then(RunState::from_tag)
            .ok_or_else(|| fail("missing or unknown state"))?;
        let busy = match value.get("busy") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_f64().ok_or_else(|| fail("bad busy"))?),
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, JsonError> {
            match value.get(key) {
                Some(Json::Null) | None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| fail(&format!("bad {key}"))),
            }
        };
        // Estimate statistics may be `null` (infinite RSE below two
        // samples); older status files lack the field entirely.
        let est_f64 = |v: Option<&Json>| -> f64 {
            match v {
                Some(Json::Num(n)) => *n,
                _ => f64::INFINITY,
            }
        };
        let estimates = value
            .get("estimates")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|item| {
                        Some(EstimateStatus {
                            name: item.str_field("name")?.to_owned(),
                            count: item.u64_field("count").unwrap_or(0),
                            mean: est_f64(item.get("mean")),
                            rse: est_f64(item.get("rse")),
                            ci95: est_f64(item.get("ci95")),
                            state: item.str_field("state").unwrap_or("converging").to_owned(),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        let target_rse = match value.get("target_rse") {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        };
        Ok(StatusRecord {
            run_id: value
                .str_field("run_id")
                .ok_or_else(|| fail("missing run_id"))?
                .to_owned(),
            state,
            phase: value.str_field("phase").unwrap_or_default().to_owned(),
            pages_done: value
                .u64_field("pages_done")
                .ok_or_else(|| fail("missing pages_done"))?,
            pages_total: value
                .u64_field("pages_total")
                .ok_or_else(|| fail("missing pages_total"))?,
            elapsed_ms: value.u64_field("elapsed_ms").unwrap_or(0),
            eta_ms: opt_u64("eta_ms")?,
            busy,
            shard_id: opt_u64("shard_id")?,
            shards: opt_u64("shards")?,
            simd_backend: value.str_field("simd_backend").map(str::to_owned),
            eval_lanes: opt_u64("eval_lanes")?,
            target_rse,
            estimates,
            heartbeats: value.u64_field("heartbeats").unwrap_or(0),
            updated_unix_ms: value.u64_field("updated_unix_ms").unwrap_or(0),
        })
    }
}

struct StatusState {
    state: RunState,
    phase: String,
    /// Pages from units already completed.
    base_pages: u64,
    /// Unit-local pages reported by the current phase (monotone max).
    phase_done: u64,
    pages_total: u64,
    busy: Option<f64>,
    shard: Option<(u64, u64)>,
    backend: Option<(String, u64)>,
    target_rse: Option<f64>,
    estimates: Vec<EstimateStatus>,
    heartbeats: u64,
    last_write: Option<Instant>,
}

struct StatusCore {
    path: PathBuf,
    run_id: String,
    started: Instant,
    min_interval: Duration,
    state: Mutex<StatusState>,
}

/// Heartbeat writer for one run; cheap to clone and safe to call from
/// worker threads. See the module docs.
#[derive(Clone, Default)]
pub struct StatusWriter(Option<Arc<StatusCore>>);

impl StatusWriter {
    /// Creates `<dir>/<run-id>.status.json` and writes the initial
    /// `running` record.
    ///
    /// # Errors
    ///
    /// Fails when the directory or file cannot be created/written.
    pub fn create(run_id: &str, dir: &Path) -> io::Result<StatusWriter> {
        Self::with_interval(run_id, dir, DEFAULT_STATUS_INTERVAL)
    }

    /// [`StatusWriter::create`] with an explicit rate-limit interval
    /// (tests use [`Duration::ZERO`] to observe every heartbeat).
    ///
    /// # Errors
    ///
    /// Fails when the directory or file cannot be created/written.
    pub fn with_interval(
        run_id: &str,
        dir: &Path,
        min_interval: Duration,
    ) -> io::Result<StatusWriter> {
        fs::create_dir_all(dir)?;
        let writer = StatusWriter(Some(Arc::new(StatusCore {
            path: dir.join(format!("{run_id}.status.json")),
            run_id: run_id.to_owned(),
            started: Instant::now(),
            min_interval,
            state: Mutex::new(StatusState {
                state: RunState::Running,
                phase: String::new(),
                base_pages: 0,
                phase_done: 0,
                pages_total: 0,
                busy: None,
                shard: None,
                backend: None,
                target_rse: None,
                estimates: Vec::new(),
                heartbeats: 0,
                last_write: None,
            }),
        })));
        writer.write_now()?;
        Ok(writer)
    }

    /// A writer that records nothing.
    #[must_use]
    pub fn disabled() -> StatusWriter {
        StatusWriter(None)
    }

    /// Whether this writer records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The status file path, when enabled.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.0.as_ref().map(|core| core.path.as_path())
    }

    /// Records the total pages this run will evaluate (ETA denominator).
    pub fn set_total_pages(&self, total: u64) {
        if let Some(core) = &self.0 {
            core.state.lock().expect("status poisoned").pages_total = total;
        }
    }

    /// Tags this run as shard `id` of `of` (the monitor's rollup key).
    pub fn set_shard(&self, id: u64, of: u64) {
        if let Some(core) = &self.0 {
            core.state.lock().expect("status poisoned").shard = Some((id, of));
        }
    }

    /// Records the SIMD dispatch backend and effective eval-lanes width
    /// the run resolved at startup, so a mixed-machine campaign's monitor
    /// shows which backend each shard runs.
    pub fn set_backend(&self, backend: &str, lanes: u64) {
        if let Some(core) = &self.0 {
            core.state.lock().expect("status poisoned").backend = Some((backend.to_owned(), lanes));
        }
    }

    /// Records the run's `--target-rse` early-stop target (also the bar
    /// the estimate lines are classified against; without one, the
    /// display-only [`DISPLAY_TARGET_RSE`] applies).
    pub fn set_target_rse(&self, target: f64) {
        if let Some(core) = &self.0 {
            core.state.lock().expect("status poisoned").target_rse = Some(target);
        }
    }

    /// Folds a barrier snapshot into the per-unit estimate table:
    /// entries upsert by name, so a campaign's successive barriers grow
    /// one table covering every scheme seen so far. Does not write
    /// through on its own: callers pair it with
    /// [`StatusWriter::complete_unit`], whose forced rewrite publishes
    /// both at once.
    pub fn set_estimates(&self, estimates: &[UnitEstimate]) {
        let Some(core) = &self.0 else { return };
        let mut state = core.state.lock().expect("status poisoned");
        let target = state.target_rse.unwrap_or(DISPLAY_TARGET_RSE);
        // Upsert by name: successive unit barriers grow one table covering
        // every scheme seen so far, in first-seen (unit declaration) order.
        for est in estimates {
            let entry = EstimateStatus {
                name: est.name(),
                count: est.moments.count(),
                mean: est.moments.mean(),
                rse: est.moments.rse(),
                ci95: est.moments.ci95_half_width(),
                state: Convergence::of(&est.moments, target).as_str().to_owned(),
            };
            match state.estimates.iter_mut().find(|e| e.name == entry.name) {
                Some(slot) => *slot = entry,
                None => state.estimates.push(entry),
            }
        }
    }

    /// Enters a new engine phase (a `(block_bits, scheme)` unit). Resets
    /// the phase-local progress, returns the state to `running`, and
    /// rewrites the file immediately.
    pub fn begin_phase(&self, name: &str) {
        let Some(core) = &self.0 else { return };
        {
            let mut state = core.state.lock().expect("status poisoned");
            state.phase = name.to_owned();
            state.state = RunState::Running;
        }
        let _ = self.write_now();
    }

    /// Reports phase-local pages completed (monotone; racy worker calls
    /// are folded with `max`). Rewrites the file at most once per
    /// rate-limit interval. Called from simulation worker threads.
    pub fn phase_progress(&self, done: u64) {
        let Some(core) = &self.0 else { return };
        let due = {
            let mut state = core.state.lock().expect("status poisoned");
            state.phase_done = state.phase_done.max(done);
            match state.last_write {
                None => true,
                Some(at) => at.elapsed() >= core.min_interval,
            }
        };
        if due {
            let _ = self.write_now();
        }
    }

    /// Folds a completed unit's pages into the base count and clears the
    /// phase-local progress. Call at unit barriers.
    pub fn complete_unit(&self, pages: u64) {
        let Some(core) = &self.0 else { return };
        {
            let mut state = core.state.lock().expect("status poisoned");
            state.base_pages += pages;
            state.phase_done = 0;
        }
        let _ = self.write_now();
    }

    /// Records the latest pool phase's mean worker busy fraction.
    pub fn set_busy(&self, fraction: f64) {
        if let Some(core) = &self.0 {
            core.state.lock().expect("status poisoned").busy = Some(fraction);
        }
    }

    /// Transitions the lifecycle state and rewrites the file immediately.
    pub fn mark(&self, state: RunState) {
        let Some(core) = &self.0 else { return };
        core.state.lock().expect("status poisoned").state = state;
        let _ = self.write_now();
    }

    /// Assembles the current record (`None` when disabled).
    #[must_use]
    pub fn record(&self) -> Option<StatusRecord> {
        let core = self.0.as_ref()?;
        let state = core.state.lock().expect("status poisoned");
        #[allow(clippy::cast_possible_truncation)]
        let elapsed_ms = core.started.elapsed().as_millis() as u64;
        let pages_done = state.base_pages + state.phase_done;
        let eta_ms = match (pages_done, state.pages_total) {
            (0, _) => None,
            (done, total) if total > done =>
            {
                #[allow(clippy::cast_precision_loss)]
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some((elapsed_ms as f64 * (total - done) as f64 / done as f64) as u64)
            }
            _ => Some(0),
        };
        Some(StatusRecord {
            run_id: core.run_id.clone(),
            state: state.state,
            phase: state.phase.clone(),
            pages_done,
            pages_total: state.pages_total,
            elapsed_ms,
            eta_ms,
            busy: state.busy,
            shard_id: state.shard.map(|(id, _)| id),
            shards: state.shard.map(|(_, of)| of),
            simd_backend: state.backend.as_ref().map(|(name, _)| name.clone()),
            eval_lanes: state.backend.as_ref().map(|&(_, lanes)| lanes),
            target_rse: state.target_rse,
            estimates: state.estimates.clone(),
            heartbeats: state.heartbeats,
            updated_unix_ms: unix_millis(),
        })
    }

    /// Rewrites the file unconditionally (temp file + rename).
    fn write_now(&self) -> io::Result<()> {
        let Some(core) = &self.0 else { return Ok(()) };
        let record = {
            let mut state = core.state.lock().expect("status poisoned");
            state.heartbeats += 1;
            state.last_write = Some(Instant::now());
            drop(state);
            self.record().expect("enabled writer has a record")
        };
        let tmp = core.path.with_extension("json.tmp");
        fs::write(&tmp, record.to_json())?;
        fs::rename(&tmp, &core.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sim-telemetry-status-{tag}-{}", std::process::id()))
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = StatusRecord {
            run_id: "fig5-s42-shard0of2".to_owned(),
            state: RunState::Checkpointed,
            phase: "mc.Aegis 9x61".to_owned(),
            pages_done: 12,
            pages_total: 96,
            elapsed_ms: 1500,
            eta_ms: Some(10_500),
            busy: Some(0.8125),
            shard_id: Some(0),
            shards: Some(2),
            simd_backend: Some("avx2".to_owned()),
            eval_lanes: Some(8),
            target_rse: Some(0.05),
            estimates: vec![
                EstimateStatus {
                    name: "Aegis 9x61#512.lifetime".to_owned(),
                    count: 12,
                    mean: 123456.5,
                    rse: 0.03125,
                    ci95: 7561.25,
                    state: "converged".to_owned(),
                },
                // Below two samples: RSE is infinite, round-trips via null.
                EstimateStatus {
                    name: "ECP6#512.lifetime".to_owned(),
                    count: 1,
                    mean: 9.0,
                    rse: f64::INFINITY,
                    ci95: 0.0,
                    state: "insufficient".to_owned(),
                },
            ],
            heartbeats: 7,
            updated_unix_ms: 1_722_000_000_123,
        };
        let parsed = StatusRecord::parse(&record.to_json()).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(parsed.fraction(), Some(0.125));
    }

    #[test]
    fn record_tolerates_null_optionals() {
        let record = StatusRecord {
            run_id: "x".to_owned(),
            state: RunState::Running,
            phase: String::new(),
            pages_done: 0,
            pages_total: 0,
            elapsed_ms: 0,
            eta_ms: None,
            busy: None,
            shard_id: None,
            shards: None,
            simd_backend: None,
            eval_lanes: None,
            target_rse: None,
            estimates: Vec::new(),
            heartbeats: 1,
            updated_unix_ms: 5,
        };
        let parsed = StatusRecord::parse(&record.to_json()).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(parsed.fraction(), None);

        // Pre-PR 10 status files lack the backend/estimate fields
        // entirely; the parser defaults them instead of failing.
        let legacy = "{\"run_id\": \"x\", \"state\": \"running\", \
                      \"pages_done\": 0, \"pages_total\": 0}";
        let parsed = StatusRecord::parse(legacy).unwrap();
        assert_eq!(parsed.simd_backend, None);
        assert_eq!(parsed.eval_lanes, None);
        assert_eq!(parsed.target_rse, None);
        assert!(parsed.estimates.is_empty());
    }

    #[test]
    fn parser_rejects_malformed_records() {
        assert!(StatusRecord::parse("not json").is_err());
        assert!(StatusRecord::parse("{\"run_id\": \"x\"}").is_err());
        let unknown = StatusRecord::parse(
            "{\"run_id\": \"x\", \"state\": \"zombie\", \"pages_done\": 0, \"pages_total\": 0}",
        );
        assert!(unknown.is_err());
    }

    #[test]
    fn writer_rewrites_atomically_through_lifecycle() {
        let dir = temp_dir("lifecycle");
        let _ = fs::remove_dir_all(&dir);
        let status = StatusWriter::with_interval("unit", &dir, Duration::ZERO).unwrap();
        let path = dir.join("unit.status.json");
        assert_eq!(status.path(), Some(path.as_path()));
        assert!(path.exists(), "create writes the initial record");
        assert!(!path.with_extension("json.tmp").exists());

        status.set_total_pages(8);
        status.set_shard(1, 2);
        status.begin_phase("mc.ECP6");
        status.phase_progress(2);
        status.phase_progress(1); // stale racy report folds with max
        let read = StatusRecord::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(read.state, RunState::Running);
        assert_eq!(read.phase, "mc.ECP6");
        assert_eq!(read.pages_done, 2);
        assert_eq!(read.pages_total, 8);
        assert_eq!((read.shard_id, read.shards), (Some(1), Some(2)));
        assert!(read.eta_ms.is_some());

        status.phase_progress(4);
        status.set_backend("avx2", 8);
        status.set_target_rse(0.05);
        status.set_estimates(&[crate::estimate::UnitEstimate {
            unit: "ECP6#512".to_owned(),
            metric: "lifetime",
            moments: crate::estimate::Moments::from_samples(&[100, 100, 100, 100]),
        }]);
        status.complete_unit(4);
        status.set_busy(0.75);
        status.mark(RunState::Done);
        let read = StatusRecord::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(read.state, RunState::Done);
        assert_eq!(read.pages_done, 4, "complete_unit folds into base");
        assert_eq!(read.busy, Some(0.75));
        assert_eq!(read.simd_backend.as_deref(), Some("avx2"));
        assert_eq!(read.eval_lanes, Some(8));
        assert_eq!(read.target_rse, Some(0.05));
        assert_eq!(read.estimates.len(), 1);
        assert_eq!(read.estimates[0].name, "ECP6#512.lifetime");
        assert_eq!(read.estimates[0].mean, 100.0);
        assert_eq!(read.estimates[0].state, "converged");
        assert!(read.heartbeats >= 5, "every transition heartbeats");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_writer_touches_nothing() {
        let status = StatusWriter::disabled();
        assert!(!status.is_enabled());
        assert_eq!(status.path(), None);
        status.set_total_pages(8);
        status.begin_phase("mc.X");
        status.phase_progress(3);
        status.complete_unit(3);
        status.mark(RunState::Done);
        assert!(status.record().is_none());
    }

    #[test]
    fn rate_limit_suppresses_hot_path_writes() {
        let dir = temp_dir("ratelimit");
        let _ = fs::remove_dir_all(&dir);
        let status = StatusWriter::with_interval("hot", &dir, Duration::from_secs(3600)).unwrap();
        status.set_total_pages(100);
        for done in 1..=50 {
            status.phase_progress(done);
        }
        let path = dir.join("hot.status.json");
        let read = StatusRecord::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        // Only the creation write landed; the hot loop stayed in memory.
        assert_eq!(read.heartbeats, 1);
        // A state transition still writes through immediately.
        status.mark(RunState::Interrupted);
        let read = StatusRecord::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(read.state, RunState::Interrupted);
        assert_eq!(read.pages_done, 50);
        let _ = fs::remove_dir_all(&dir);
    }
}
