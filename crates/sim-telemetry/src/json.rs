//! Hand-rolled JSON, in the same style as `sim_rng::bench`: an escape
//! helper shared by every emitter in this crate, and a minimal
//! recursive-descent parser so event streams and manifests can be read
//! back without any external dependency.
//!
//! The parser accepts standard JSON (objects, arrays, strings with escape
//! sequences including surrogate pairs, numbers, booleans, null). Numbers
//! are held as `f64`, which is exact for every counter value this crate
//! emits (u64 magnitudes stay far below 2^53 in practice); [`Json::as_u64`]
//! rejects values that do not round-trip.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte position on malformed input or
    /// trailing data.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing data after JSON value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)?.as_str()`.
    #[must_use]
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// Convenience: `self.get(key)?.as_u64()`.
    #[must_use]
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("expected four hex digits after \\u"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a \uXXXX low half must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.error("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) => {
                    // Re-borrow the full UTF-8 sequence starting at byte.
                    let len = utf8_len(byte);
                    let start = self.pos - 1;
                    let end = start + len;
                    if len == 0 || end > self.bytes.len() {
                        return Err(self.error("invalid UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

/// Escapes a string for direct inclusion in JSON output (quotes included).
#[must_use]
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].str_field("b"),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t control\u{1} unicode\u{1F600}";
        let parsed = Json::parse(&escape(nasty)).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn u64_accessor_rejects_non_integers() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }
}
