//! Profile analysis over a finished [`TraceLog`]: span trees with
//! self/total times, per-name percentiles, and exporters to the two
//! standard trace interchange formats (collapsed stacks and Chrome
//! `trace_event` JSON).
//!
//! Self time is attributed per thread: a span's self time is its duration
//! minus the durations of its *same-worker* children. Children recorded
//! on a different worker ran concurrently with the parent (the parent's
//! thread was not descheduled for them), so they do not reduce the
//! parent's self time. A consequence is that total coverage — the sum of
//! all self times over the sum of root durations — can exceed 1 under
//! parallelism; values *below* ~0.95 indicate dropped records or an
//! instrumentation gap.

use std::collections::HashMap;

use crate::json::escape;
use crate::trace::{TraceLog, TraceRecord};

/// Per-span-name aggregate statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameStats {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: usize,
    /// Sum of durations, nanoseconds.
    pub total_ns: u64,
    /// Sum of self times, nanoseconds.
    pub self_ns: u64,
    /// Median duration (nearest-rank), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile duration (nearest-rank), nanoseconds.
    pub p95_ns: u64,
}

/// One node of the aggregated display tree: spans sharing a name under
/// the same parent path are merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name.
    pub name: String,
    /// Number of merged spans.
    pub count: usize,
    /// Sum of durations, nanoseconds.
    pub total_ns: u64,
    /// Sum of self times, nanoseconds.
    pub self_ns: u64,
    /// Child nodes, descending by `total_ns` (name-tiebroken).
    pub children: Vec<ProfileNode>,
}

/// A [`TraceLog`] resolved into parent/child structure with per-span
/// self times.
pub struct SpanTree<'a> {
    log: &'a TraceLog,
    /// Children of span `i` (indices into `log.spans`).
    children: Vec<Vec<usize>>,
    /// Spans with no (surviving) parent.
    roots: Vec<usize>,
    self_ns: Vec<u64>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank: the smallest value with at least q of the mass at or
    // below it.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    #[allow(clippy::cast_precision_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl<'a> SpanTree<'a> {
    /// Resolves parent links and computes per-thread self times. Spans
    /// whose parent record was dropped from a full ring become roots.
    #[must_use]
    pub fn build(log: &'a TraceLog) -> SpanTree<'a> {
        let index_of: HashMap<u32, usize> = log
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); log.spans.len()];
        let mut roots = Vec::new();
        for (i, span) in log.spans.iter().enumerate() {
            match span.parent.and_then(|p| index_of.get(&p)) {
                Some(&parent) => children[parent].push(i),
                None => roots.push(i),
            }
        }
        let mut self_ns = Vec::with_capacity(log.spans.len());
        for (i, span) in log.spans.iter().enumerate() {
            let same_worker_child_ns: u64 = children[i]
                .iter()
                .map(|&c| &log.spans[c])
                .filter(|c| c.worker == span.worker)
                .map(|c| c.dur_ns)
                .sum();
            self_ns.push(span.dur_ns.saturating_sub(same_worker_child_ns));
        }
        SpanTree {
            log,
            children,
            roots,
            self_ns,
        }
    }

    /// The spans this tree was built over.
    #[must_use]
    pub fn spans(&self) -> &[TraceRecord] {
        &self.log.spans
    }

    /// Root spans (no surviving parent).
    #[must_use]
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Self time of span `i`, nanoseconds.
    #[must_use]
    pub fn self_ns(&self, i: usize) -> u64 {
        self.self_ns[i]
    }

    /// Sum of root-span durations, nanoseconds.
    #[must_use]
    pub fn root_total_ns(&self) -> u64 {
        self.roots.iter().map(|&r| self.log.spans[r].dur_ns).sum()
    }

    /// Sum of all self times over the sum of root durations. Can exceed
    /// 1 under parallelism; below ~0.95 means records were dropped or a
    /// phase is uninstrumented. Returns 1 for an empty trace.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let roots = self.root_total_ns();
        if roots == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.self_ns.iter().sum::<u64>() as f64 / roots as f64
        }
    }

    /// Ancestor name path of span `i`, root first, ending in `i`'s name.
    #[must_use]
    pub fn path(&self, i: usize) -> Vec<&str> {
        let index_of: HashMap<u32, usize> = self
            .log
            .spans
            .iter()
            .enumerate()
            .map(|(idx, s)| (s.id, idx))
            .collect();
        let mut names = Vec::new();
        let mut cursor = Some(i);
        while let Some(at) = cursor {
            names.push(self.log.spans[at].name.as_str());
            cursor = self.log.spans[at]
                .parent
                .and_then(|p| index_of.get(&p))
                .copied();
        }
        names.reverse();
        names
    }

    fn aggregate_level(&self, siblings: &[usize]) -> Vec<ProfileNode> {
        let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
        for &i in siblings {
            let name = &self.log.spans[i].name;
            match groups.iter_mut().find(|(n, _)| n == name) {
                Some((_, members)) => members.push(i),
                None => groups.push((name.clone(), vec![i])),
            }
        }
        let mut nodes: Vec<ProfileNode> = groups
            .into_iter()
            .map(|(name, members)| {
                let grandchildren: Vec<usize> = members
                    .iter()
                    .flat_map(|&m| self.children[m].iter().copied())
                    .collect();
                ProfileNode {
                    name,
                    count: members.len(),
                    total_ns: members.iter().map(|&m| self.log.spans[m].dur_ns).sum(),
                    self_ns: members.iter().map(|&m| self.self_ns[m]).sum(),
                    children: self.aggregate_level(&grandchildren),
                }
            })
            .collect();
        nodes.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        nodes
    }

    /// Aggregated display tree: spans sharing a name under the same
    /// parent path merge into one node.
    #[must_use]
    pub fn aggregate(&self) -> Vec<ProfileNode> {
        self.aggregate_level(&self.roots)
    }

    /// Per-name statistics, descending by self time (name-tiebroken).
    #[must_use]
    pub fn name_stats(&self) -> Vec<NameStats> {
        let mut by_name: Vec<(String, Vec<usize>)> = Vec::new();
        for (i, span) in self.log.spans.iter().enumerate() {
            match by_name.iter_mut().find(|(n, _)| n == &span.name) {
                Some((_, members)) => members.push(i),
                None => by_name.push((span.name.clone(), vec![i])),
            }
        }
        let mut stats: Vec<NameStats> = by_name
            .into_iter()
            .map(|(name, members)| {
                let mut durs: Vec<u64> =
                    members.iter().map(|&m| self.log.spans[m].dur_ns).collect();
                durs.sort_unstable();
                NameStats {
                    name,
                    count: members.len(),
                    total_ns: durs.iter().sum(),
                    self_ns: members.iter().map(|&m| self.self_ns[m]).sum(),
                    p50_ns: percentile(&durs, 0.50),
                    p95_ns: percentile(&durs, 0.95),
                }
            })
            .collect();
        stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        stats
    }
}

/// Exports a trace as collapsed stacks (`a;b;c value` per line, one line
/// per unique ancestor path, value = aggregated self nanoseconds,
/// zero-valued paths omitted, lines sorted lexically) — the input format
/// of `flamegraph.pl` and inferno.
#[must_use]
pub fn collapsed_stack(log: &TraceLog) -> String {
    let tree = SpanTree::build(log);
    let mut by_path: Vec<(String, u64)> = Vec::new();
    for i in 0..log.spans.len() {
        let self_ns = tree.self_ns(i);
        if self_ns == 0 {
            continue;
        }
        let path = tree.path(i).join(";");
        match by_path.iter_mut().find(|(p, _)| *p == path) {
            Some((_, v)) => *v += self_ns,
            None => by_path.push((path, self_ns)),
        }
    }
    by_path.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (path, value) in by_path {
        out.push_str(&format!("{path} {value}\n"));
    }
    out
}

/// Exports a trace as Chrome `trace_event` JSON (the "JSON object
/// format": `{"traceEvents": [...]}` of `ph: "X"` complete events,
/// timestamps and durations in microseconds, `tid` = collector id).
/// Loadable in `chrome://tracing` and Perfetto.
#[must_use]
pub fn chrome_trace(log: &TraceLog) -> String {
    let events: Vec<String> = log
        .spans
        .iter()
        .map(|span| {
            format!(
                "{{\"name\": {}, \"cat\": \"sim\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"id\": {}, \"parent\": {}}}}}",
                escape(&span.name),
                span.start_ns / 1_000,
                span.dur_ns / 1_000,
                span.worker,
                span.id,
                span.parent
                    .map_or_else(|| "null".to_owned(), |p| p.to_string()),
            )
        })
        .collect();
    format!(
        "{{\"traceEvents\": [{}], \"displayTimeUnit\": \"ms\"}}\n",
        events.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::trace::TraceLog;

    fn span(
        id: u32,
        parent: Option<u32>,
        name: &str,
        worker: u32,
        start: u64,
        dur: u64,
    ) -> TraceRecord {
        TraceRecord {
            id,
            parent,
            name: name.to_owned(),
            worker,
            start_ns: start,
            dur_ns: dur,
        }
    }

    fn log(spans: Vec<TraceRecord>) -> TraceLog {
        TraceLog {
            run_id: "test".to_owned(),
            capacity: 64,
            spans,
            drops: vec![(0, 0)],
            pool: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_same_worker_children_only() {
        let log = log(vec![
            span(0, None, "root", 0, 0, 1000),
            span(1, Some(0), "child", 0, 100, 300),
            // Same parent, different worker: ran concurrently, must not
            // eat into the root's self time.
            span(2, Some(0), "task", 1, 100, 900),
        ]);
        let tree = SpanTree::build(&log);
        assert_eq!(tree.roots(), &[0]);
        assert_eq!(tree.self_ns(0), 700); // 1000 - 300, not - 900
        assert_eq!(tree.self_ns(1), 300);
        assert_eq!(tree.self_ns(2), 900);
        assert_eq!(tree.root_total_ns(), 1000);
        // 700 + 300 + 900 over the 1000 ns root: > 1 under parallelism.
        assert!(tree.coverage() > 1.0);
    }

    #[test]
    fn orphaned_spans_become_roots() {
        let log = log(vec![span(5, Some(99), "stranded", 0, 0, 10)]);
        let tree = SpanTree::build(&log);
        assert_eq!(tree.roots(), &[0]);
        assert_eq!(tree.path(0), vec!["stranded"]);
    }

    #[test]
    fn aggregate_merges_same_name_siblings() {
        let log = log(vec![
            span(0, None, "root", 0, 0, 100),
            span(1, Some(0), "page", 0, 0, 20),
            span(2, Some(0), "page", 0, 20, 30),
            span(3, Some(0), "flush", 0, 50, 10),
        ]);
        let nodes = SpanTree::build(&log).aggregate();
        assert_eq!(nodes.len(), 1);
        let root = &nodes[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.self_ns, 40); // 100 - 20 - 30 - 10
        assert_eq!(root.children.len(), 2);
        // Children sorted by total descending.
        assert_eq!(root.children[0].name, "page");
        assert_eq!(root.children[0].count, 2);
        assert_eq!(root.children[0].total_ns, 50);
        assert_eq!(root.children[1].name, "flush");
    }

    #[test]
    fn name_stats_report_nearest_rank_percentiles() {
        let spans: Vec<TraceRecord> = (0..100)
            .map(|i| span(i, None, "page", 0, u64::from(i), u64::from(i) + 1))
            .collect();
        let log = log(spans);
        let stats = SpanTree::build(&log).name_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].count, 100);
        assert_eq!(stats[0].p50_ns, 50);
        assert_eq!(stats[0].p95_ns, 95);
    }

    #[test]
    fn collapsed_stack_uses_semicolon_paths_and_self_values() {
        let log = log(vec![
            span(0, None, "root", 0, 0, 100),
            span(1, Some(0), "page", 0, 0, 60),
            span(2, Some(1), "eval", 0, 0, 25),
        ]);
        let text = collapsed_stack(&log);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["root 40", "root;page 35", "root;page;eval 25"]);
        // Every line is `path value`.
        for line in lines {
            let (path, value) = line.rsplit_once(' ').unwrap();
            assert!(!path.is_empty());
            assert!(value.parse::<u64>().is_ok());
        }
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let log = log(vec![
            span(0, None, "root", 0, 0, 5_000),
            span(1, Some(0), "page", 1, 1_000, 2_000),
        ]);
        let text = chrome_trace(&log);
        let value = Json::parse(&text).unwrap();
        let events = value.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        for event in events {
            assert_eq!(event.str_field("ph"), Some("X"));
            assert!(event.str_field("name").is_some());
            assert!(event.u64_field("ts").is_some());
            assert!(event.u64_field("dur").is_some());
            assert!(event.u64_field("tid").is_some());
        }
        assert_eq!(events[0].u64_field("dur"), Some(5));
        assert_eq!(events[1].u64_field("ts"), Some(1));
    }
}
