//! [`RunTelemetry`]: the per-run front door tying the registry, the
//! JSONL event sink, spans, and the manifest together.
//!
//! Lifecycle: create (disabled, or writing to a directory/`Write` sink),
//! hand `registry()` down the stack, open [`Span`]s around phases, then
//! [`RunTelemetry::finish`] — which flushes the sorted final metric
//! snapshot to the stream, writes `<run-id>.manifest.json` when a
//! directory sink is in use, and returns the manifest.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use crate::manifest::{git_describe, unix_millis, RunManifest};
use crate::registry::Registry;
use crate::sink::{Event, SharedBuf};

struct SinkState {
    writer: Option<Box<dyn Write + Send>>,
    seq: u64,
    phases: Vec<(String, u64)>,
    meta: Vec<(String, String)>,
}

/// Telemetry for one run: registry + event stream + manifest.
pub struct RunTelemetry {
    run_id: String,
    registry: Registry,
    created_unix_ms: u64,
    dir: Option<PathBuf>,
    state: Mutex<SinkState>,
}

impl RunTelemetry {
    fn with_sink(
        run_id: &str,
        registry: Registry,
        dir: Option<PathBuf>,
        writer: Option<Box<dyn Write + Send>>,
    ) -> io::Result<RunTelemetry> {
        let run = RunTelemetry {
            run_id: run_id.to_owned(),
            registry,
            created_unix_ms: unix_millis(),
            dir,
            state: Mutex::new(SinkState {
                writer,
                seq: 0,
                phases: Vec::new(),
                meta: Vec::new(),
            }),
        };
        run.emit(&Event::RunStart {
            run_id: run_id.to_owned(),
        })?;
        Ok(run)
    }

    /// A disabled run: no-op registry, no stream, no manifest file.
    #[must_use]
    pub fn disabled() -> RunTelemetry {
        RunTelemetry {
            run_id: String::new(),
            registry: Registry::disabled(),
            created_unix_ms: 0,
            dir: None,
            state: Mutex::new(SinkState {
                writer: None,
                seq: 0,
                phases: Vec::new(),
                meta: Vec::new(),
            }),
        }
    }

    /// Creates `dir` and opens `<dir>/<run-id>.jsonl` for the event
    /// stream; [`RunTelemetry::finish`] will write the manifest alongside.
    ///
    /// # Errors
    ///
    /// Fails when the directory or stream file cannot be created/written.
    pub fn create(run_id: &str, dir: &Path) -> io::Result<RunTelemetry> {
        fs::create_dir_all(dir)?;
        let file = fs::File::create(dir.join(format!("{run_id}.jsonl")))?;
        Self::with_sink(
            run_id,
            Registry::new(),
            Some(dir.to_owned()),
            Some(Box::new(io::BufWriter::new(file))),
        )
    }

    /// Streams events into an arbitrary writer (no manifest file).
    ///
    /// # Errors
    ///
    /// Fails when the initial `run_start` event cannot be written.
    pub fn with_writer(run_id: &str, writer: Box<dyn Write + Send>) -> io::Result<RunTelemetry> {
        Self::with_sink(run_id, Registry::new(), None, Some(writer))
    }

    /// Streams events into a [`SharedBuf`] (for in-process tests).
    ///
    /// # Errors
    ///
    /// Fails when the initial `run_start` event cannot be written.
    pub fn with_buffer(run_id: &str, buffer: SharedBuf) -> io::Result<RunTelemetry> {
        Self::with_writer(run_id, Box::new(buffer))
    }

    /// Whether this run records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// The run identifier.
    #[must_use]
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// The registry to hand down the stack.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records a replay input (seed, pages, ...) for the manifest.
    pub fn set_meta(&self, key: &str, value: &str) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state.lock().expect("telemetry state poisoned");
        state.meta.push((key.to_owned(), value.to_owned()));
    }

    fn emit(&self, event: &Event) -> io::Result<()> {
        let mut state = self.state.lock().expect("telemetry state poisoned");
        let seq = state.seq;
        if let Some(writer) = state.writer.as_mut() {
            let line = event.to_json(seq);
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            state.seq = seq + 1;
        }
        Ok(())
    }

    /// Opens a span. Its wall-clock duration is recorded into the
    /// manifest's phase list when the returned guard drops; the event
    /// stream sees only the (deterministic) begin/end markers.
    ///
    /// # Errors
    ///
    /// Fails when the `span_begin` event cannot be written.
    pub fn span(&self, name: &str) -> io::Result<Span<'_>> {
        if self.is_enabled() {
            self.emit(&Event::SpanBegin {
                name: name.to_owned(),
            })?;
        }
        Ok(Span {
            run: self,
            name: name.to_owned(),
            started: Instant::now(),
        })
    }

    fn close_span(&self, name: &str, nanos: u64) {
        if !self.is_enabled() {
            return;
        }
        {
            let mut state = self.state.lock().expect("telemetry state poisoned");
            state.phases.push((name.to_owned(), nanos));
        }
        // Span-close during teardown must not panic; drop the error.
        let _ = self.emit(&Event::SpanEnd {
            name: name.to_owned(),
        });
    }

    /// Flushes the final sorted metric snapshot and the `run_end` line to
    /// the stream, writes `<run-id>.manifest.json` when a directory sink
    /// is in use, and returns the manifest.
    ///
    /// # Errors
    ///
    /// Fails when the stream or manifest file cannot be written.
    pub fn finish(self) -> io::Result<RunManifest> {
        if self.is_enabled() {
            for (name, value) in self.registry.counters() {
                self.emit(&Event::Counter { name, value })?;
            }
            for (name, snap) in self.registry.histograms() {
                self.emit(&Event::from_snapshot(&name, &snap))?;
            }
            // Volatile counters last, still in sorted-name order: their
            // presence, order and seq positions are deterministic; only the
            // values are scheduling-dependent (see `strip_volatile`).
            for (name, value) in self.registry.volatile_counters() {
                self.emit(&Event::Volatile { name, value })?;
            }
            let events = {
                let state = self.state.lock().expect("telemetry state poisoned");
                state.seq + 1
            };
            self.emit(&Event::RunEnd { events })?;
        }
        let mut state = self.state.into_inner().expect("telemetry state poisoned");
        if let Some(writer) = state.writer.as_mut() {
            writer.flush()?;
        }
        let manifest = RunManifest {
            run_id: self.run_id.clone(),
            created_unix_ms: self.created_unix_ms,
            git: if self.registry.is_enabled() {
                git_describe()
            } else {
                "unknown".to_owned()
            },
            options: state.meta.into_iter().collect(),
            phases: state.phases,
            events: state.seq,
            events_file: self.dir.as_ref().map(|_| format!("{}.jsonl", self.run_id)),
        };
        if let Some(dir) = &self.dir {
            fs::write(
                dir.join(format!("{}.manifest.json", self.run_id)),
                manifest.to_json(),
            )?;
        }
        Ok(manifest)
    }
}

/// Guard for one timed phase; see [`RunTelemetry::span`].
pub struct Span<'a> {
    run: &'a RunTelemetry,
    name: String,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        #[allow(clippy::cast_possible_truncation)]
        let nanos = self.started.elapsed().as_nanos() as u64;
        self.run.close_span(&self.name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_emits_sorted_snapshot_and_manifest() {
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("t1", buf.clone()).unwrap();
        run.set_meta("seed", "42");
        run.registry().counter("mc.B.pages").add(2);
        run.registry().counter("mc.A.pages").add(1);
        run.registry()
            .histogram("mc.A.page_fault_arrivals")
            .record(3);
        {
            let _span = run.span("phase-one").unwrap();
        }
        let manifest = run.finish().unwrap();

        assert_eq!(manifest.run_id, "t1");
        assert_eq!(manifest.options.get("seed").map(String::as_str), Some("42"));
        assert_eq!(manifest.phases.len(), 1);
        assert_eq!(manifest.phases[0].0, "phase-one");
        assert_eq!(manifest.events_file, None);

        let events = Event::parse_stream(&buf.text()).unwrap();
        assert_eq!(manifest.events, events.len() as u64);
        assert!(matches!(&events[0], Event::RunStart { run_id } if run_id == "t1"));
        // Counters arrive sorted by name, before histograms.
        let counters: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(counters, vec!["mc.A.pages", "mc.B.pages"]);
        assert!(matches!(events.last(), Some(Event::RunEnd { .. })));
    }

    #[test]
    fn strip_volatile_round_trips_a_full_run() {
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("strip", buf.clone()).unwrap();
        run.registry().counter("mc.A.pages").add(2);
        run.registry()
            .histogram("mc.A.page_fault_arrivals")
            .record(1);
        run.registry()
            .volatile_counter("pool.A.pages_stolen")
            .add(5);
        run.finish().unwrap();
        let raw = buf.text();

        // Volatile lines are present in the raw sink...
        assert!(raw.contains("\"event\": \"volatile\""));
        assert!(raw.contains("pool.A.pages_stolen"));
        // ...absent after stripping...
        let stripped = crate::sink::strip_volatile(&raw);
        assert!(!stripped.contains("\"volatile\""));
        assert!(!stripped.contains("pool.A.pages_stolen"));
        // ...and every non-volatile line survives byte for byte.
        let kept: Vec<&str> = stripped.lines().collect();
        let expected: Vec<&str> = raw
            .lines()
            .filter(|l| !l.contains("\"event\": \"volatile\""))
            .collect();
        assert_eq!(kept, expected);
        assert_eq!(kept.len(), raw.lines().count() - 1);
        assert!(stripped.contains("mc.A.pages"));
        assert!(stripped.contains("mc.A.page_fault_arrivals"));
    }

    #[test]
    fn volatile_counters_flush_after_histograms() {
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("t2", buf.clone()).unwrap();
        run.registry().counter("mc.A.pages").add(2);
        run.registry()
            .histogram("mc.A.page_fault_arrivals")
            .record(1);
        run.registry()
            .volatile_counter("pool.A.pages_stolen")
            .add(5);
        run.finish().unwrap();

        let events = Event::parse_stream(&buf.text()).unwrap();
        let tags: Vec<&str> = events
            .iter()
            .map(|e| match e {
                Event::RunStart { .. } => "run_start",
                Event::SpanBegin { .. } => "span_begin",
                Event::SpanEnd { .. } => "span_end",
                Event::Counter { .. } => "counter",
                Event::Histogram { .. } => "histogram",
                Event::Volatile { .. } => "volatile",
                Event::Series { .. } => "series",
                Event::SeriesHistogram { .. } => "series_histogram",
                Event::SeriesVolatile { .. } => "series_volatile",
                Event::SeriesEstimate { .. } => "series_estimate",
                Event::RunEnd { .. } => "run_end",
            })
            .collect();
        assert_eq!(
            tags,
            vec!["run_start", "counter", "histogram", "volatile", "run_end"]
        );
        // The volatile value made it through with its name intact.
        assert!(events.iter().any(
            |e| matches!(e, Event::Volatile { name, value } if name == "pool.A.pages_stolen" && *value == 5)
        ));
    }

    #[test]
    fn disabled_run_emits_nothing() {
        let run = RunTelemetry::disabled();
        run.set_meta("seed", "1");
        run.registry().counter("mc.A.pages").add(9);
        {
            let _span = run.span("ignored").unwrap();
        }
        let manifest = run.finish().unwrap();
        assert_eq!(manifest.events, 0);
        assert!(manifest.phases.is_empty());
        assert!(manifest.options.is_empty());
    }

    #[test]
    fn directory_sink_writes_stream_and_manifest() {
        let dir = std::env::temp_dir().join(format!(
            "sim-telemetry-test-{}-{}",
            std::process::id(),
            unix_millis()
        ));
        let run = RunTelemetry::create("unit", &dir).unwrap();
        run.registry().counter("codec.A.writes").incr();
        let manifest = run.finish().unwrap();
        assert_eq!(manifest.events_file.as_deref(), Some("unit.jsonl"));

        let stream = fs::read_to_string(dir.join("unit.jsonl")).unwrap();
        assert!(Event::parse_stream(&stream).is_ok());
        let sidecar = fs::read_to_string(dir.join("unit.manifest.json")).unwrap();
        assert_eq!(RunManifest::parse(&sidecar).unwrap().run_id, "unit");
        let _ = fs::remove_dir_all(&dir);
    }
}
