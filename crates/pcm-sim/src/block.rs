//! A PCM data block: the row of cells a recovery scheme protects.

use crate::{Cell, Fault};
use bitblock::BitBlock;

/// A fixed-width row of PCM [`Cell`]s.
///
/// This is the protection granularity of every scheme in the paper (expected
/// between 128 and 512 bits, "equal to a physical row"). The block exposes
/// exactly the operations a memory controller has:
///
/// - [`write_raw`](Self::write_raw): a *differential* write — only cells
///   whose stored value differs from the target are programmed;
/// - [`read_raw`](Self::read_raw): read every cell;
/// - [`verify`](Self::verify): the verification read that follows each write
///   in the partition-and-inversion framework, returning the offsets that
///   read back wrong.
///
/// Fault bookkeeping ([`faults`](Self::faults), [`force_stuck`](Self::force_stuck))
/// is simulation-side instrumentation: the base Aegis and SAFER codecs never
/// consult it, while the `-rw` variants access it through a fail-cache model.
///
/// Internally the block is stored structure-of-arrays: one [`BitBlock`] of
/// stored values, one of stuck cells, and a per-cell endurance vector.
/// The hot operations — differential write, read, verification — work on
/// whole `u64` lanes, touching per-cell state only for the cells a write
/// actually programs; [`cell`](Self::cell) materializes a [`Cell`]
/// snapshot on demand for the slow paths.
///
/// # Examples
///
/// ```
/// use pcm_sim::PcmBlock;
/// use bitblock::BitBlock;
///
/// let mut block = PcmBlock::pristine(16);
/// block.force_stuck(3, true);
/// let data = BitBlock::zeros(16);
/// block.write_raw(&data);
/// assert_eq!(block.verify(&data), vec![3]); // the W fault reads back wrong
/// ```
#[derive(Debug, Clone)]
pub struct PcmBlock {
    /// Stored value of every cell (stuck cells hold their stuck-at value).
    values: BitBlock,
    /// Mask of cells whose endurance is exhausted (fully *or* partially
    /// stuck — either way `write_raw` never pulses them).
    stuck: BitBlock,
    /// Subset of `stuck`: cells that failed only *partially* (they reliably
    /// store their stuck value; the opposite value takes only with the
    /// per-cell weak-write probability `weak_q8[i] / 256`, which the
    /// worst-case functional model rounds down to "never").
    partial: BitBlock,
    /// Per-cell weak-write success probability (1/256ths); meaningful only
    /// where `partial` is set.
    weak_q8: Vec<u8>,
    /// Remaining programming pulses per cell.
    writes_left: Vec<u64>,
    writes: u64,
}

impl PcmBlock {
    /// Creates a block of `len` pristine cells (effectively unlimited
    /// endurance), all storing `false`.
    #[must_use]
    pub fn pristine(len: usize) -> Self {
        Self {
            values: BitBlock::zeros(len),
            stuck: BitBlock::zeros(len),
            partial: BitBlock::zeros(len),
            weak_q8: vec![0; len],
            writes_left: vec![u64::MAX; len],
            writes: 0,
        }
    }

    /// Creates a block whose cell `i` gets lifetime `lifetime(i)` and an
    /// initial value of `false`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_sim::PcmBlock;
    /// let block = PcmBlock::with_lifetimes(4, |i| (i as u64 + 1) * 10);
    /// assert_eq!(block.len(), 4);
    /// ```
    #[must_use]
    pub fn with_lifetimes<F: FnMut(usize) -> u64>(len: usize, mut lifetime: F) -> Self {
        let writes_left: Vec<u64> = (0..len).map(&mut lifetime).collect();
        Self {
            values: BitBlock::zeros(len),
            stuck: BitBlock::from_fn(len, |i| writes_left[i] == 0),
            partial: BitBlock::zeros(len),
            weak_q8: vec![0; len],
            writes_left,
            writes: 0,
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writes_left.len()
    }

    /// Whether the block has zero width.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes_left.is_empty()
    }

    /// Programs the block toward `target` with a differential write and
    /// returns the number of cells actually pulsed.
    ///
    /// Stuck cells silently keep their value — discovering that is the job
    /// of the verification read.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != self.len()`.
    pub fn write_raw(&mut self, target: &BitBlock) -> usize {
        assert_eq!(target.len(), self.len(), "write width mismatch");
        self.writes += 1;
        let mut pulses = 0;
        for word_index in 0..self.values.as_words().len() {
            // Cells to pulse: value differs from target and not stuck.
            let diff = (self.values.as_words()[word_index] ^ target.as_words()[word_index])
                & !self.stuck.as_words()[word_index];
            if diff == 0 {
                continue;
            }
            pulses += diff.count_ones() as usize;
            let flipped = self.values.as_words()[word_index] ^ diff;
            self.values.set_word(word_index, flipped);
            let mut rest = diff;
            while rest != 0 {
                let offset = word_index * 64 + rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let left = &mut self.writes_left[offset];
                *left -= 1;
                if *left == 0 {
                    // The cell dies holding the value it was just
                    // programmed to — the paper's stuck-at model.
                    self.stuck.set(offset, true);
                }
            }
        }
        pulses
    }

    /// Reads every cell.
    #[must_use]
    pub fn read_raw(&self) -> BitBlock {
        self.values.clone()
    }

    /// Reads every cell into `out`, reusing its allocation — the kernel
    /// paths' replacement for [`read_raw`](Self::read_raw), copying 64
    /// cells per word.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn read_into(&self, out: &mut BitBlock) {
        assert_eq!(out.len(), self.len(), "read width mismatch");
        out.copy_from(&self.values);
    }

    /// Verification read: offsets whose stored value differs from `expected`,
    /// ascending.
    ///
    /// # Panics
    ///
    /// Panics if `expected.len() != self.len()`.
    #[must_use]
    pub fn verify(&self, expected: &BitBlock) -> Vec<usize> {
        assert_eq!(expected.len(), self.len(), "verify width mismatch");
        self.read_raw().diff_offsets(expected)
    }

    /// Verification read into a reusable mismatch mask: after the call,
    /// `wrong` has a one exactly at each offset whose stored value differs
    /// from `expected`. Allocation-free twin of [`verify`](Self::verify).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn verify_into(&self, expected: &BitBlock, wrong: &mut BitBlock) {
        assert_eq!(expected.len(), self.len(), "verify width mismatch");
        self.read_into(wrong);
        *wrong ^= expected;
    }

    /// All stuck-at faults currently present, by ascending offset.
    ///
    /// Simulation-side oracle; schemes without a fail cache must not call
    /// this (they learn about faults through [`verify`](Self::verify) only).
    #[must_use]
    pub fn faults(&self) -> Vec<Fault> {
        self.stuck
            .ones()
            .map(|offset| {
                if self.partial.get(offset) {
                    Fault::partial(offset, self.values.get(offset), self.weak_q8[offset])
                } else {
                    Fault::new(offset, self.values.get(offset))
                }
            })
            .collect()
    }

    /// Number of stuck cells.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.stuck.count_ones()
    }

    /// Fault-injection hook: forces the cell at `offset` to be stuck at
    /// `value`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn force_stuck(&mut self, offset: usize, value: bool) {
        assert!(offset < self.len(), "offset out of range");
        self.values.set(offset, value);
        self.stuck.set(offset, true);
        self.partial.set(offset, false);
        self.weak_q8[offset] = 0;
        self.writes_left[offset] = 0;
    }

    /// Fault-injection hook: forces the cell at `offset` to be *partially*
    /// stuck at `value` with weak-write success probability
    /// `weak_success_q8 / 256` (reported through the
    /// [`faults`](Self::faults) oracle; `write_raw` treats the cell as
    /// unchangeable, the worst case).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    pub fn force_partially_stuck(&mut self, offset: usize, value: bool, weak_success_q8: u8) {
        assert!(offset < self.len(), "offset out of range");
        self.values.set(offset, value);
        self.stuck.set(offset, true);
        self.partial.set(offset, true);
        self.weak_q8[offset] = weak_success_q8;
        self.writes_left[offset] = 0;
    }

    /// Snapshot of a cell (value + remaining endurance + failure mode).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    #[must_use]
    pub fn cell(&self, offset: usize) -> Cell {
        if self.partial.get(offset) {
            Cell::partially_stuck_at(self.values.get(offset))
        } else {
            Cell::new(self.values.get(offset), self.writes_left[offset])
        }
    }

    /// How many block-level writes have been issued so far.
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Sum of programming pulses it would take to reach `target` (without
    /// issuing them) — used by wear-aware tests.
    #[must_use]
    pub fn pending_pulses(&self, target: &BitBlock) -> usize {
        assert_eq!(target.len(), self.len(), "width mismatch");
        self.values
            .as_words()
            .iter()
            .zip(target.as_words())
            .zip(self.stuck.as_words())
            .map(|((&value, &want), &stuck)| ((value ^ want) & !stuck).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_write_only_pulses_changed_cells() {
        let mut b = PcmBlock::pristine(8);
        let data = BitBlock::from_indices(8, [0usize, 7]);
        assert_eq!(b.write_raw(&data), 2);
        assert_eq!(b.write_raw(&data), 0); // nothing changes the second time
        assert_eq!(b.read_raw(), data);
    }

    #[test]
    fn verify_reports_stuck_wrong_cells_only() {
        let mut b = PcmBlock::pristine(8);
        b.force_stuck(2, true); // stuck at 1
        b.force_stuck(5, false); // stuck at 0
        let data = BitBlock::zeros(8); // wants all 0
        b.write_raw(&data);
        assert_eq!(b.verify(&data), vec![2]); // only offset 2 disagrees
    }

    #[test]
    fn read_into_and_verify_into_match_the_allocating_paths() {
        let mut b = PcmBlock::pristine(130);
        b.force_stuck(2, true);
        b.force_stuck(129, false);
        let data = BitBlock::from_indices(130, [5usize, 64, 129]);
        b.write_raw(&data);

        let mut read = BitBlock::ones_block(130);
        b.read_into(&mut read);
        assert_eq!(read, b.read_raw());

        let mut wrong = BitBlock::zeros(130);
        b.verify_into(&data, &mut wrong);
        assert_eq!(wrong.ones().collect::<Vec<_>>(), b.verify(&data));
    }

    #[test]
    fn faults_oracle_lists_offsets_and_values() {
        let mut b = PcmBlock::pristine(16);
        b.force_stuck(9, true);
        b.force_stuck(3, false);
        assert_eq!(b.faults(), vec![Fault::new(3, false), Fault::new(9, true)]);
        assert_eq!(b.fault_count(), 2);
    }

    #[test]
    fn cells_wear_out_through_raw_writes() {
        let mut b = PcmBlock::with_lifetimes(2, |_| 1);
        let one = BitBlock::ones_block(2);
        let zero = BitBlock::zeros(2);
        b.write_raw(&one); // each cell consumes its single write
        b.write_raw(&zero); // ignored: both cells are now stuck at 1
        assert_eq!(b.read_raw(), one);
        assert_eq!(b.fault_count(), 2);
    }

    #[test]
    fn write_count_tracks_block_writes() {
        let mut b = PcmBlock::pristine(4);
        b.write_raw(&BitBlock::zeros(4));
        b.write_raw(&BitBlock::ones_block(4));
        assert_eq!(b.write_count(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn write_width_mismatch_panics() {
        PcmBlock::pristine(4).write_raw(&BitBlock::zeros(5));
    }

    #[test]
    fn pending_pulses_ignores_stuck_cells() {
        let mut b = PcmBlock::pristine(4);
        b.force_stuck(0, false);
        let target = BitBlock::ones_block(4);
        assert_eq!(b.pending_pulses(&target), 3);
    }

    #[test]
    fn partially_stuck_cells_hold_their_value_and_report_their_kind() {
        let mut b = PcmBlock::pristine(16);
        b.force_partially_stuck(4, true, 128);
        b.force_stuck(9, false);
        // Worst-case functional model: writes never change the partial cell.
        let zeros = BitBlock::zeros(16);
        b.write_raw(&zeros);
        assert_eq!(b.verify(&zeros), vec![4]);
        assert_eq!(
            b.faults(),
            vec![Fault::partial(4, true, 128), Fault::new(9, false)]
        );
        let cell = b.cell(4);
        assert!(cell.is_partially_stuck());
        assert_eq!(cell.stuck_value(), Some(true));
        assert!(!b.cell(9).is_partially_stuck());
        // Fully re-forcing the same offset clears the partial refinement.
        b.force_stuck(4, true);
        assert_eq!(b.faults()[0], Fault::new(4, true));
    }
}
