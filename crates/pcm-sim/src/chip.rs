//! A functional PCM chip: physical pages of codec-protected blocks behind
//! Start-Gap wear leveling, with OS-style retirement of failed pages.
//!
//! The Monte Carlo engine ([`crate::montecarlo`]) answers the paper's
//! quantitative questions; this module is the *end-to-end functional*
//! counterpart — every write really programs cells, really verifies,
//! really moves the Start-Gap spare, and really loses capacity when a
//! recovery scheme gives up. It exists so the full stack (cells → codecs →
//! wear leveling → OS retirement) can be exercised and tested as one
//! system, at small scale.
//!
//! Design choices (kept deliberately simple, documented here):
//!
//! - wear leveling works at page granularity, `N + 1` physical pages for
//!   `N` logical ones;
//! - a gap move physically copies one page (wearing its cells), exactly as
//!   Start-Gap prescribes;
//! - when any block write becomes uncorrectable, the *logical* page
//!   involved is retired (the OS drops it from the allocation pool) and
//!   the physical page is marked dead; there is no remapping table.

use crate::codec::StuckAtCodec;
use crate::wearlevel::{StartGap, WearLeveler};
use crate::{LifetimeModel, PcmBlock};
use bitblock::BitBlock;
use sim_rng::Rng;
use std::error::Error;
use std::fmt;

/// Why a chip operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChipError {
    /// The logical page was retired after an uncorrectable fault.
    PageRetired(
        /// The retired logical page.
        usize,
    ),
    /// The logical page index is out of range.
    BadAddress(
        /// The offending logical page.
        usize,
    ),
    /// Payload shape does not match the chip geometry.
    BadPayload {
        /// Blocks expected per page.
        expected_blocks: usize,
        /// Blocks supplied.
        got_blocks: usize,
    },
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PageRetired(p) => write!(f, "logical page {p} has been retired"),
            Self::BadAddress(p) => write!(f, "logical page {p} out of range"),
            Self::BadPayload {
                expected_blocks,
                got_blocks,
            } => write!(
                f,
                "payload has {got_blocks} blocks, page holds {expected_blocks}"
            ),
        }
    }
}

impl Error for ChipError {}

/// Cumulative chip statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChipStats {
    /// Logical page writes accepted.
    pub page_writes: u64,
    /// Start-Gap page copies performed.
    pub gap_copies: u64,
    /// Cell programming pulses issued (data + copies).
    pub cell_pulses: u64,
    /// Logical pages retired so far.
    pub retired_pages: usize,
}

/// Geometry and wear parameters of a [`PcmChip`].
#[derive(Debug, Clone, Copy)]
pub struct ChipConfig {
    /// Logical pages.
    pub pages: usize,
    /// Data blocks per page.
    pub blocks_per_page: usize,
    /// Bits per data block.
    pub block_bits: usize,
    /// Cell lifetime distribution.
    pub lifetime: LifetimeModel,
    /// Start-Gap move interval (ψ), in page writes.
    pub gap_interval: u64,
}

impl ChipConfig {
    /// A small, fast-wearing chip suitable for tests and examples.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            pages: 8,
            blocks_per_page: 4,
            block_bits: 64,
            lifetime: LifetimeModel::new(2_000.0, 0.25),
            gap_interval: 16,
        }
    }
}

struct PhysicalPage {
    blocks: Vec<PcmBlock>,
    codecs: Vec<Box<dyn StuckAtCodec>>,
    dead: bool,
}

/// The functional chip. See the module docs for the design envelope.
pub struct PcmChip {
    config: ChipConfig,
    physical: Vec<PhysicalPage>,
    leveler: StartGap,
    retired: Vec<bool>,
    stats: ChipStats,
}

impl fmt::Debug for PcmChip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PcmChip")
            .field("pages", &self.config.pages)
            .field("live_pages", &self.live_pages())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PcmChip {
    /// Builds a chip whose every block is protected by a codec from
    /// `codec_factory`; cell lifetimes are drawn from the config's model.
    pub fn new<R, F>(config: ChipConfig, rng: &mut R, mut codec_factory: F) -> Self
    where
        R: Rng + ?Sized,
        F: FnMut() -> Box<dyn StuckAtCodec>,
    {
        let physical = (0..=config.pages)
            .map(|_| PhysicalPage {
                blocks: (0..config.blocks_per_page)
                    .map(|_| {
                        PcmBlock::with_lifetimes(config.block_bits, |_| {
                            config.lifetime.sample(rng) as u64
                        })
                    })
                    .collect(),
                codecs: (0..config.blocks_per_page)
                    .map(|_| codec_factory())
                    .collect(),
                dead: false,
            })
            .collect();
        Self {
            physical,
            leveler: StartGap::new(config.pages, config.gap_interval),
            retired: vec![false; config.pages],
            config,
            stats: ChipStats::default(),
        }
    }

    /// Chip geometry.
    #[must_use]
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Logical pages still in the allocation pool.
    #[must_use]
    pub fn live_pages(&self) -> usize {
        self.retired.iter().filter(|&&r| !r).count()
    }

    /// Whether a logical page has been retired.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    #[must_use]
    pub fn is_retired(&self, logical: usize) -> bool {
        self.retired[logical]
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    fn check_address(&self, logical: usize) -> Result<(), ChipError> {
        if logical >= self.config.pages {
            return Err(ChipError::BadAddress(logical));
        }
        if self.retired[logical] {
            return Err(ChipError::PageRetired(logical));
        }
        Ok(())
    }

    /// Writes a full page (one [`BitBlock`] per data block).
    ///
    /// # Errors
    ///
    /// - [`ChipError::BadAddress`] / [`ChipError::BadPayload`] on shape
    ///   errors;
    /// - [`ChipError::PageRetired`] if the page was retired earlier, or if
    ///   this very write exhausts a block's recovery scheme (the page is
    ///   retired as a side effect, matching the OS-assisted model of the
    ///   paper's §4).
    pub fn write_page(&mut self, logical: usize, data: &[BitBlock]) -> Result<(), ChipError> {
        self.check_address(logical)?;
        if data.len() != self.config.blocks_per_page {
            return Err(ChipError::BadPayload {
                expected_blocks: self.config.blocks_per_page,
                got_blocks: data.len(),
            });
        }
        let gap_before = self.leveler.gap();
        let slot = self.leveler.on_write(logical);
        let page = &mut self.physical[slot];
        if page.dead {
            self.retired[logical] = true;
            self.stats.retired_pages += 1;
            return Err(ChipError::PageRetired(logical));
        }
        for (block_idx, word) in data.iter().enumerate() {
            match page.codecs[block_idx].write(&mut page.blocks[block_idx], word) {
                Ok(report) => self.stats.cell_pulses += report.cell_pulses as u64,
                Err(_) => {
                    page.dead = true;
                    self.retired[logical] = true;
                    self.stats.retired_pages += 1;
                    return Err(ChipError::PageRetired(logical));
                }
            }
        }
        self.stats.page_writes += 1;
        let gap_after = self.leveler.gap();
        if gap_after != gap_before {
            self.copy_page(gap_before, gap_after);
        }
        Ok(())
    }

    /// Reads a full page back.
    ///
    /// # Errors
    ///
    /// [`ChipError::BadAddress`] or [`ChipError::PageRetired`].
    pub fn read_page(&mut self, logical: usize) -> Result<Vec<BitBlock>, ChipError> {
        self.check_address(logical)?;
        let slot = self.leveler.physical_of(logical);
        let page = &self.physical[slot];
        Ok(page
            .codecs
            .iter()
            .zip(&page.blocks)
            .map(|(codec, block)| codec.read(block))
            .collect())
    }

    /// Start-Gap page copy: destination = the old gap slot, source = the
    /// new one (the line "below" slides up into the hole).
    fn copy_page(&mut self, dest: usize, src: usize) {
        self.stats.gap_copies += 1;
        if self.physical[src].dead {
            self.physical[dest].dead = true;
            return;
        }
        let words: Vec<BitBlock> = {
            let page = &self.physical[src];
            page.codecs
                .iter()
                .zip(&page.blocks)
                .map(|(codec, block)| codec.read(block))
                .collect()
        };
        let page = &mut self.physical[dest];
        for (block_idx, word) in words.iter().enumerate() {
            match page.codecs[block_idx].write(&mut page.blocks[block_idx], word) {
                Ok(report) => self.stats.cell_pulses += report.cell_pulses as u64,
                Err(_) => {
                    // The spare itself wore out; it simply drops out of the
                    // healthy rotation. Whoever maps here next retires.
                    page.dead = true;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::WriteReport;
    use crate::UncorrectableError;
    use sim_rng::SeedableRng;
    use sim_rng::SmallRng;

    /// Passthrough codec that fails once any cell reads back wrong.
    struct Raw {
        bits: usize,
    }

    impl StuckAtCodec for Raw {
        fn write(
            &mut self,
            block: &mut PcmBlock,
            data: &BitBlock,
        ) -> Result<WriteReport, UncorrectableError> {
            let mut report = WriteReport::default();
            report.cell_pulses += block.write_raw(data);
            if block.verify(data).is_empty() {
                Ok(report)
            } else {
                Err(UncorrectableError::new(
                    "raw",
                    block.fault_count(),
                    "stuck cell",
                ))
            }
        }
        fn read(&self, block: &PcmBlock) -> BitBlock {
            block.read_raw()
        }
        fn overhead_bits(&self) -> usize {
            0
        }
        fn block_bits(&self) -> usize {
            self.bits
        }
        fn name(&self) -> String {
            "raw".into()
        }
    }

    fn tiny_chip(seed: u64) -> PcmChip {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = ChipConfig::tiny();
        PcmChip::new(cfg, &mut rng, || Box::new(Raw { bits: 64 }))
    }

    fn random_page(rng: &mut SmallRng, cfg: &ChipConfig) -> Vec<BitBlock> {
        (0..cfg.blocks_per_page)
            .map(|_| BitBlock::random(rng, cfg.block_bits))
            .collect()
    }

    #[test]
    fn write_read_roundtrip_across_gap_moves() {
        let mut chip = tiny_chip(1);
        let cfg = *chip.config();
        let mut rng = SmallRng::seed_from_u64(2);
        // Enough writes to force several gap moves.
        let mut last = vec![Vec::new(); cfg.pages];
        for i in 0..100 {
            let page = i % cfg.pages;
            let data = random_page(&mut rng, &cfg);
            chip.write_page(page, &data).expect("young chip");
            last[page] = data;
        }
        assert!(chip.stats().gap_copies > 0, "gap never moved");
        for (page, data) in last.iter().enumerate() {
            assert_eq!(&chip.read_page(page).unwrap(), data, "page {page}");
        }
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let mut chip = tiny_chip(3);
        assert_eq!(chip.write_page(99, &[]), Err(ChipError::BadAddress(99)));
        assert!(matches!(
            chip.write_page(0, &[]),
            Err(ChipError::BadPayload { .. })
        ));
    }

    #[test]
    fn chip_wears_out_and_retires_pages() {
        let mut chip = tiny_chip(4);
        let cfg = *chip.config();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut deaths = 0;
        'outer: for round in 0..100_000 {
            for page in 0..cfg.pages {
                if chip.is_retired(page) {
                    continue;
                }
                let data = random_page(&mut rng, &cfg);
                if chip.write_page(page, &data).is_err() {
                    deaths += 1;
                    if chip.live_pages() == 0 {
                        break 'outer;
                    }
                }
            }
            assert!(round < 99_999, "chip never wore out");
        }
        assert_eq!(deaths, cfg.pages);
        assert_eq!(chip.stats().retired_pages, cfg.pages);
        // Every further access reports retirement.
        for page in 0..cfg.pages {
            assert!(matches!(
                chip.read_page(page),
                Err(ChipError::PageRetired(_))
            ));
        }
    }

    #[test]
    fn protected_chip_outlives_raw_chip() {
        use aegis_core_shim::make_aegis; // see helper below

        // Same seed => same cell lifetimes in expectation; compare total
        // page writes absorbed until the first retirement.
        let survive = |protected: bool, seed: u64| -> u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let cfg = ChipConfig::tiny();
            let mut chip = PcmChip::new(cfg, &mut rng, || {
                if protected {
                    make_aegis(cfg.block_bits)
                } else {
                    Box::new(Raw {
                        bits: cfg.block_bits,
                    })
                }
            });
            let mut data_rng = SmallRng::seed_from_u64(seed ^ 0xff);
            let mut writes = 0u64;
            loop {
                let page = (writes % cfg.pages as u64) as usize;
                let data = random_page(&mut data_rng, &cfg);
                if chip.write_page(page, &data).is_err() {
                    return writes;
                }
                writes += 1;
            }
        };
        let raw: u64 = (0..3).map(|s| survive(false, s)).sum();
        let protected: u64 = (0..3).map(|s| survive(true, s)).sum();
        assert!(
            protected > raw,
            "Aegis-protected chip must absorb more writes ({protected} vs {raw})"
        );
    }

    /// `pcm-sim` cannot depend on `aegis-core` (dependency direction), so
    /// this in-test shim builds a minimal inversion codec equivalent to a
    /// 1-group SAFER: enough to demonstrate protection.
    mod aegis_core_shim {
        use super::*;

        struct WholeBlockInvert {
            bits: usize,
            inverted: bool,
        }

        impl StuckAtCodec for WholeBlockInvert {
            fn write(
                &mut self,
                block: &mut PcmBlock,
                data: &BitBlock,
            ) -> Result<WriteReport, UncorrectableError> {
                let mut report = WriteReport::default();
                for target in [data.clone(), {
                    let mut inverted = data.clone();
                    inverted.invert_all();
                    inverted
                }] {
                    report.cell_pulses += block.write_raw(&target);
                    report.verify_reads += 1;
                    if block.verify(&target).is_empty() {
                        self.inverted = target != *data;
                        return Ok(report);
                    }
                }
                Err(UncorrectableError::new(
                    "invert",
                    block.fault_count(),
                    "both polarities fail",
                ))
            }
            fn read(&self, block: &PcmBlock) -> BitBlock {
                let mut data = block.read_raw();
                if self.inverted {
                    data.invert_all();
                }
                data
            }
            fn overhead_bits(&self) -> usize {
                1
            }
            fn block_bits(&self) -> usize {
                self.bits
            }
            fn name(&self) -> String {
                "whole-block-invert".into()
            }
        }

        pub fn make_aegis(bits: usize) -> Box<dyn StuckAtCodec> {
            Box::new(WholeBlockInvert {
                bits,
                inverted: false,
            })
        }
    }
}
