//! Fail-cache models: how a scheme learns where the faults are.
//!
//! The base Aegis and SAFER schemes discover faults only through
//! verification reads. Their enhanced variants (Aegis-rw, Aegis-rw-p,
//! SAFER-cache, RDIS as evaluated in the paper) assume a *fail cache*: an
//! SRAM structure recording fault locations and stuck-at values so the
//! controller knows, before writing, which bits of a block are stuck
//! (paper §2.4).
//!
//! Two models are provided:
//!
//! - [`IdealFailCache`] — "a sufficiently large cache to provide information
//!   about any faulty cells" (the paper's evaluation setting);
//! - [`DirectMappedFailCache`] — the bounded, direct-mapped SRAM the paper
//!   describes and leaves as future work; used here for a capacity ablation.

use crate::{Fault, PcmBlock};

/// Source of pre-write fault knowledge for cache-assisted schemes.
pub trait FaultOracle {
    /// Faults of block `block_id` known *before* a write, ascending offset.
    ///
    /// `block` is the physical block, available so that ideal oracles can
    /// consult the simulator's ground truth; bounded caches must use only
    /// their own state.
    fn known_faults(&mut self, block_id: u64, block: &PcmBlock) -> Vec<Fault>;

    /// Records a fault discovered by a verification read.
    fn record(&mut self, block_id: u64, fault: Fault);

    /// Model name for reports.
    fn name(&self) -> String;
}

/// The paper's evaluation assumption: every fault is always known.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealFailCache;

impl IdealFailCache {
    /// Creates the ideal (miss-free) cache.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl FaultOracle for IdealFailCache {
    fn known_faults(&mut self, _block_id: u64, block: &PcmBlock) -> Vec<Fault> {
        block.faults()
    }

    fn record(&mut self, _block_id: u64, _fault: Fault) {}

    fn name(&self) -> String {
        "ideal".to_owned()
    }
}

/// A direct-mapped SRAM fail cache of bounded capacity.
///
/// Each entry holds one `(block, offset) → stuck value` record; the slot is
/// chosen by hashing the pair, and a colliding insertion evicts the previous
/// occupant — the structure proposed alongside SAFER and referenced by the
/// paper as the practical way to supply R/W fault knowledge.
///
/// # Examples
///
/// ```
/// use pcm_sim::failcache::{DirectMappedFailCache, FaultOracle};
/// use pcm_sim::{Fault, PcmBlock};
///
/// let mut cache = DirectMappedFailCache::new(64);
/// let mut block = PcmBlock::pristine(512);
/// block.force_stuck(42, true);
/// cache.record(7, Fault::new(42, true));
/// assert_eq!(cache.known_faults(7, &block), vec![Fault::new(42, true)]);
/// ```
#[derive(Debug, Clone)]
pub struct DirectMappedFailCache {
    slots: Vec<Option<Entry>>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    block_id: u64,
    fault: Fault,
}

impl DirectMappedFailCache {
    /// Creates a cache with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fail cache capacity must be positive");
        Self {
            slots: vec![None; capacity],
            hits: 0,
            misses: 0,
        }
    }

    /// Entries the cache can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lookups that found the probed fault.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed a fault actually present in the block.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn slot_of(&self, block_id: u64, offset: usize) -> usize {
        // Fibonacci hashing of the (block, offset) pair; cheap and adequate
        // for a direct-mapped index.
        let key = block_id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(offset as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (key % self.slots.len() as u64) as usize
    }
}

impl FaultOracle for DirectMappedFailCache {
    /// Probes the cache for every fault the block actually has and returns
    /// the subset the cache knows about. Faults the cache has evicted are
    /// *not* returned — the scheme will rediscover them through a
    /// verification read (and `record` them again).
    fn known_faults(&mut self, block_id: u64, block: &PcmBlock) -> Vec<Fault> {
        let mut known = Vec::new();
        for fault in block.faults() {
            let slot = self.slot_of(block_id, fault.offset);
            match self.slots[slot] {
                Some(e) if e.block_id == block_id && e.fault.offset == fault.offset => {
                    self.hits += 1;
                    known.push(e.fault);
                }
                _ => self.misses += 1,
            }
        }
        known
    }

    fn record(&mut self, block_id: u64, fault: Fault) {
        let slot = self.slot_of(block_id, fault.offset);
        self.slots[slot] = Some(Entry { block_id, fault });
    }

    fn name(&self) -> String {
        format!("direct-mapped({})", self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_cache_sees_ground_truth() {
        let mut block = PcmBlock::pristine(32);
        block.force_stuck(5, true);
        block.force_stuck(20, false);
        let mut cache = IdealFailCache::new();
        assert_eq!(
            cache.known_faults(0, &block),
            vec![Fault::new(5, true), Fault::new(20, false)]
        );
    }

    #[test]
    fn direct_mapped_recalls_recorded_faults() {
        let mut block = PcmBlock::pristine(64);
        block.force_stuck(3, true);
        let mut cache = DirectMappedFailCache::new(16);
        // Before recording: miss.
        assert!(cache.known_faults(1, &block).is_empty());
        assert_eq!(cache.misses(), 1);
        cache.record(1, Fault::new(3, true));
        assert_eq!(cache.known_faults(1, &block), vec![Fault::new(3, true)]);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn direct_mapped_evicts_on_collision() {
        let mut cache = DirectMappedFailCache::new(1);
        cache.record(1, Fault::new(0, true));
        cache.record(2, Fault::new(9, false)); // same single slot: evicts
        let mut b1 = PcmBlock::pristine(16);
        b1.force_stuck(0, true);
        assert!(cache.known_faults(1, &b1).is_empty());
    }

    #[test]
    fn entries_from_other_blocks_do_not_alias() {
        let mut cache = DirectMappedFailCache::new(1024);
        cache.record(1, Fault::new(7, true));
        let mut other = PcmBlock::pristine(16);
        other.force_stuck(7, false);
        // Block 2 has a fault at the same offset; the cache entry belongs to
        // block 1 and must not be returned for block 2.
        let known = cache.known_faults(2, &other);
        assert!(known.is_empty() || !known[0].stuck);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = DirectMappedFailCache::new(0);
    }
}
