//! The analytic interface between recovery schemes and the Monte Carlo
//! engine.
//!
//! Simulating ~10^11 individual writes is pointless: the only writes that
//! can change a block's fate are the ones that reveal a *new* fault. A
//! [`RecoveryPolicy`] answers, for a given fault population and a given
//! W/R split (which faults are stuck-at-Wrong for the data being written),
//! whether the scheme's write algorithm succeeds. Each scheme crate provides
//! a policy that is property-tested against its functional
//! [`StuckAtCodec`](crate::codec::StuckAtCodec) implementation, so the fast
//! path provably matches the slow one.

use crate::fault::{sample_split_into, Fault, Stuckness};
use sim_rng::SeedableRng;
use sim_rng::SmallRng;

/// Reusable working memory for [`RecoveryPolicy::recoverable_with`].
///
/// The Monte Carlo engine creates one scratch arena per worker and hands it
/// to every policy decision, so steady-state evaluation allocates nothing:
/// a policy's first call sizes the buffers and every later call reuses
/// them. The fields are deliberately generic (`flags`, `bytes`, `counts`)
/// rather than scheme-specific so one arena serves every policy in a mixed
/// scheme sweep.
#[derive(Debug, Default)]
pub struct PolicyScratch {
    /// Boolean flags, e.g. per-slope "bad" marks.
    pub flags: Vec<bool>,
    /// Byte-wide tallies, e.g. per-group W/R occupancy.
    pub bytes: Vec<u8>,
    /// Word-wide tallies for policies that count rather than flag.
    pub counts: Vec<u32>,
    /// Incremental per-block fault-pair state maintained by
    /// [`RecoveryPolicy::observe_fault`].
    pub pair_cache: PairCache,
    /// W/R split buffer owned by the Monte Carlo driver.
    pub(crate) split: Vec<bool>,
    /// Fault-population buffer owned by the Monte Carlo driver.
    pub(crate) faults: Vec<Fault>,
}

/// One cached fault pair: indices into the covered fault slice plus a
/// scheme-defined tag (Aegis stores the colliding slope here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedPair {
    /// Index of the earlier fault of the pair.
    pub a: u32,
    /// Index of the later fault of the pair.
    pub b: u32,
    /// Scheme-defined payload (e.g. the slope both faults land on).
    pub tag: u32,
}

/// Incremental per-block fault-pair state.
///
/// A block's fault population only ever *grows* during its lifetime, and the
/// expensive part of every per-write recoverability check is a function of
/// fault *pairs* (collision slopes for Aegis, co-grouping vector masks for
/// SAFER, …). The cache lets [`RecoveryPolicy::observe_fault`] derive each
/// pair exactly once — when the `(F+1)`-th fault arrives, only its `F` new
/// pairs are computed — while the per-event split check walks the cached
/// entries.
///
/// The cache is *self-healing*: every consumer calls
/// [`begin`](PairCache::begin) with its owner key and the current fault
/// slice. If the cache belongs to another policy, or the covered faults are
/// not a prefix of the current population, the cache resets and is rebuilt
/// from scratch; otherwise only the suffix of unseen faults is absorbed.
/// Correctness therefore never depends on `forget_block` being called —
/// the cached content is a pure function of `(owner, covered)`.
///
/// The field set is a deliberately generic union of what the workspace's
/// schemes need (mirroring the `flags`/`bytes`/`counts` design of
/// [`PolicyScratch`]); each policy documents which fields it owns.
#[derive(Debug, Default)]
pub struct PairCache {
    /// Key identifying the policy configuration that built this cache; see
    /// [`cache_key`].
    pub owner: u64,
    /// The exact fault prefix the cached state describes.
    covered: Vec<Fault>,
    /// Cached pairs in arrival order of the later fault.
    pub pairs: Vec<CachedPair>,
    /// Per-pair `u128` masks, parallel to `pairs` when a scheme needs mask
    /// payloads wider than `CachedPair::tag` (SAFER's vector masks).
    pub masks: Vec<u128>,
    /// Per-tag pair counts (Aegis: colliding pairs per slope).
    pub counts: Vec<u32>,
    /// Number of tags with a zero count (Aegis: slopes no pair collides on).
    pub clean: usize,
    /// Union of `masks` (SAFER: vectors hit by at least one pair).
    pub all_mask: u128,
    /// Grown partition state (SAFER incremental: the vector positions).
    pub positions: Vec<usize>,
    /// Per-covered-fault group under `positions` (SAFER incremental).
    pub groups: Vec<u8>,
    /// Per-covered-fault geometric coordinates (RDIS: `(row, col)`).
    pub coords: Vec<(u32, u32)>,
}

impl PairCache {
    /// Whether the cache was built by `owner` for exactly `faults`.
    ///
    /// This is the fast-path guard `recoverable_with` uses before trusting
    /// cached state; the comparison is `O(f)` on fault count.
    #[must_use]
    pub fn matches(&self, owner: u64, faults: &[Fault]) -> bool {
        self.owner == owner && self.covered == faults
    }

    /// Synchronises ownership with `owner`/`faults` and returns the number
    /// of leading faults whose pair state is already cached.
    ///
    /// If the cache belongs to a different owner, or its covered faults are
    /// not a prefix of `faults`, all cached state is dropped and 0 is
    /// returned; the caller then absorbs every fault. Otherwise the caller
    /// only absorbs `faults[start..]`, committing each with
    /// [`commit`](PairCache::commit).
    pub fn begin(&mut self, owner: u64, faults: &[Fault]) -> usize {
        let prefix_ok = self.owner == owner
            && self.covered.len() <= faults.len()
            && self.covered == faults[..self.covered.len()];
        if !prefix_ok {
            self.reset();
            self.owner = owner;
        }
        self.covered.len()
    }

    /// Records that the pair state for `fault` is now cached.
    pub fn commit(&mut self, fault: Fault) {
        self.covered.push(fault);
    }

    /// The faults whose pair state is cached.
    #[must_use]
    pub fn covered(&self) -> &[Fault] {
        &self.covered
    }

    /// Drops all cached state (including ownership).
    pub fn reset(&mut self) {
        self.owner = 0;
        self.covered.clear();
        self.pairs.clear();
        self.masks.clear();
        self.counts.clear();
        self.clean = 0;
        self.all_mask = 0;
        self.positions.clear();
        self.groups.clear();
        self.coords.clear();
    }

    /// Captures a point-in-time copy of the full cache state.
    ///
    /// Together with [`restore`](PairCache::restore) this makes scratch
    /// state serializable for engine snapshots. Note that checkpoints taken
    /// at page boundaries never *need* a non-empty snapshot: the cache is
    /// self-healing (its content is a pure function of `(owner, covered)`),
    /// and every block evaluation re-derives it from the block's own fault
    /// prefix, so a restored-empty cache is semantically identical to a
    /// warm one. The snapshot exists so mid-block suspension (and tests)
    /// can round-trip the exact incremental state.
    #[must_use]
    pub fn snapshot(&self) -> PairCacheSnapshot {
        PairCacheSnapshot {
            owner: self.owner,
            covered: self.covered.clone(),
            pairs: self.pairs.clone(),
            masks: self.masks.clone(),
            counts: self.counts.clone(),
            clean: self.clean,
            all_mask: self.all_mask,
            positions: self.positions.clone(),
            groups: self.groups.clone(),
            coords: self.coords.clone(),
        }
    }

    /// Restores the cache to a previously captured snapshot, replacing all
    /// current state. A restored cache behaves exactly as the snapshotted
    /// one did: [`matches`](PairCache::matches) succeeds for the same
    /// `(owner, faults)` and [`begin`](PairCache::begin) resumes from the
    /// same covered prefix.
    pub fn restore(&mut self, snap: &PairCacheSnapshot) {
        self.owner = snap.owner;
        self.covered.clone_from(&snap.covered);
        self.pairs.clone_from(&snap.pairs);
        self.masks.clone_from(&snap.masks);
        self.counts.clone_from(&snap.counts);
        self.clean = snap.clean;
        self.all_mask = snap.all_mask;
        self.positions.clone_from(&snap.positions);
        self.groups.clone_from(&snap.groups);
        self.coords.clone_from(&snap.coords);
    }
}

/// A point-in-time copy of a [`PairCache`], captured by
/// [`PairCache::snapshot`] and replayed by [`PairCache::restore`].
///
/// Field-for-field mirror of the cache (the `covered` fault prefix is
/// exposed here even though the live cache keeps it private, so snapshots
/// can be serialized and compared by engine-state checkpointing).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PairCacheSnapshot {
    /// [`PairCache::owner`] at capture time.
    pub owner: u64,
    /// The covered fault prefix ([`PairCache::covered`]).
    pub covered: Vec<Fault>,
    /// Cached pairs ([`PairCache::pairs`]).
    pub pairs: Vec<CachedPair>,
    /// Per-pair masks ([`PairCache::masks`]).
    pub masks: Vec<u128>,
    /// Per-tag pair counts ([`PairCache::counts`]).
    pub counts: Vec<u32>,
    /// Zero-count tag total ([`PairCache::clean`]).
    pub clean: usize,
    /// Mask union ([`PairCache::all_mask`]).
    pub all_mask: u128,
    /// Partition positions ([`PairCache::positions`]).
    pub positions: Vec<usize>,
    /// Per-fault groups ([`PairCache::groups`]).
    pub groups: Vec<u8>,
    /// Per-fault coordinates ([`PairCache::coords`]).
    pub coords: Vec<(u32, u32)>,
}

/// Hashes a policy configuration into a [`PairCache`] owner key.
///
/// FNV-1a over the caller's scheme tag and geometry parameters. Policies
/// with distinct recoverability predicates must fold in a distinct leading
/// tag so a cache built by one can never be mistaken for another's.
#[must_use]
pub fn cache_key(parts: &[u64]) -> u64 {
    parts.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &p| {
        (h ^ p).wrapping_mul(0x1000_0000_01b3)
    })
}

impl PolicyScratch {
    /// Creates an empty arena; buffers grow on first use and are then
    /// reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears `flags` to `len` `false` entries and returns it.
    pub fn flags(&mut self, len: usize) -> &mut Vec<bool> {
        self.flags.clear();
        self.flags.resize(len, false);
        &mut self.flags
    }

    /// Clears `bytes` to `len` zero entries and returns it.
    pub fn bytes(&mut self, len: usize) -> &mut Vec<u8> {
        self.bytes.clear();
        self.bytes.resize(len, 0);
        &mut self.bytes
    }
}

/// Fast recoverability predicate for one scheme configuration.
///
/// Implementations must be immutable/stateless: feasibility may depend only
/// on the fault population and the split, never on write history. (This
/// holds for every scheme in the paper — e.g. Aegis's slope counter can
/// reach any slope by repeated increments, so history never forecloses a
/// configuration.)
pub trait RecoveryPolicy: Sync {
    /// Scheme name as used in the paper's figures (e.g. `"Aegis 17x31"`).
    fn name(&self) -> String;

    /// Metadata bits per protected block (Table 1 cost).
    fn overhead_bits(&self) -> usize;

    /// Width of the protected data block in bits.
    fn block_bits(&self) -> usize;

    /// Whether a block holding `faults` can absorb a write whose W/R split
    /// is `wrong` (`wrong[i]` ⇔ `faults[i]` is stuck-at-Wrong for the data).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `faults.len() != wrong.len()`.
    fn recoverable(&self, faults: &[Fault], wrong: &[bool]) -> bool;

    /// [`recoverable`](Self::recoverable) with caller-provided working
    /// memory.
    ///
    /// The Monte Carlo engine always calls this form, passing a per-worker
    /// [`PolicyScratch`]; policies whose decision needs temporary buffers
    /// override it to borrow them from the arena instead of allocating.
    /// The default ignores the arena and delegates, so allocation-free
    /// operation is an opt-in refinement — the two forms must decide
    /// identically.
    ///
    /// # Panics
    ///
    /// As [`recoverable`](Self::recoverable).
    fn recoverable_with(
        &self,
        faults: &[Fault],
        wrong: &[bool],
        scratch: &mut PolicyScratch,
    ) -> bool {
        let _ = scratch;
        self.recoverable(faults, wrong)
    }

    /// Notifies the policy that the last entry of `faults` just arrived, so
    /// it can extend incremental per-block state in `scratch.pair_cache`.
    ///
    /// The Monte Carlo engine calls this once per fault arrival, *before*
    /// the per-event [`recoverable_with`](Self::recoverable_with) calls for
    /// that population. The default is a no-op: policies without an
    /// incremental path simply keep recomputing, and `recoverable_with`
    /// implementations must treat a non-matching cache as "recompute"
    /// (the cache is advisory, never load-bearing for correctness).
    fn observe_fault(&self, faults: &[Fault], scratch: &mut PolicyScratch) {
        let _ = (faults, scratch);
    }

    /// Notifies the policy that the block under evaluation changed, so any
    /// per-block incremental state in `scratch` is stale.
    ///
    /// Called by the engine before each block's event loop. Because
    /// [`PairCache::begin`] self-heals on owner/prefix mismatch this is an
    /// optimisation hint (drop state eagerly) rather than a correctness
    /// requirement; the default is a no-op.
    fn forget_block(&self, scratch: &mut PolicyScratch) {
        let _ = scratch;
    }

    /// Human-readable account of how the scheme handles (or fails) the
    /// given fault population and W/R split — e.g. which slope Aegis
    /// settles on, or how many correction pointers SAFER-style schemes
    /// spend. Used by block-death forensics to annotate event traces.
    ///
    /// The default returns `None` (no scheme-specific narration); an
    /// implementation must be a pure function of its arguments so forensic
    /// replays stay deterministic, and must agree with
    /// [`recoverable`](Self::recoverable) about the verdict it describes.
    fn explain(&self, faults: &[Fault], wrong: &[bool]) -> Option<String> {
        let _ = (faults, wrong);
        None
    }

    /// Whether the fault population is recoverable for *every* data word
    /// (the strict, data-independent criterion).
    ///
    /// The default implementation enumerates all `2^f` splits for up to
    /// [`EXHAUSTIVE_SPLIT_LIMIT`] faults and falls back to testing
    /// [`SAMPLED_GUARANTEE_SPLITS`] pseudo-random splits beyond that (a
    /// documented approximation; schemes with a closed-form guarantee —
    /// ECP, base Aegis, SAFER — override this with an exact test).
    fn guaranteed(&self, faults: &[Fault]) -> bool {
        let f = faults.len();
        if f <= EXHAUSTIVE_SPLIT_LIMIT {
            let mut wrong = vec![false; f];
            (0u64..(1 << f)).all(|pattern| {
                for (i, w) in wrong.iter_mut().enumerate() {
                    *w = (pattern >> i) & 1 == 1;
                }
                self.recoverable(faults, &wrong)
            })
        } else {
            let mut rng = SmallRng::seed_from_u64(guarantee_sample_seed(faults));
            // One reused buffer for all sampled splits; `sample_split_into`
            // consumes exactly the entropy the allocating form did, so the
            // verdict stream is unchanged.
            let mut wrong = Vec::with_capacity(f);
            (0..SAMPLED_GUARANTEE_SPLITS).all(|_| {
                sample_split_into(&mut rng, f, &mut wrong);
                self.recoverable(faults, &wrong)
            })
        }
    }

    /// [`guaranteed`](Self::guaranteed) with caller-provided working
    /// memory.
    ///
    /// The Monte Carlo engine always calls this form. The default
    /// delegates to [`guaranteed`](Self::guaranteed), so overriding it is
    /// purely an allocation-free refinement: the two forms must return
    /// identical verdicts on every fault population, and `scratch` may
    /// only hold working buffers, never decision state that outlives the
    /// call. Policies whose `guaranteed` is the trait default override
    /// this with [`guaranteed_splits_with`], which replays the same split
    /// stream out of the arena.
    fn guaranteed_with(&self, faults: &[Fault], scratch: &mut PolicyScratch) -> bool {
        let _ = scratch;
        self.guaranteed(faults)
    }
}

/// Seed for the sampled branch of the default
/// [`RecoveryPolicy::guaranteed`]: a deterministic hash of the fault set,
/// so repeated queries agree. The guarantee criterion treats a partially
/// stuck cell as its fully stuck worst case, but the kind still feeds the
/// seed (only when non-default, so all-Full populations keep their
/// historical hashes).
fn guarantee_sample_seed(faults: &[Fault]) -> u64 {
    faults.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, fa| {
        let mut x = (fa.offset as u64) ^ ((fa.stuck as u64) << 32);
        if let Stuckness::Partial { weak_success_q8 } = fa.kind {
            x ^= (u64::from(weak_success_q8) | 0x100) << 33;
        }
        (h ^ x).wrapping_mul(0x1000_0000_01b3)
    })
}

/// The default [`RecoveryPolicy::guaranteed`] enumeration discipline with
/// caller-provided working memory: the same split stream (exhaustive up to
/// [`EXHAUSTIVE_SPLIT_LIMIT`] faults, then [`SAMPLED_GUARANTEE_SPLITS`]
/// deterministic samples from the same seed), but the split buffer lives
/// in the arena and each split is decided through
/// [`recoverable_with`](RecoveryPolicy::recoverable_with) — contractually
/// identical to `recoverable`, so the verdict is unchanged while the
/// policy's incremental pair state gets to serve every enumerated split.
pub fn guaranteed_splits_with<P: RecoveryPolicy + ?Sized>(
    policy: &P,
    faults: &[Fault],
    scratch: &mut PolicyScratch,
) -> bool {
    let f = faults.len();
    // Detach the driver-owned split buffer so the policy can borrow the
    // arena's own fields during each decision.
    let mut wrong = std::mem::take(&mut scratch.split);
    let verdict = if f <= EXHAUSTIVE_SPLIT_LIMIT {
        wrong.clear();
        wrong.resize(f, false);
        (0u64..(1 << f)).all(|pattern| {
            for (i, w) in wrong.iter_mut().enumerate() {
                *w = (pattern >> i) & 1 == 1;
            }
            policy.recoverable_with(faults, &wrong, scratch)
        })
    } else {
        let mut rng = SmallRng::seed_from_u64(guarantee_sample_seed(faults));
        (0..SAMPLED_GUARANTEE_SPLITS).all(|_| {
            sample_split_into(&mut rng, f, &mut wrong);
            policy.recoverable_with(faults, &wrong, scratch)
        })
    };
    scratch.split = wrong;
    verdict
}

/// Largest fault count for which the default [`RecoveryPolicy::guaranteed`]
/// enumerates every split exactly.
pub const EXHAUSTIVE_SPLIT_LIMIT: usize = 14;

/// Number of sampled splits used by the default
/// [`RecoveryPolicy::guaranteed`] beyond the exhaustive limit.
pub const SAMPLED_GUARANTEE_SPLITS: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy policy that tolerates at most `cap` stuck-at-Wrong faults.
    struct AtMostWrong {
        cap: usize,
    }

    impl RecoveryPolicy for AtMostWrong {
        fn name(&self) -> String {
            format!("at-most-{}-wrong", self.cap)
        }
        fn overhead_bits(&self) -> usize {
            0
        }
        fn block_bits(&self) -> usize {
            512
        }
        fn recoverable(&self, _faults: &[Fault], wrong: &[bool]) -> bool {
            wrong.iter().filter(|&&w| w).count() <= self.cap
        }
    }

    fn faults(n: usize) -> Vec<Fault> {
        (0..n).map(|i| Fault::new(i, false)).collect()
    }

    #[test]
    fn default_guaranteed_enumerates_small_sets() {
        let p = AtMostWrong { cap: 2 };
        // 2 faults: worst split has 2 wrong => fine.
        assert!(p.guaranteed(&faults(2)));
        // 3 faults: the all-wrong split exceeds the cap.
        assert!(!p.guaranteed(&faults(3)));
    }

    #[test]
    fn default_guaranteed_sampling_catches_common_failures() {
        // 20 faults with cap 5: a random split has ~10 wrong, far above the
        // cap, so sampling must detect the failure.
        let p = AtMostWrong { cap: 5 };
        assert!(!p.guaranteed(&faults(20)));
    }

    #[test]
    fn sampled_guarantee_is_deterministic() {
        let p = AtMostWrong { cap: 9 };
        let fs = faults(18);
        assert_eq!(p.guaranteed(&fs), p.guaranteed(&fs));
    }

    #[test]
    fn policy_is_object_safe() {
        fn _takes(_: &dyn RecoveryPolicy) {}
    }

    #[test]
    fn recoverable_with_defaults_to_recoverable() {
        let p = AtMostWrong { cap: 1 };
        let fs = faults(3);
        let mut scratch = PolicyScratch::new();
        for pattern in 0u8..8 {
            let wrong: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(
                p.recoverable(&fs, &wrong),
                p.recoverable_with(&fs, &wrong, &mut scratch)
            );
        }
    }

    #[test]
    fn scratch_buffers_reset_between_uses() {
        let mut scratch = PolicyScratch::new();
        scratch.flags(4)[2] = true;
        assert_eq!(scratch.flags(4), &vec![false; 4]);
        scratch.bytes(3)[0] = 7;
        assert_eq!(scratch.bytes(5), &vec![0u8; 5]);
    }

    #[test]
    fn observe_and_forget_default_to_noops() {
        let p = AtMostWrong { cap: 1 };
        let mut scratch = PolicyScratch::new();
        p.observe_fault(&faults(2), &mut scratch);
        p.forget_block(&mut scratch);
        assert!(scratch.pair_cache.covered().is_empty());
    }

    #[test]
    fn pair_cache_begin_absorbs_only_the_new_suffix() {
        let mut cache = PairCache::default();
        let key = cache_key(&[1, 9, 61]);
        let fs = faults(3);

        assert_eq!(cache.begin(key, &fs[..1]), 0);
        cache.pairs.push(CachedPair { a: 0, b: 0, tag: 7 });
        cache.commit(fs[0]);
        assert!(cache.matches(key, &fs[..1]));

        // Growing the population keeps the cached prefix.
        assert_eq!(cache.begin(key, &fs), 1);
        cache.commit(fs[1]);
        cache.commit(fs[2]);
        assert!(cache.matches(key, &fs));
        assert_eq!(cache.pairs.len(), 1);
    }

    #[test]
    fn pair_cache_resets_on_owner_or_prefix_mismatch() {
        let mut cache = PairCache::default();
        let key_a = cache_key(&[1, 9, 61]);
        let key_b = cache_key(&[2, 9, 61]);
        let fs = faults(2);

        cache.begin(key_a, &fs);
        cache.commit(fs[0]);
        cache.commit(fs[1]);
        cache.pairs.push(CachedPair { a: 0, b: 1, tag: 3 });
        cache.counts.push(1);
        cache.clean = 4;

        // Different owner: full reset.
        assert_eq!(cache.begin(key_b, &fs), 0);
        assert!(cache.pairs.is_empty());
        assert!(cache.counts.is_empty());
        assert_eq!(cache.clean, 0);
        assert!(!cache.matches(key_a, &fs));

        // Same owner but a different block's faults (not a prefix): reset.
        cache.commit(fs[0]);
        cache.commit(fs[1]);
        let other = vec![Fault::new(5, true)];
        assert_eq!(cache.begin(key_b, &other), 0);
        assert!(cache.covered().is_empty());
    }

    #[test]
    fn cache_keys_separate_policy_configurations() {
        let a = cache_key(&[1, 9, 61, 512]);
        let b = cache_key(&[2, 9, 61, 512]);
        let c = cache_key(&[1, 17, 31, 512]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn pair_cache_snapshot_round_trips() {
        let mut cache = PairCache::default();
        let key = cache_key(&[1, 9, 61]);
        let fs = faults(3);
        cache.begin(key, &fs);
        for &f in &fs {
            cache.commit(f);
        }
        cache.pairs.push(CachedPair { a: 0, b: 2, tag: 5 });
        cache
            .masks
            .push(0xdead_beef_dead_beef_dead_beef_dead_beefu128);
        cache.counts = vec![0, 1, 0];
        cache.clean = 2;
        cache.all_mask = 0xffu128 << 96;
        cache.positions = vec![3, 1, 4];
        cache.groups = vec![0, 1, 1];
        cache.coords = vec![(0, 7), (1, 3), (2, 9)];

        let snap = cache.snapshot();
        let mut restored = PairCache::default();
        restored.begin(cache_key(&[9, 9, 9]), &fs[..1]);
        restored.restore(&snap);

        // The restored cache is indistinguishable from the original: same
        // ownership guard, same covered prefix, same derived state, and a
        // re-snapshot is equal to the one it came from.
        assert!(restored.matches(key, &fs));
        assert_eq!(restored.begin(key, &fs), fs.len());
        assert_eq!(restored.snapshot(), snap);

        // An empty snapshot restores to the default (self-healing) state.
        restored.restore(&PairCacheSnapshot::default());
        assert_eq!(restored.begin(key, &fs), 0);
        assert!(restored.pairs.is_empty());
    }
}
