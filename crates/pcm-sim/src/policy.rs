//! The analytic interface between recovery schemes and the Monte Carlo
//! engine.
//!
//! Simulating ~10^11 individual writes is pointless: the only writes that
//! can change a block's fate are the ones that reveal a *new* fault. A
//! [`RecoveryPolicy`] answers, for a given fault population and a given
//! W/R split (which faults are stuck-at-Wrong for the data being written),
//! whether the scheme's write algorithm succeeds. Each scheme crate provides
//! a policy that is property-tested against its functional
//! [`StuckAtCodec`](crate::codec::StuckAtCodec) implementation, so the fast
//! path provably matches the slow one.

use crate::fault::{sample_split, Fault};
use sim_rng::SeedableRng;
use sim_rng::SmallRng;

/// Reusable working memory for [`RecoveryPolicy::recoverable_with`].
///
/// The Monte Carlo engine creates one scratch arena per worker and hands it
/// to every policy decision, so steady-state evaluation allocates nothing:
/// a policy's first call sizes the buffers and every later call reuses
/// them. The fields are deliberately generic (`flags`, `bytes`, `counts`)
/// rather than scheme-specific so one arena serves every policy in a mixed
/// scheme sweep.
#[derive(Debug, Default)]
pub struct PolicyScratch {
    /// Boolean flags, e.g. per-slope "bad" marks.
    pub flags: Vec<bool>,
    /// Byte-wide tallies, e.g. per-group W/R occupancy.
    pub bytes: Vec<u8>,
    /// Word-wide tallies for policies that count rather than flag.
    pub counts: Vec<u32>,
    /// W/R split buffer owned by the Monte Carlo driver.
    pub(crate) split: Vec<bool>,
    /// Fault-population buffer owned by the Monte Carlo driver.
    pub(crate) faults: Vec<Fault>,
}

impl PolicyScratch {
    /// Creates an empty arena; buffers grow on first use and are then
    /// reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears `flags` to `len` `false` entries and returns it.
    pub fn flags(&mut self, len: usize) -> &mut Vec<bool> {
        self.flags.clear();
        self.flags.resize(len, false);
        &mut self.flags
    }

    /// Clears `bytes` to `len` zero entries and returns it.
    pub fn bytes(&mut self, len: usize) -> &mut Vec<u8> {
        self.bytes.clear();
        self.bytes.resize(len, 0);
        &mut self.bytes
    }
}

/// Fast recoverability predicate for one scheme configuration.
///
/// Implementations must be immutable/stateless: feasibility may depend only
/// on the fault population and the split, never on write history. (This
/// holds for every scheme in the paper — e.g. Aegis's slope counter can
/// reach any slope by repeated increments, so history never forecloses a
/// configuration.)
pub trait RecoveryPolicy: Sync {
    /// Scheme name as used in the paper's figures (e.g. `"Aegis 17x31"`).
    fn name(&self) -> String;

    /// Metadata bits per protected block (Table 1 cost).
    fn overhead_bits(&self) -> usize;

    /// Width of the protected data block in bits.
    fn block_bits(&self) -> usize;

    /// Whether a block holding `faults` can absorb a write whose W/R split
    /// is `wrong` (`wrong[i]` ⇔ `faults[i]` is stuck-at-Wrong for the data).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `faults.len() != wrong.len()`.
    fn recoverable(&self, faults: &[Fault], wrong: &[bool]) -> bool;

    /// [`recoverable`](Self::recoverable) with caller-provided working
    /// memory.
    ///
    /// The Monte Carlo engine always calls this form, passing a per-worker
    /// [`PolicyScratch`]; policies whose decision needs temporary buffers
    /// override it to borrow them from the arena instead of allocating.
    /// The default ignores the arena and delegates, so allocation-free
    /// operation is an opt-in refinement — the two forms must decide
    /// identically.
    ///
    /// # Panics
    ///
    /// As [`recoverable`](Self::recoverable).
    fn recoverable_with(
        &self,
        faults: &[Fault],
        wrong: &[bool],
        scratch: &mut PolicyScratch,
    ) -> bool {
        let _ = scratch;
        self.recoverable(faults, wrong)
    }

    /// Whether the fault population is recoverable for *every* data word
    /// (the strict, data-independent criterion).
    ///
    /// The default implementation enumerates all `2^f` splits for up to
    /// [`EXHAUSTIVE_SPLIT_LIMIT`] faults and falls back to testing
    /// [`SAMPLED_GUARANTEE_SPLITS`] pseudo-random splits beyond that (a
    /// documented approximation; schemes with a closed-form guarantee —
    /// ECP, base Aegis, SAFER — override this with an exact test).
    fn guaranteed(&self, faults: &[Fault]) -> bool {
        let f = faults.len();
        if f <= EXHAUSTIVE_SPLIT_LIMIT {
            let mut wrong = vec![false; f];
            (0u64..(1 << f)).all(|pattern| {
                for (i, w) in wrong.iter_mut().enumerate() {
                    *w = (pattern >> i) & 1 == 1;
                }
                self.recoverable(faults, &wrong)
            })
        } else {
            // Deterministic sampled approximation, seeded by the fault set
            // so repeated queries agree.
            let seed = faults.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, fa| {
                (h ^ (fa.offset as u64) ^ ((fa.stuck as u64) << 32)).wrapping_mul(0x1000_0000_01b3)
            });
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..SAMPLED_GUARANTEE_SPLITS).all(|_| {
                let wrong = sample_split(&mut rng, f);
                self.recoverable(faults, &wrong)
            })
        }
    }
}

/// Largest fault count for which the default [`RecoveryPolicy::guaranteed`]
/// enumerates every split exactly.
pub const EXHAUSTIVE_SPLIT_LIMIT: usize = 14;

/// Number of sampled splits used by the default
/// [`RecoveryPolicy::guaranteed`] beyond the exhaustive limit.
pub const SAMPLED_GUARANTEE_SPLITS: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy policy that tolerates at most `cap` stuck-at-Wrong faults.
    struct AtMostWrong {
        cap: usize,
    }

    impl RecoveryPolicy for AtMostWrong {
        fn name(&self) -> String {
            format!("at-most-{}-wrong", self.cap)
        }
        fn overhead_bits(&self) -> usize {
            0
        }
        fn block_bits(&self) -> usize {
            512
        }
        fn recoverable(&self, _faults: &[Fault], wrong: &[bool]) -> bool {
            wrong.iter().filter(|&&w| w).count() <= self.cap
        }
    }

    fn faults(n: usize) -> Vec<Fault> {
        (0..n).map(|i| Fault::new(i, false)).collect()
    }

    #[test]
    fn default_guaranteed_enumerates_small_sets() {
        let p = AtMostWrong { cap: 2 };
        // 2 faults: worst split has 2 wrong => fine.
        assert!(p.guaranteed(&faults(2)));
        // 3 faults: the all-wrong split exceeds the cap.
        assert!(!p.guaranteed(&faults(3)));
    }

    #[test]
    fn default_guaranteed_sampling_catches_common_failures() {
        // 20 faults with cap 5: a random split has ~10 wrong, far above the
        // cap, so sampling must detect the failure.
        let p = AtMostWrong { cap: 5 };
        assert!(!p.guaranteed(&faults(20)));
    }

    #[test]
    fn sampled_guarantee_is_deterministic() {
        let p = AtMostWrong { cap: 9 };
        let fs = faults(18);
        assert_eq!(p.guaranteed(&fs), p.guaranteed(&fs));
    }

    #[test]
    fn policy_is_object_safe() {
        fn _takes(_: &dyn RecoveryPolicy) {}
    }

    #[test]
    fn recoverable_with_defaults_to_recoverable() {
        let p = AtMostWrong { cap: 1 };
        let fs = faults(3);
        let mut scratch = PolicyScratch::new();
        for pattern in 0u8..8 {
            let wrong: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(
                p.recoverable(&fs, &wrong),
                p.recoverable_with(&fs, &wrong, &mut scratch)
            );
        }
    }

    #[test]
    fn scratch_buffers_reset_between_uses() {
        let mut scratch = PolicyScratch::new();
        scratch.flags(4)[2] = true;
        assert_eq!(scratch.flags(4), &vec![false; 4]);
        scratch.bytes(3)[0] = 7;
        assert_eq!(scratch.bytes(5), &vec![0u8; 5]);
    }
}
