//! Fault timelines: when each cell of a block/page fails, in write-count
//! time.
//!
//! A *timeline* is the complete randomness of one simulated page: every
//! cell's fault-arrival time (derived from its sampled lifetime and the
//! differential-write wear model), the value it sticks at, and one RNG seed
//! per fault event from which the per-write W/R splits are drawn. Policies
//! are evaluated *against* timelines, so every scheme sees exactly the same
//! random world (common random numbers).

use crate::{Fault, LifetimeModel, WearModel};
use sim_rng::SmallRng;
use sim_rng::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One fault arrival within a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Arrival time, in block writes since the beginning of the block's
    /// life.
    pub time: f64,
    /// The fault that appears at that time.
    pub fault: Fault,
    /// Seed for the W/R split(s) of the write that reveals this fault.
    pub split_seed: u64,
}

/// Fault arrivals of one data block, ascending in time, truncated to the
/// first `max_events` (a block is long dead before most cells fail).
#[derive(Debug, Clone, Default)]
pub struct BlockTimeline {
    /// Events in ascending time order.
    pub events: Vec<FaultEvent>,
}

impl BlockTimeline {
    /// Time of the first cell failure, or `None` for an empty timeline.
    #[must_use]
    pub fn first_fault_time(&self) -> Option<f64> {
        self.events.first().map(|e| e.time)
    }
}

/// Fault arrivals of one memory page (an OS page / "memory block" in the
/// paper): one [`BlockTimeline`] per data block.
#[derive(Debug, Clone, Default)]
pub struct PageTimeline {
    /// Per-data-block timelines.
    pub blocks: Vec<BlockTimeline>,
}

impl PageTimeline {
    /// Time of the very first cell failure anywhere in the page — the death
    /// time of an *unprotected* page.
    #[must_use]
    pub fn first_cell_death(&self) -> f64 {
        self.blocks
            .iter()
            .filter_map(BlockTimeline::first_fault_time)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total fault events recorded across all blocks.
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.blocks.iter().map(|b| b.events.len()).sum()
    }
}

/// Sampler for block and page timelines.
///
/// # Examples
///
/// ```
/// use pcm_sim::timeline::TimelineSampler;
/// use sim_rng::{SeedableRng, SmallRng};
///
/// let sampler = TimelineSampler::paper_default(512);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let tl = sampler.sample_block(&mut rng);
/// assert!(!tl.events.is_empty());
/// // Events are sorted in time.
/// assert!(tl.events.windows(2).all(|w| w[0].time <= w[1].time));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TimelineSampler {
    block_bits: usize,
    lifetime: LifetimeModel,
    wear: WearModel,
    max_events: usize,
    /// Probability that a dying cell sticks at `1`. Under random write
    /// data this is ½ (the default); real devices can be asymmetric (SET
    /// vs RESET failure modes), which the bias ablation explores.
    stuck_one_probability: f64,
    /// Fraction of dying cells that are only *partially* stuck
    /// ([`crate::Stuckness::Partial`]): they still reliably store
    /// their stuck value and accept the opposite value with probability
    /// `weak_success_q8 / 256` per write. `0.0` (the default) reproduces
    /// the classic all-fully-stuck model and consumes identical entropy,
    /// so legacy runs stay byte-identical.
    partial_fraction: f64,
    /// Weak-write success probability assigned to partially stuck cells,
    /// in units of 1/256.
    weak_success_q8: u8,
}

/// Default weak-write success probability for partially stuck cells
/// (½, i.e. the weak pulse takes every other write on average).
pub const DEFAULT_WEAK_SUCCESS_Q8: u8 = 128;

/// Default cap on tracked fault events per block. No scheme in the paper
/// survives anywhere near this many faults in one 512-bit block (the best
/// reach the low thirties), so the truncation is invisible; the Monte Carlo
/// engine still counts any block that outlives its timeline as `capped` so
/// a mis-set cap is loud, not silent.
pub const DEFAULT_MAX_EVENTS_PER_BLOCK: usize = 96;

impl TimelineSampler {
    /// Creates a sampler with explicit models.
    ///
    /// # Panics
    ///
    /// Panics if `block_bits` or `max_events` is zero.
    #[must_use]
    pub fn new(
        block_bits: usize,
        lifetime: LifetimeModel,
        wear: WearModel,
        max_events: usize,
    ) -> Self {
        assert!(block_bits > 0, "block must have at least one bit");
        assert!(max_events > 0, "must track at least one event");
        Self {
            block_bits,
            lifetime,
            wear,
            max_events: max_events.min(block_bits),
            stuck_one_probability: 0.5,
            partial_fraction: 0.0,
            weak_success_q8: DEFAULT_WEAK_SUCCESS_Q8,
        }
    }

    /// Sets the probability that a dying cell sticks at `1` (default ½).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn with_stuck_bias(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.stuck_one_probability = p;
        self
    }

    /// Makes a fraction of dying cells only partially stuck: each new fault
    /// is [`Stuckness::Partial`](crate::Stuckness::Partial) with
    /// probability `fraction`, carrying weak-write success probability
    /// `weak_success_q8 / 256`.
    ///
    /// `fraction = 0.0` is *exactly* the legacy sampler: the kind draw is
    /// skipped entirely, so the RNG stream (and hence every downstream
    /// timeline, split and result) is byte-identical to a sampler built
    /// without this call.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction ≤ 1`.
    #[must_use]
    pub fn with_partial_mix(mut self, fraction: f64, weak_success_q8: u8) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "probability out of range");
        self.partial_fraction = fraction;
        self.weak_success_q8 = weak_success_q8;
        self
    }

    /// Fraction of dying cells sampled as partially stuck.
    #[must_use]
    pub fn partial_fraction(&self) -> f64 {
        self.partial_fraction
    }

    /// The paper's §3.1 configuration for the given block width.
    #[must_use]
    pub fn paper_default(block_bits: usize) -> Self {
        Self::new(
            block_bits,
            LifetimeModel::paper_default(),
            WearModel::paper_default(),
            DEFAULT_MAX_EVENTS_PER_BLOCK,
        )
    }

    /// Block width this sampler generates timelines for.
    #[must_use]
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// Maximum events kept per block timeline.
    #[must_use]
    pub fn max_events(&self) -> usize {
        self.max_events
    }

    /// Samples the fault timeline of one data block.
    pub fn sample_block<R: Rng + ?Sized>(&self, rng: &mut R) -> BlockTimeline {
        let mut cells: Vec<(f64, usize)> = (0..self.block_bits)
            .map(|offset| (self.wear.fault_time(self.lifetime.sample(rng)), offset))
            .collect();
        // Only the earliest `max_events` failures can matter.
        cells.sort_by(|a, b| a.0.total_cmp(&b.0));
        cells.truncate(self.max_events);
        let events = cells
            .into_iter()
            .map(|(time, offset)| {
                // A cell sticks at whatever it held when it died; under
                // random write data that is a fair coin (bias configurable
                // via `with_stuck_bias`).
                let stuck = rng.random_bool(self.stuck_one_probability);
                // The kind draw is gated on the mix being enabled so a
                // zero-fraction sampler consumes exactly the legacy
                // entropy (stuck value, then split seed).
                let fault = if self.partial_fraction > 0.0 && rng.random_bool(self.partial_fraction)
                {
                    Fault::partial(offset, stuck, self.weak_success_q8)
                } else {
                    Fault::new(offset, stuck)
                };
                FaultEvent {
                    time,
                    fault,
                    split_seed: rng.random(),
                }
            })
            .collect();
        BlockTimeline { events }
    }

    /// Samples the fault timeline of a page of `blocks_per_page` data
    /// blocks.
    pub fn sample_page<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        blocks_per_page: usize,
    ) -> PageTimeline {
        PageTimeline {
            blocks: (0..blocks_per_page)
                .map(|_| self.sample_block(rng))
                .collect(),
        }
    }

    /// Deterministic per-page RNG: every policy evaluated on page `index`
    /// of a run seeded with `master_seed` sees the identical timeline.
    ///
    /// Each page is its own [`sim_rng::substream_seed`] substream of the
    /// master seed, which is what makes page-range sharding and
    /// checkpoint/resume byte-exact: any process that knows `(master_seed,
    /// index)` reconstructs the identical timeline, regardless of which
    /// pages ran before it or in which process they ran.
    #[must_use]
    pub fn page_rng(master_seed: u64, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(sim_rng::substream_seed(master_seed, index))
    }
}

/// Default cap on distinct pages a [`TimelineCache`] retains.
pub const DEFAULT_TIMELINE_CACHE_PAGES: usize = 16_384;

/// A shared, thread-safe cache of sampled [`PageTimeline`]s.
///
/// Timelines are the engine's common random numbers: every scheme evaluated
/// under one `(master_seed, page, blocks_per_page, sampler)` tuple sees the
/// *identical* timeline by construction, yet historically each scheme
/// re-sampled it from the per-page RNG. Sampling dominates chip-sweep wall
/// clock (it is ~86% of `fig5 --full`), so a sweep over S schemes pays the
/// cost S times for bit-identical data. The cache samples each page once
/// and hands out `Arc` clones to every subsequent run.
///
/// # Determinism
///
/// A cached timeline is a pure function of its key: on a miss the cache
/// derives the same [`TimelineSampler::page_rng`] stream the uncached path
/// uses, so hit and miss return bit-identical events and the per-page RNG
/// is never observable downstream (per-event splits re-seed from
/// [`FaultEvent::split_seed`]). Two workers racing on the same missing key
/// sample the same value; the first insert wins and the loser's copy is
/// dropped. Results are therefore byte-identical with the cache on or off,
/// across thread counts and across processes.
///
/// The capacity is a page-count cap, not an eviction policy: once full, new
/// keys are sampled and returned *uncached* (correct, just not shared).
/// `SIM_TIMELINE_CACHE_PAGES` overrides the default cap at construction.
pub struct TimelineCache {
    map: Mutex<HashMap<CacheKey, Arc<PageTimeline>>>,
    max_pages: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Cache key: the full provenance of one sampled page. The sampler is
/// fingerprinted by its `Debug` rendering, which spells out every model
/// parameter (including exact float values), so samplers that could ever
/// produce different timelines never share an entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    seed: u64,
    page: u64,
    blocks_per_page: usize,
    sampler: String,
}

impl Default for TimelineCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TimelineCache {
    /// An empty cache with the default capacity, overridable via the
    /// `SIM_TIMELINE_CACHE_PAGES` environment variable.
    #[must_use]
    pub fn new() -> Self {
        let max_pages = std::env::var("SIM_TIMELINE_CACHE_PAGES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_TIMELINE_CACHE_PAGES);
        Self::with_capacity(max_pages)
    }

    /// An empty cache retaining at most `max_pages` distinct pages
    /// (`0` disables retention entirely — every call samples).
    #[must_use]
    pub fn with_capacity(max_pages: usize) -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            max_pages,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the timeline of `(master_seed, page)` for `sampler`,
    /// sampling and (capacity permitting) retaining it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking thread.
    pub fn get_or_sample(
        &self,
        sampler: &TimelineSampler,
        master_seed: u64,
        page: u64,
        blocks_per_page: usize,
    ) -> Arc<PageTimeline> {
        let key = CacheKey {
            seed: master_seed,
            page,
            blocks_per_page,
            sampler: format!("{sampler:?}"),
        };
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Sample outside the lock: pages are independent substreams, so
        // concurrent misses on different keys sample in parallel.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut rng = TimelineSampler::page_rng(master_seed, page);
        let fresh = Arc::new(sampler.sample_page(&mut rng, blocks_per_page));
        let mut map = self.map.lock().unwrap();
        if let Some(raced) = map.get(&key) {
            // Another worker sampled the identical timeline first; keep the
            // shared copy so every consumer aliases one allocation.
            return Arc::clone(raced);
        }
        if map.len() < self.max_pages {
            map.insert(key, Arc::clone(&fresh));
        }
        fresh
    }

    /// Distinct pages currently retained.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache holds no pages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to sample so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_timeline_is_sorted_and_capped() {
        let sampler = TimelineSampler::new(
            512,
            LifetimeModel::new(1000.0, 0.25),
            WearModel::paper_default(),
            10,
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let tl = sampler.sample_block(&mut rng);
        assert_eq!(tl.events.len(), 10);
        assert!(tl.events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn offsets_are_unique_within_block() {
        let sampler = TimelineSampler::paper_default(256);
        let mut rng = SmallRng::seed_from_u64(4);
        let tl = sampler.sample_block(&mut rng);
        let mut offsets: Vec<usize> = tl.events.iter().map(|e| e.fault.offset).collect();
        offsets.sort_unstable();
        offsets.dedup();
        assert_eq!(offsets.len(), tl.events.len());
    }

    #[test]
    fn wear_model_doubles_fault_times() {
        let fast =
            TimelineSampler::new(64, LifetimeModel::new(1000.0, 0.0), WearModel::new(1.0), 1);
        let slow =
            TimelineSampler::new(64, LifetimeModel::new(1000.0, 0.0), WearModel::new(0.5), 1);
        let mut rng = SmallRng::seed_from_u64(5);
        let a = fast.sample_block(&mut rng).events[0].time;
        let b = slow.sample_block(&mut rng).events[0].time;
        assert_eq!(a, 1000.0);
        assert_eq!(b, 2000.0);
    }

    #[test]
    fn page_first_cell_death_is_min_over_blocks() {
        let sampler = TimelineSampler::paper_default(128);
        let mut rng = SmallRng::seed_from_u64(6);
        let page = sampler.sample_page(&mut rng, 8);
        let manual = page
            .blocks
            .iter()
            .map(|b| b.events[0].time)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(page.first_cell_death(), manual);
        assert_eq!(page.total_events(), 8 * sampler.max_events());
    }

    #[test]
    fn page_rng_is_deterministic_per_index() {
        use sim_rng::Rng;
        let mut a = TimelineSampler::page_rng(7, 3);
        let mut b = TimelineSampler::page_rng(7, 3);
        let mut c = TimelineSampler::page_rng(7, 4);
        let (x, y, z): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_block_bits_panics() {
        let _ = TimelineSampler::new(
            0,
            LifetimeModel::paper_default(),
            WearModel::paper_default(),
            1,
        );
    }

    #[test]
    fn stuck_bias_shifts_the_value_distribution() {
        let biased = TimelineSampler::paper_default(512).with_stuck_bias(0.9);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut ones = 0usize;
        let mut total = 0usize;
        for _ in 0..30 {
            for event in biased.sample_block(&mut rng).events {
                ones += usize::from(event.fault.stuck);
                total += 1;
            }
        }
        let fraction = ones as f64 / total as f64;
        assert!((0.85..0.95).contains(&fraction), "{fraction}");
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_bias_panics() {
        let _ = TimelineSampler::paper_default(64).with_stuck_bias(1.5);
    }

    #[test]
    fn zero_partial_mix_is_stream_identical_to_legacy() {
        let plain = TimelineSampler::paper_default(512);
        let mixed = plain.with_partial_mix(0.0, 200);
        let mut a = SmallRng::seed_from_u64(12);
        let mut b = SmallRng::seed_from_u64(12);
        for _ in 0..5 {
            let ta = plain.sample_block(&mut a);
            let tb = mixed.sample_block(&mut b);
            assert_eq!(ta.events, tb.events);
        }
        // RNG state also agrees afterwards.
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn partial_mix_fraction_shows_up_in_sampled_kinds() {
        let sampler = TimelineSampler::paper_default(512).with_partial_mix(0.4, 99);
        assert_eq!(sampler.partial_fraction(), 0.4);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut partial = 0usize;
        let mut total = 0usize;
        for _ in 0..30 {
            for event in sampler.sample_block(&mut rng).events {
                if let crate::fault::Stuckness::Partial { weak_success_q8 } = event.fault.kind {
                    assert_eq!(weak_success_q8, 99);
                    partial += 1;
                }
                total += 1;
            }
        }
        let fraction = partial as f64 / total as f64;
        assert!((0.33..0.47).contains(&fraction), "{fraction}");
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_partial_fraction_panics() {
        let _ = TimelineSampler::paper_default(64).with_partial_mix(-0.1, 128);
    }

    fn assert_pages_equal(a: &PageTimeline, b: &PageTimeline) {
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.events, y.events);
        }
    }

    #[test]
    fn cache_hits_are_bit_identical_to_uncached_sampling() {
        let sampler = TimelineSampler::paper_default(256);
        let cache = TimelineCache::with_capacity(8);
        for page in [0u64, 3, 7] {
            let cached = cache.get_or_sample(&sampler, 99, page, 4);
            let again = cache.get_or_sample(&sampler, 99, page, 4);
            let mut rng = TimelineSampler::page_rng(99, page);
            let direct = sampler.sample_page(&mut rng, 4);
            assert_pages_equal(&cached, &direct);
            // The second lookup aliases the first allocation.
            assert!(Arc::ptr_eq(&cached, &again));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn cache_keys_separate_samplers_seeds_and_shapes() {
        let a = TimelineSampler::paper_default(256);
        let b = TimelineSampler::paper_default(256).with_partial_mix(0.5, 77);
        let cache = TimelineCache::with_capacity(16);
        let base = cache.get_or_sample(&a, 1, 0, 4);
        // Different sampler parameters, seed, page and page shape all miss.
        assert!(!Arc::ptr_eq(&base, &cache.get_or_sample(&b, 1, 0, 4)));
        assert!(!Arc::ptr_eq(&base, &cache.get_or_sample(&a, 2, 0, 4)));
        assert!(!Arc::ptr_eq(&base, &cache.get_or_sample(&a, 1, 1, 4)));
        assert!(!Arc::ptr_eq(&base, &cache.get_or_sample(&a, 1, 0, 2)));
        assert_eq!(cache.misses(), 5);
        assert_eq!(cache.hits(), 0);
        // And the original key still hits.
        assert!(Arc::ptr_eq(&base, &cache.get_or_sample(&a, 1, 0, 4)));
    }

    #[test]
    fn full_cache_still_serves_correct_uncached_timelines() {
        let sampler = TimelineSampler::paper_default(128);
        let cache = TimelineCache::with_capacity(1);
        let first = cache.get_or_sample(&sampler, 5, 0, 2);
        let overflow = cache.get_or_sample(&sampler, 5, 1, 2);
        assert_eq!(cache.len(), 1, "capacity caps retention");
        let mut rng = TimelineSampler::page_rng(5, 1);
        assert_pages_equal(&overflow, &sampler.sample_page(&mut rng, 2));
        // The retained page keeps hitting; the overflow page keeps missing
        // but stays correct.
        assert!(Arc::ptr_eq(&first, &cache.get_or_sample(&sampler, 5, 0, 2)));
        let overflow_again = cache.get_or_sample(&sampler, 5, 1, 2);
        assert!(!Arc::ptr_eq(&overflow, &overflow_again));
        assert_pages_equal(&overflow, &overflow_again);
    }
}
