//! Synthetic write-address workloads for wear-leveling studies.
//!
//! The paper assumes away workload structure (perfect wear leveling); the
//! levelers in [`crate::wearlevel`] and [`crate::securerefresh`] earn that
//! assumption only if they flatten realistic access patterns. This module
//! provides the classic adversaries: uniform traffic (the baseline),
//! hotspots, Zipf-distributed popularity, and pure sequential streaming.

use sim_rng::Rng;

/// Address-stream shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// Uniformly random line per write.
    Uniform,
    /// A fraction of "hot" lines absorbs most writes.
    Hotspot {
        /// Fraction of the address space that is hot.
        hot_fraction: f64,
        /// Probability a write lands in the hot set.
        hot_probability: f64,
    },
    /// Zipf-distributed line popularity (rank 1 most popular).
    Zipf {
        /// Skew exponent (≈1.0 for classic web-like skew).
        alpha: f64,
    },
    /// Round-robin sequential sweep (streaming writes).
    Sequential,
}

/// Generates write-address streams over `lines` lines.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    kind: TraceKind,
    lines: usize,
    /// Zipf cumulative distribution (empty for other kinds).
    zipf_cdf: Vec<f64>,
}

impl TraceGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`, or on out-of-range hotspot/Zipf parameters.
    #[must_use]
    pub fn new(kind: TraceKind, lines: usize) -> Self {
        assert!(lines > 0, "need at least one line");
        let zipf_cdf = match kind {
            TraceKind::Zipf { alpha } => {
                assert!(alpha > 0.0, "Zipf exponent must be positive");
                let mut acc = 0.0;
                let mut cdf: Vec<f64> = (1..=lines)
                    .map(|rank| {
                        acc += 1.0 / (rank as f64).powf(alpha);
                        acc
                    })
                    .collect();
                let total = *cdf.last().expect("non-empty");
                for c in &mut cdf {
                    *c /= total;
                }
                cdf
            }
            TraceKind::Hotspot {
                hot_fraction,
                hot_probability,
            } => {
                assert!(
                    (0.0..=1.0).contains(&hot_fraction) && (0.0..=1.0).contains(&hot_probability),
                    "hotspot parameters out of [0, 1]"
                );
                Vec::new()
            }
            _ => Vec::new(),
        };
        Self {
            kind,
            lines,
            zipf_cdf,
        }
    }

    /// The shape being generated.
    #[must_use]
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// One write address (`step` is the global write index, used by the
    /// sequential shape).
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R, step: usize) -> usize {
        match self.kind {
            TraceKind::Uniform => rng.random_range(0..self.lines),
            TraceKind::Hotspot {
                hot_fraction,
                hot_probability,
            } => {
                let hot = ((self.lines as f64 * hot_fraction).ceil() as usize).clamp(1, self.lines);
                if rng.random_bool(hot_probability) {
                    rng.random_range(0..hot)
                } else {
                    rng.random_range(0..self.lines)
                }
            }
            TraceKind::Zipf { .. } => {
                let u: f64 = rng.random();
                self.zipf_cdf
                    .partition_point(|&c| c < u)
                    .min(self.lines - 1)
            }
            TraceKind::Sequential => step % self.lines,
        }
    }

    /// A full stream of `length` addresses.
    pub fn stream<R: Rng + ?Sized>(&self, rng: &mut R, length: usize) -> Vec<usize> {
        (0..length).map(|step| self.next(rng, step)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_rng::SeedableRng;
    use sim_rng::SmallRng;

    fn counts(kind: TraceKind, lines: usize, n: usize) -> Vec<usize> {
        let generator = TraceGenerator::new(kind, lines);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = vec![0usize; lines];
        for addr in generator.stream(&mut rng, n) {
            counts[addr] += 1;
        }
        counts
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let c = counts(TraceKind::Uniform, 16, 160_000);
        for &count in &c {
            assert!((8_000..12_000).contains(&count), "{count}");
        }
    }

    #[test]
    fn hotspot_concentrates_writes() {
        let c = counts(
            TraceKind::Hotspot {
                hot_fraction: 0.1,
                hot_probability: 0.9,
            },
            100,
            100_000,
        );
        let hot: usize = c[..10].iter().sum();
        assert!(hot > 85_000, "hot set got only {hot}");
    }

    #[test]
    fn zipf_rank_one_dominates_and_tail_decays() {
        let c = counts(TraceKind::Zipf { alpha: 1.0 }, 64, 200_000);
        assert!(c[0] > c[1], "rank 1 must beat rank 2");
        assert!(
            c[0] > 10 * c[63],
            "head/tail ratio too small: {} vs {}",
            c[0],
            c[63]
        );
        // Roughly harmonic: c[0]/c[9] ≈ 10 for alpha = 1.
        let ratio = c[0] as f64 / c[9] as f64;
        assert!((5.0..20.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn sequential_cycles() {
        let generator = TraceGenerator::new(TraceKind::Sequential, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        let stream = generator.stream(&mut rng, 8);
        assert_eq!(stream, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_lines_panics() {
        let _ = TraceGenerator::new(TraceKind::Uniform, 0);
    }
}
