//! Stuck-at faults and their per-write W/R classification.

use bitblock::BitBlock;
use sim_rng::Rng;

/// A permanent stuck-at fault: the cell at `offset` always reads `stuck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Bit offset of the failed cell within its data block.
    pub offset: usize,
    /// The value the cell is permanently stuck at.
    pub stuck: bool,
}

impl Fault {
    /// Convenience constructor.
    #[must_use]
    pub fn new(offset: usize, stuck: bool) -> Self {
        Self { offset, stuck }
    }

    /// Whether this fault is *stuck-at-Wrong* for `data`: the stuck value
    /// disagrees with the bit the write wants to store (paper §2.4).
    ///
    /// A W fault is revealed by the verification read after a plain write; an
    /// R ("stuck-at-Right") fault stores the desired bit for free.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside `data`.
    #[must_use]
    pub fn is_wrong_for(&self, data: &BitBlock) -> bool {
        data.get(self.offset) != self.stuck
    }
}

/// Classifies each fault as W (`true`) or R (`false`) for the given data
/// word, preserving order.
///
/// # Examples
///
/// ```
/// use bitblock::BitBlock;
/// use pcm_sim::{classify_split, Fault};
///
/// let data = BitBlock::from_indices(8, [3usize]);
/// let faults = [Fault::new(3, true), Fault::new(5, true)];
/// // Bit 3 wants 1 and is stuck at 1 (R); bit 5 wants 0 but is stuck at 1 (W).
/// assert_eq!(classify_split(&faults, &data), vec![false, true]);
/// ```
#[must_use]
pub fn classify_split(faults: &[Fault], data: &BitBlock) -> Vec<bool> {
    faults.iter().map(|f| f.is_wrong_for(data)).collect()
}

/// Samples the W/R split induced by a uniformly random data word: each fault
/// is W with probability ½, independently.
///
/// This is the Monte Carlo shortcut for "the write that revealed the fault
/// carries random data" — drawing one bit per fault is equivalent to drawing
/// the whole word, because only the bits at fault offsets matter.
#[must_use]
pub fn sample_split<R: Rng + ?Sized>(rng: &mut R, fault_count: usize) -> Vec<bool> {
    let mut out = Vec::new();
    sample_split_into(rng, fault_count, &mut out);
    out
}

/// [`sample_split`] into a caller-provided buffer, reusing its allocation.
/// Consumes exactly the same entropy, so the two forms are interchangeable
/// under a fixed seed.
pub fn sample_split_into<R: Rng + ?Sized>(rng: &mut R, fault_count: usize, out: &mut Vec<bool>) {
    out.clear();
    out.extend((0..fault_count).map(|_| rng.random::<bool>()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_rng::{SeedableRng, SmallRng};

    #[test]
    fn w_r_classification() {
        let data = BitBlock::from_indices(16, [1usize, 2]);
        // stuck at 0 where data wants 1 => W
        assert!(Fault::new(1, false).is_wrong_for(&data));
        // stuck at 1 where data wants 1 => R
        assert!(!Fault::new(2, true).is_wrong_for(&data));
        // stuck at 0 where data wants 0 => R
        assert!(!Fault::new(7, false).is_wrong_for(&data));
    }

    #[test]
    fn classify_matches_pointwise() {
        let data = BitBlock::from_indices(32, [0usize, 8, 9]);
        let faults = vec![
            Fault::new(0, false),
            Fault::new(8, true),
            Fault::new(20, true),
        ];
        assert_eq!(classify_split(&faults, &data), vec![true, false, true]);
    }

    #[test]
    fn sample_split_is_seed_deterministic_and_roughly_fair() {
        let a = sample_split(&mut SmallRng::seed_from_u64(5), 1000);
        let b = sample_split(&mut SmallRng::seed_from_u64(5), 1000);
        assert_eq!(a, b);
        let w = a.iter().filter(|&&x| x).count();
        assert!((350..=650).contains(&w), "grossly unfair split: {w}/1000");
    }

    #[test]
    fn classify_equals_split_of_real_data() {
        // classify_split over random data has the same distribution
        // sample_split models: spot-check the mechanical equivalence.
        let mut rng = SmallRng::seed_from_u64(11);
        let data = BitBlock::random(&mut rng, 64);
        let faults: Vec<Fault> = (0..64).step_by(7).map(|o| Fault::new(o, false)).collect();
        let split = classify_split(&faults, &data);
        for (f, w) in faults.iter().zip(&split) {
            assert_eq!(*w, data.get(f.offset) != f.stuck);
        }
    }
}
