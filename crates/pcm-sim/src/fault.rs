//! Stuck-at faults and their per-write W/R classification.

use bitblock::BitBlock;
use sim_rng::Rng;

/// How completely a failed cell has lost programmability.
///
/// The classic PCM failure mode is a *fully* stuck cell: it reads `stuck`
/// no matter what is written. The partially-stuck model (Wachter-Zeh &
/// Yaakobi, arXiv:1505.03281) refines this: the cell still reliably stores
/// its stuck value, but a write of the *opposite* value only succeeds some
/// of the time — the SET/RESET pulse that still works does so weakly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stuckness {
    /// The cell always reads its stuck value; writes of the opposite value
    /// never take.
    Full,
    /// The cell reliably stores its stuck value; a write of the opposite
    /// value succeeds with probability `weak_success_q8 / 256`.
    ///
    /// The probability is quantized to 1/256ths so `Fault` stays `Copy`,
    /// `Eq`, `Hash` and `Ord` (an `f64` field would forfeit all four).
    Partial {
        /// Weak-write success probability in units of 1/256
        /// (`128` ⇒ ½; `0` ⇒ behaves like [`Stuckness::Full`]).
        weak_success_q8: u8,
    },
}

/// A permanent stuck-at fault: the cell at `offset` always reads `stuck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Bit offset of the failed cell within its data block.
    pub offset: usize,
    /// The value the cell is permanently stuck at.
    pub stuck: bool,
    /// Whether the cell is fully or only partially stuck.
    pub kind: Stuckness,
}

impl Fault {
    /// Convenience constructor for a fully stuck cell.
    #[must_use]
    pub fn new(offset: usize, stuck: bool) -> Self {
        Self {
            offset,
            stuck,
            kind: Stuckness::Full,
        }
    }

    /// A partially stuck cell: reliably stores `stuck`, stores the opposite
    /// value with probability `weak_success_q8 / 256` per write.
    #[must_use]
    pub fn partial(offset: usize, stuck: bool, weak_success_q8: u8) -> Self {
        Self {
            offset,
            stuck,
            kind: Stuckness::Partial { weak_success_q8 },
        }
    }

    /// Whether the cell is only partially stuck.
    #[must_use]
    pub fn is_partial(&self) -> bool {
        matches!(self.kind, Stuckness::Partial { .. })
    }

    /// Whether this fault is *stuck-at-Wrong* for `data`: the stuck value
    /// disagrees with the bit the write wants to store (paper §2.4).
    ///
    /// A W fault is revealed by the verification read after a plain write; an
    /// R ("stuck-at-Right") fault stores the desired bit for free.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside `data`.
    #[must_use]
    pub fn is_wrong_for(&self, data: &BitBlock) -> bool {
        data.get(self.offset) != self.stuck
    }
}

/// Classifies each fault as W (`true`) or R (`false`) for the given data
/// word, preserving order.
///
/// # Examples
///
/// ```
/// use bitblock::BitBlock;
/// use pcm_sim::{classify_split, Fault};
///
/// let data = BitBlock::from_indices(8, [3usize]);
/// let faults = [Fault::new(3, true), Fault::new(5, true)];
/// // Bit 3 wants 1 and is stuck at 1 (R); bit 5 wants 0 but is stuck at 1 (W).
/// assert_eq!(classify_split(&faults, &data), vec![false, true]);
/// ```
#[must_use]
pub fn classify_split(faults: &[Fault], data: &BitBlock) -> Vec<bool> {
    faults.iter().map(|f| f.is_wrong_for(data)).collect()
}

/// Samples the W/R split induced by a uniformly random data word: each fault
/// is W with probability ½, independently.
///
/// This is the Monte Carlo shortcut for "the write that revealed the fault
/// carries random data" — drawing one bit per fault is equivalent to drawing
/// the whole word, because only the bits at fault offsets matter.
#[must_use]
pub fn sample_split<R: Rng + ?Sized>(rng: &mut R, fault_count: usize) -> Vec<bool> {
    let mut out = Vec::new();
    sample_split_into(rng, fault_count, &mut out);
    out
}

/// [`sample_split`] into a caller-provided buffer, reusing its allocation.
/// Consumes exactly the same entropy, so the two forms are interchangeable
/// under a fixed seed.
pub fn sample_split_into<R: Rng + ?Sized>(rng: &mut R, fault_count: usize, out: &mut Vec<bool>) {
    out.clear();
    out.extend((0..fault_count).map(|_| rng.random::<bool>()));
}

/// Samples the W/R split induced by a uniformly random data word while
/// honouring each fault's [`Stuckness`].
///
/// A fully stuck fault is W with probability ½ exactly as in
/// [`sample_split_into`], and consumes exactly one `bool` of entropy — a
/// population of only [`Stuckness::Full`] faults therefore reproduces
/// `sample_split_into`'s stream bit for bit. A partially stuck fault first
/// draws the same fair coin ("does the data disagree with the stuck
/// value?"); only on disagreement does it draw one extra `u8` for the weak
/// write, which succeeds when the draw lands below `weak_success_q8`. A
/// successful weak write stores the wanted value, so the fault is R for
/// this write.
///
/// Under a fixed seed the verdict is pointwise monotone in
/// `weak_success_q8`: raising it can only turn W entries into R, never the
/// reverse — the deterministic handle the theorem-invariant suite pins.
pub fn sample_split_for_into<R: Rng + ?Sized>(rng: &mut R, faults: &[Fault], out: &mut Vec<bool>) {
    out.clear();
    out.extend(faults.iter().map(|fault| {
        let disagrees = rng.random::<bool>();
        match fault.kind {
            Stuckness::Full => disagrees,
            Stuckness::Partial { weak_success_q8 } => {
                disagrees && rng.random::<u8>() >= weak_success_q8
            }
        }
    }));
}

/// [`sample_split_for_into`] into a fresh vector.
#[must_use]
pub fn sample_split_for<R: Rng + ?Sized>(rng: &mut R, faults: &[Fault]) -> Vec<bool> {
    let mut out = Vec::new();
    sample_split_for_into(rng, faults, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_rng::{SeedableRng, SmallRng};

    #[test]
    fn w_r_classification() {
        let data = BitBlock::from_indices(16, [1usize, 2]);
        // stuck at 0 where data wants 1 => W
        assert!(Fault::new(1, false).is_wrong_for(&data));
        // stuck at 1 where data wants 1 => R
        assert!(!Fault::new(2, true).is_wrong_for(&data));
        // stuck at 0 where data wants 0 => R
        assert!(!Fault::new(7, false).is_wrong_for(&data));
    }

    #[test]
    fn classify_matches_pointwise() {
        let data = BitBlock::from_indices(32, [0usize, 8, 9]);
        let faults = vec![
            Fault::new(0, false),
            Fault::new(8, true),
            Fault::new(20, true),
        ];
        assert_eq!(classify_split(&faults, &data), vec![true, false, true]);
    }

    #[test]
    fn sample_split_is_seed_deterministic_and_roughly_fair() {
        let a = sample_split(&mut SmallRng::seed_from_u64(5), 1000);
        let b = sample_split(&mut SmallRng::seed_from_u64(5), 1000);
        assert_eq!(a, b);
        let w = a.iter().filter(|&&x| x).count();
        assert!((350..=650).contains(&w), "grossly unfair split: {w}/1000");
    }

    #[test]
    fn full_faults_consume_identical_entropy_either_sampler() {
        let faults: Vec<Fault> = (0..40).map(|o| Fault::new(o, o % 2 == 0)).collect();
        let legacy = sample_split(&mut SmallRng::seed_from_u64(9), faults.len());
        let aware = sample_split_for(&mut SmallRng::seed_from_u64(9), &faults);
        assert_eq!(legacy, aware);
        // And the RNGs end in the same state: drawing more afterwards agrees.
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let _ = sample_split(&mut a, faults.len());
        let _ = sample_split_for(&mut b, &faults);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn partial_q8_extremes_bracket_full_behaviour() {
        // q8 = 0: the weak write never succeeds, so the fault behaves like a
        // fully stuck one (same verdicts, though more entropy is consumed).
        let always = vec![Fault::partial(0, false, 0); 200];
        let split = sample_split_for(&mut SmallRng::seed_from_u64(4), &always);
        let w = split.iter().filter(|&&x| x).count();
        assert!((60..=140).contains(&w), "q8=0 should be a fair coin: {w}");
        // q8 = 255: wrong only when the u8 draw is exactly 255 (~0.2%·½).
        let strong = vec![Fault::partial(0, false, 255); 400];
        let split = sample_split_for(&mut SmallRng::seed_from_u64(4), &strong);
        let w = split.iter().filter(|&&x| x).count();
        assert!(w <= 8, "q8=255 should almost never be W: {w}");
    }

    #[test]
    fn partial_verdicts_are_monotone_in_q8_under_a_fixed_seed() {
        let fault = |q8| -> Vec<Fault> { (0..64).map(|o| Fault::partial(o, false, q8)).collect() };
        let mut prev = sample_split_for(&mut SmallRng::seed_from_u64(21), &fault(0));
        for q8 in [32u8, 64, 128, 192, 255] {
            let next = sample_split_for(&mut SmallRng::seed_from_u64(21), &fault(q8));
            for (p, n) in prev.iter().zip(&next) {
                // Raising q8 can only clear W verdicts, never set them.
                assert!(*p || !*n);
            }
            prev = next;
        }
    }

    #[test]
    fn fault_constructors_record_kind() {
        assert_eq!(Fault::new(3, true).kind, Stuckness::Full);
        assert!(!Fault::new(3, true).is_partial());
        let p = Fault::partial(3, true, 77);
        assert_eq!(
            p.kind,
            Stuckness::Partial {
                weak_success_q8: 77
            }
        );
        assert!(p.is_partial());
        // Partial faults still classify W/R by their stuck value.
        let data = BitBlock::from_indices(8, [3usize]);
        assert!(!p.is_wrong_for(&data));
    }

    #[test]
    fn classify_equals_split_of_real_data() {
        // classify_split over random data has the same distribution
        // sample_split models: spot-check the mechanical equivalence.
        let mut rng = SmallRng::seed_from_u64(11);
        let data = BitBlock::random(&mut rng, 64);
        let faults: Vec<Fault> = (0..64).step_by(7).map(|o| Fault::new(o, false)).collect();
        let split = classify_split(&faults, &data);
        for (f, w) in faults.iter().zip(&split) {
            assert_eq!(*w, data.get(f.offset) != f.stuck);
        }
    }
}
