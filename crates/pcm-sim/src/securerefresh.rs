//! Security Refresh (Seong et al., ISCA 2010) — the second wear-leveling
//! technique the paper's §3.1 cites for its uniform-writes assumption.
//!
//! Where Start-Gap rotates the address space through a moving spare,
//! Security Refresh XOR-remaps every line with a random key and migrates
//! to a fresh key incrementally — an algebraic, spare-less scheme designed
//! to also resist intentional wear-out attacks (the remapping is keyed,
//! not predictable).
//!
//! Migration works in *pair swaps*: with current key `k0` and next key
//! `k1`, lines `l` and `l ⊕ k0 ⊕ k1` exchange physical slots (each ends up
//! where the new key sends it), so the mapping stays a bijection at every
//! intermediate step. One pair is swapped every `interval` writes; after
//! `n/2` swaps the round completes, `k1` becomes current, and a fresh key
//! is drawn.

use crate::wearlevel::WearLeveler;
use sim_rng::SmallRng;
use sim_rng::{Rng, SeedableRng};

/// Single-region Security Refresh remapper.
///
/// # Examples
///
/// ```
/// use pcm_sim::securerefresh::SecurityRefresh;
/// use pcm_sim::wearlevel::WearLeveler;
///
/// let mut sr = SecurityRefresh::new(64, 4, 7);
/// let before = sr.physical_of(9);
/// for _ in 0..64 * 8 {
///     sr.on_write(9);
/// }
/// assert_ne!(sr.physical_of(9), before); // the hot line has moved
/// ```
#[derive(Debug, Clone)]
pub struct SecurityRefresh {
    lines: usize,
    current_key: usize,
    next_key: usize,
    /// Pairs already swapped this round (round length = `lines / 2`).
    swapped_pairs: usize,
    interval: u64,
    writes_since_refresh: u64,
    overhead_writes: u64,
    rng: SmallRng,
}

impl SecurityRefresh {
    /// Creates a remapper over `lines` (a power of two, at least 2)
    /// swapping one pair every `interval` writes; `seed` drives the key
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics unless `lines` is a power of two `>= 2` and `interval > 0`.
    #[must_use]
    pub fn new(lines: usize, interval: u64, seed: u64) -> Self {
        assert!(
            lines.is_power_of_two() && lines >= 2,
            "region must be a power of two >= 2"
        );
        assert!(interval > 0, "refresh interval must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let current_key = rng.random_range(0..lines);
        let next_key = Self::fresh_key(&mut rng, lines, current_key);
        Self {
            lines,
            current_key,
            next_key,
            swapped_pairs: 0,
            interval,
            writes_since_refresh: 0,
            overhead_writes: 0,
            rng,
        }
    }

    /// A random key different from `avoid` (a zero key delta would make a
    /// round a no-op).
    fn fresh_key(rng: &mut SmallRng, lines: usize, avoid: usize) -> usize {
        loop {
            let key = rng.random_range(0..lines);
            if key != avoid {
                return key;
            }
        }
    }

    /// The key currently being migrated *to* (for tests).
    #[must_use]
    pub fn next_key(&self) -> usize {
        self.next_key
    }

    /// Whether line `l` has been re-keyed this round. Pairs `{l, l ⊕ d}`
    /// (with `d = k0 ⊕ k1`) are processed in order of their smaller
    /// member; since `d ≠ 0`, the smaller member is the one with the
    /// highest bit of `d` clear, and its rank among all pair leaders is
    /// its value with that bit compressed out.
    fn is_migrated(&self, logical: usize) -> bool {
        let delta = self.current_key ^ self.next_key;
        let high = usize::BITS as usize - 1 - delta.leading_zeros() as usize;
        let leader = logical.min(logical ^ delta);
        let low_mask = (1usize << high) - 1;
        let rank = (leader & low_mask) | ((leader >> (high + 1)) << high);
        rank < self.swapped_pairs
    }

    fn refresh_step(&mut self) {
        self.overhead_writes += 2; // a swap rewrites both lines
        self.swapped_pairs += 1;
        if self.swapped_pairs == self.lines / 2 {
            self.current_key = self.next_key;
            self.next_key = Self::fresh_key(&mut self.rng, self.lines, self.current_key);
            self.swapped_pairs = 0;
        }
    }
}

impl WearLeveler for SecurityRefresh {
    fn lines(&self) -> usize {
        self.lines
    }

    /// Algebraic remapping: no spare slot.
    fn physical_slots(&self) -> usize {
        self.lines
    }

    fn physical_of(&mut self, logical: usize) -> usize {
        assert!(logical < self.lines, "logical line {logical} out of range");
        if self.is_migrated(logical) {
            logical ^ self.next_key
        } else {
            logical ^ self.current_key
        }
    }

    fn on_write(&mut self, logical: usize) -> usize {
        let slot = self.physical_of(logical);
        self.writes_since_refresh += 1;
        if self.writes_since_refresh == self.interval {
            self.writes_since_refresh = 0;
            self.refresh_step();
        }
        slot
    }

    fn overhead_writes(&self) -> u64 {
        self.overhead_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wearlevel::{skewed_stream, wear_cv, wear_histogram};

    #[test]
    fn mapping_is_a_bijection_at_all_times() {
        let mut sr = SecurityRefresh::new(32, 3, 1);
        for step in 0..2_000 {
            let mut seen = [false; 32];
            for logical in 0..32 {
                let slot = sr.physical_of(logical);
                assert!(slot < 32);
                assert!(!seen[slot], "slot {slot} duplicated at step {step}");
                seen[slot] = true;
            }
            sr.on_write(step % 32);
        }
    }

    #[test]
    fn pairs_swap_atomically() {
        let mut sr = SecurityRefresh::new(16, 1, 2);
        let delta = sr.current_key ^ sr.next_key();
        // After one refresh step exactly one pair moved — and both of its
        // members see the new key.
        let pair_leader = (0..16).find(|&l| l < l ^ delta).unwrap();
        sr.on_write(0);
        assert!(sr.is_migrated(pair_leader));
        assert!(sr.is_migrated(pair_leader ^ delta));
        assert_eq!(sr.physical_of(pair_leader), pair_leader ^ sr.next_key());
    }

    #[test]
    fn keys_rotate_over_rounds() {
        let mut sr = SecurityRefresh::new(16, 1, 2);
        let first_next = sr.next_key();
        for _ in 0..8 {
            sr.on_write(0); // 8 swaps = a full round for 16 lines
        }
        assert_eq!(sr.physical_of(0), first_next); // 0 ^ new current key
    }

    #[test]
    fn levels_a_skewed_stream() {
        use sim_rng::SeedableRng;
        use sim_rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let lines = 64;
        let stream = skewed_stream(&mut rng, lines, 400_000, 0.05);
        let mut sr = SecurityRefresh::new(lines, 4, 9);
        let cv = wear_cv(&wear_histogram(&mut sr, stream));
        assert!(cv < 0.35, "Security Refresh spread too wide: {cv}");
    }

    #[test]
    fn overhead_counts_swap_writes() {
        let mut sr = SecurityRefresh::new(8, 10, 4);
        for _ in 0..100 {
            sr.on_write(0);
        }
        assert_eq!(sr.overhead_writes(), 20); // 10 swaps × 2 writes
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_region_panics() {
        let _ = SecurityRefresh::new(20, 4, 0);
    }
}
