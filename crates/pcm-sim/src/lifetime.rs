//! Cell endurance model: normally distributed lifetimes and the
//! differential-write wear model.

use sim_rng::Rng;

/// Per-cell lifetime distribution: `Normal(mean, (cv·mean)²)`, truncated to
/// positive values by resampling.
///
/// The paper (§3.1): "this lifetime follows the normal distribution with a
/// mean lifetime of 10^8 and a 25% coefficient of variance. There is no
/// correlation between neighboring cells."
///
/// The offline crate set has no `rand_distr`, so the normal variate is drawn
/// with the exact Box–Muller transform.
///
/// # Examples
///
/// ```
/// use pcm_sim::LifetimeModel;
/// use sim_rng::{SeedableRng, SmallRng};
///
/// let model = LifetimeModel::paper_default();
/// let mut rng = SmallRng::seed_from_u64(42);
/// let sample = model.sample(&mut rng);
/// assert!(sample > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeModel {
    mean: f64,
    std_dev: f64,
}

impl LifetimeModel {
    /// Mean cell lifetime used throughout the paper's evaluation.
    pub const PAPER_MEAN: f64 = 1.0e8;
    /// Coefficient of variation used throughout the paper's evaluation.
    pub const PAPER_CV: f64 = 0.25;

    /// Creates a model with the given mean and coefficient of variation
    /// (`std_dev = cv · mean`).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`, `cv < 0`, or either is not finite.
    #[must_use]
    pub fn new(mean: f64, cv: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        assert!(cv.is_finite() && cv >= 0.0, "cv must be non-negative");
        Self {
            mean,
            std_dev: cv * mean,
        }
    }

    /// The paper's configuration: `Normal(1e8, 25% CV)`.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(Self::PAPER_MEAN, Self::PAPER_CV)
    }

    /// Mean lifetime.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the lifetime.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one cell lifetime (count of actual programming pulses survived).
    ///
    /// Non-positive draws — possible in the far left tail of the normal —
    /// are rejected and resampled, matching the physical constraint that a
    /// cell survives at least its first write.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let draw = self.mean + self.std_dev * standard_normal(rng);
            if draw > 0.0 {
                return draw;
            }
        }
    }
}

impl Default for LifetimeModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One standard-normal variate via the Box–Muller transform.
///
/// Uses `1 - U` to move the open interval to `(0, 1]` so the logarithm is
/// finite.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Converts a cell lifetime into a fault-arrival time in *block writes*.
///
/// The paper assumes a read-before-write that excludes each cell from a
/// given write with 50% probability; a cell that survives `L` pulses
/// therefore fails around block write `L / participation`. Using the
/// expectation is exact to within the negligible binomial spread at
/// `L ≈ 1e8` (`σ/μ ≈ 1e-4`).
///
/// # Examples
///
/// ```
/// use pcm_sim::WearModel;
/// let wear = WearModel::paper_default();
/// assert_eq!(wear.fault_time(50.0), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearModel {
    participation: f64,
}

impl WearModel {
    /// Probability that a given cell is actually programmed by a block
    /// write, per the paper: 50%.
    pub const PAPER_PARTICIPATION: f64 = 0.5;

    /// Creates a wear model with the given participation probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < participation <= 1`.
    #[must_use]
    pub fn new(participation: f64) -> Self {
        assert!(
            participation > 0.0 && participation <= 1.0,
            "participation must be in (0, 1]"
        );
        Self { participation }
    }

    /// The paper's 50% differential-write model.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(Self::PAPER_PARTICIPATION)
    }

    /// Per-write participation probability.
    #[must_use]
    pub fn participation(&self) -> f64 {
        self.participation
    }

    /// Block-write count at which a cell of the given lifetime fails.
    #[must_use]
    pub fn fault_time(&self, lifetime: f64) -> f64 {
        lifetime / self.participation
    }
}

impl Default for WearModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_rng::{SeedableRng, SmallRng};

    #[test]
    fn sample_mean_and_spread_match_model() {
        let model = LifetimeModel::new(100.0, 0.25);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 25.0).abs() < 1.0, "std {}", var.sqrt());
    }

    #[test]
    fn samples_are_always_positive_even_with_huge_cv() {
        let model = LifetimeModel::new(1.0, 10.0);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..5_000 {
            assert!(model.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn paper_default_matches_constants() {
        let m = LifetimeModel::paper_default();
        assert_eq!(m.mean(), 1.0e8);
        assert_eq!(m.std_dev(), 2.5e7);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn zero_mean_panics() {
        let _ = LifetimeModel::new(0.0, 0.25);
    }

    #[test]
    fn wear_scales_lifetime() {
        let w = WearModel::new(0.25);
        assert_eq!(w.fault_time(100.0), 400.0);
    }

    #[test]
    #[should_panic(expected = "participation")]
    fn wear_rejects_zero() {
        let _ = WearModel::new(0.0);
    }

    #[test]
    fn standard_normal_is_standard() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
