//! The interface every stuck-at-fault recovery scheme implements.

use crate::{PcmBlock, UncorrectableError};
use bitblock::BitBlock;

/// Statistics of one logical write through a codec.
///
/// The paper's schemes differ not only in *whether* they can store a value
/// but in how many extra physical operations it takes (verification reads,
/// inversion rewrites, re-partition trials); lifetime and energy arguments
/// hinge on these counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Cells actually programmed, across all attempts.
    pub cell_pulses: usize,
    /// Verification reads issued.
    pub verify_reads: usize,
    /// Whole-group inversion rewrites issued after the initial write.
    pub inversion_writes: usize,
    /// Re-partitions performed (slope increments for Aegis, vector growth
    /// for SAFER). Zero for pointer-based schemes.
    pub repartitions: usize,
}

impl WriteReport {
    /// Merges the counters of a sub-step into this report.
    pub fn absorb(&mut self, other: WriteReport) {
        self.cell_pulses += other.cell_pulses;
        self.verify_reads += other.verify_reads;
        self.inversion_writes += other.inversion_writes;
        self.repartitions += other.repartitions;
    }
}

/// A block-level stuck-at-fault recovery scheme.
///
/// Implementations own their per-block metadata (slope counter, inversion
/// vector, pointers, …) and keep it consistent across writes, mirroring the
/// bookkeeping bits a PCM chip would attach to the block.
///
/// # Contract
///
/// After `write(block, data)` returns `Ok`, `read(block)` must equal `data`
/// — even though some of the block's cells are stuck. `write` returns
/// [`UncorrectableError`] exactly when the scheme's mechanisms are
/// exhausted; the block is then considered dead (the metadata may be left in
/// an arbitrary state).
pub trait StuckAtCodec {
    /// Stores `data` into `block`, tolerating stuck cells if possible.
    ///
    /// # Errors
    ///
    /// [`UncorrectableError`] when the fault population can no longer be
    /// masked for this data word.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `data.len()` differs from the block
    /// width the codec was constructed for.
    fn write(
        &mut self,
        block: &mut PcmBlock,
        data: &BitBlock,
    ) -> Result<WriteReport, UncorrectableError>;

    /// Recovers the logical data last stored in `block`.
    fn read(&self, block: &PcmBlock) -> BitBlock;

    /// Metadata bits this codec attaches to each protected block
    /// (the "hardware cost" rows of the paper's Table 1).
    fn overhead_bits(&self) -> usize;

    /// Block width in bits the codec protects.
    fn block_bits(&self) -> usize;

    /// Human-readable scheme name as used in the paper's figures
    /// (e.g. `"Aegis 17x31"`, `"SAFER32"`, `"ECP6"`).
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_report_absorb_accumulates() {
        let mut a = WriteReport {
            cell_pulses: 1,
            verify_reads: 2,
            inversion_writes: 0,
            repartitions: 1,
        };
        a.absorb(WriteReport {
            cell_pulses: 3,
            verify_reads: 1,
            inversion_writes: 2,
            repartitions: 0,
        });
        assert_eq!(
            a,
            WriteReport {
                cell_pulses: 4,
                verify_reads: 3,
                inversion_writes: 2,
                repartitions: 1,
            }
        );
    }

    #[test]
    fn codec_trait_is_object_safe() {
        fn _takes_dyn(_: &mut dyn StuckAtCodec) {}
    }
}
