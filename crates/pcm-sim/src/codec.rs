//! The interface every stuck-at-fault recovery scheme implements, plus
//! the shared [`WriteTelemetry`] path that routes every codec's
//! [`WriteReport`] counters into a telemetry [`Registry`].

use crate::{PcmBlock, UncorrectableError};
use bitblock::BitBlock;
use sim_telemetry::{metric_name, Counter, Histogram, Registry};

/// Statistics of one logical write through a codec.
///
/// The paper's schemes differ not only in *whether* they can store a value
/// but in how many extra physical operations it takes (verification reads,
/// inversion rewrites, re-partition trials); lifetime and energy arguments
/// hinge on these counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Cells actually programmed, across all attempts.
    pub cell_pulses: usize,
    /// Verification reads issued.
    pub verify_reads: usize,
    /// Whole-group inversion rewrites issued after the initial write.
    pub inversion_writes: usize,
    /// Re-partitions performed (slope increments for Aegis, vector growth
    /// for SAFER). Zero for pointer-based schemes.
    pub repartitions: usize,
}

impl WriteReport {
    /// Merges the counters of a sub-step into this report.
    pub fn absorb(&mut self, other: WriteReport) {
        self.cell_pulses += other.cell_pulses;
        self.verify_reads += other.verify_reads;
        self.inversion_writes += other.inversion_writes;
        self.repartitions += other.repartitions;
    }
}

/// A block-level stuck-at-fault recovery scheme.
///
/// Implementations own their per-block metadata (slope counter, inversion
/// vector, pointers, …) and keep it consistent across writes, mirroring the
/// bookkeeping bits a PCM chip would attach to the block.
///
/// # Contract
///
/// After `write(block, data)` returns `Ok`, `read(block)` must equal `data`
/// — even though some of the block's cells are stuck. `write` returns
/// [`UncorrectableError`] exactly when the scheme's mechanisms are
/// exhausted; the block is then considered dead (the metadata may be left in
/// an arbitrary state).
pub trait StuckAtCodec {
    /// Stores `data` into `block`, tolerating stuck cells if possible.
    ///
    /// # Errors
    ///
    /// [`UncorrectableError`] when the fault population can no longer be
    /// masked for this data word.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `data.len()` differs from the block
    /// width the codec was constructed for.
    fn write(
        &mut self,
        block: &mut PcmBlock,
        data: &BitBlock,
    ) -> Result<WriteReport, UncorrectableError>;

    /// Recovers the logical data last stored in `block`.
    fn read(&self, block: &PcmBlock) -> BitBlock;

    /// Metadata bits this codec attaches to each protected block
    /// (the "hardware cost" rows of the paper's Table 1).
    fn overhead_bits(&self) -> usize;

    /// Block width in bits the codec protects.
    fn block_bits(&self) -> usize;

    /// Human-readable scheme name as used in the paper's figures
    /// (e.g. `"Aegis 17x31"`, `"SAFER32"`, `"ECP6"`).
    fn name(&self) -> String;
}

impl<C: StuckAtCodec + ?Sized> StuckAtCodec for Box<C> {
    fn write(
        &mut self,
        block: &mut PcmBlock,
        data: &BitBlock,
    ) -> Result<WriteReport, UncorrectableError> {
        (**self).write(block, data)
    }

    fn read(&self, block: &PcmBlock) -> BitBlock {
        (**self).read(block)
    }

    fn overhead_bits(&self) -> usize {
        (**self).overhead_bits()
    }

    fn block_bits(&self) -> usize {
        (**self).block_bits()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// The shared telemetry path for codec writes: one set of counter handles
/// per scheme, fed from [`WriteReport`]s. Every scheme — Aegis, Aegis-rw,
/// Aegis-rw-p, and the baselines — flows through this instead of keeping
/// its own ad-hoc tallies.
///
/// Metric names are `codec.<scheme>.<metric>`:
/// `writes`, `write_errors`, `cell_pulses`, `verify_reads`,
/// `inversion_writes`, `repartitions` (counters) and `slope_trials`
/// (histogram of partition attempts per write, `repartitions + 1`).
#[derive(Clone, Default)]
pub struct WriteTelemetry {
    writes: Counter,
    write_errors: Counter,
    cell_pulses: Counter,
    verify_reads: Counter,
    inversion_writes: Counter,
    repartitions: Counter,
    slope_trials: Histogram,
}

impl WriteTelemetry {
    /// Handles for `scheme` in `registry` (no-ops when it is disabled).
    #[must_use]
    pub fn for_scheme(registry: &Registry, scheme: &str) -> WriteTelemetry {
        let counter = |metric: &str| registry.counter(&metric_name("codec", scheme, metric));
        WriteTelemetry {
            writes: counter("writes"),
            write_errors: counter("write_errors"),
            cell_pulses: counter("cell_pulses"),
            verify_reads: counter("verify_reads"),
            inversion_writes: counter("inversion_writes"),
            repartitions: counter("repartitions"),
            slope_trials: registry.histogram(&metric_name("codec", scheme, "slope_trials")),
        }
    }

    /// Records the outcome of one logical write.
    pub fn record(&self, outcome: &Result<WriteReport, UncorrectableError>) {
        self.writes.incr();
        match outcome {
            Ok(report) => {
                self.cell_pulses.add(report.cell_pulses as u64);
                self.verify_reads.add(report.verify_reads as u64);
                self.inversion_writes.add(report.inversion_writes as u64);
                self.repartitions.add(report.repartitions as u64);
                self.slope_trials.record(report.repartitions as u64 + 1);
            }
            Err(_) => self.write_errors.incr(),
        }
    }
}

/// Wraps any codec so its write outcomes flow into a [`WriteTelemetry`],
/// without touching the codec's own state or trait surface.
pub struct Instrumented<C> {
    inner: C,
    telemetry: WriteTelemetry,
}

impl<C: StuckAtCodec> Instrumented<C> {
    /// Instruments `codec`, registering its metrics under the codec's own
    /// [`StuckAtCodec::name`].
    #[must_use]
    pub fn new(codec: C, registry: &Registry) -> Instrumented<C> {
        let telemetry = WriteTelemetry::for_scheme(registry, &codec.name());
        Instrumented {
            inner: codec,
            telemetry,
        }
    }

    /// The wrapped codec.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: StuckAtCodec> StuckAtCodec for Instrumented<C> {
    fn write(
        &mut self,
        block: &mut PcmBlock,
        data: &BitBlock,
    ) -> Result<WriteReport, UncorrectableError> {
        let outcome = self.inner.write(block, data);
        self.telemetry.record(&outcome);
        outcome
    }

    fn read(&self, block: &PcmBlock) -> BitBlock {
        self.inner.read(block)
    }

    fn overhead_bits(&self) -> usize {
        self.inner.overhead_bits()
    }

    fn block_bits(&self) -> usize {
        self.inner.block_bits()
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_report_absorb_accumulates() {
        let mut a = WriteReport {
            cell_pulses: 1,
            verify_reads: 2,
            inversion_writes: 0,
            repartitions: 1,
        };
        a.absorb(WriteReport {
            cell_pulses: 3,
            verify_reads: 1,
            inversion_writes: 2,
            repartitions: 0,
        });
        assert_eq!(
            a,
            WriteReport {
                cell_pulses: 4,
                verify_reads: 3,
                inversion_writes: 2,
                repartitions: 1,
            }
        );
    }

    #[test]
    fn codec_trait_is_object_safe() {
        fn _takes_dyn(_: &mut dyn StuckAtCodec) {}
    }

    /// Fixed-behavior codec: succeeds with a canned report until told to
    /// fail, so telemetry totals are exactly predictable.
    struct ScriptedCodec {
        fail: bool,
    }

    impl StuckAtCodec for ScriptedCodec {
        fn write(
            &mut self,
            _block: &mut PcmBlock,
            _data: &BitBlock,
        ) -> Result<WriteReport, UncorrectableError> {
            if self.fail {
                Err(UncorrectableError::new("scripted", 1, "told to fail"))
            } else {
                Ok(WriteReport {
                    cell_pulses: 10,
                    verify_reads: 2,
                    inversion_writes: 1,
                    repartitions: 3,
                })
            }
        }
        fn read(&self, _block: &PcmBlock) -> BitBlock {
            BitBlock::zeros(8)
        }
        fn overhead_bits(&self) -> usize {
            0
        }
        fn block_bits(&self) -> usize {
            8
        }
        fn name(&self) -> String {
            "scripted".to_owned()
        }
    }

    #[test]
    fn instrumented_codec_routes_reports_into_registry() {
        let registry = sim_telemetry::Registry::new();
        let mut codec = Instrumented::new(ScriptedCodec { fail: false }, &registry);
        let mut block = PcmBlock::pristine(8);
        let data = BitBlock::zeros(8);
        codec.write(&mut block, &data).unwrap();
        codec.write(&mut block, &data).unwrap();
        let mut failing = Instrumented::new(ScriptedCodec { fail: true }, &registry);
        assert!(failing.write(&mut block, &data).is_err());

        let counters: std::collections::BTreeMap<String, u64> =
            registry.counters().into_iter().collect();
        assert_eq!(counters["codec.scripted.writes"], 3);
        assert_eq!(counters["codec.scripted.write_errors"], 1);
        assert_eq!(counters["codec.scripted.cell_pulses"], 20);
        assert_eq!(counters["codec.scripted.verify_reads"], 4);
        assert_eq!(counters["codec.scripted.inversion_writes"], 2);
        assert_eq!(counters["codec.scripted.repartitions"], 6);
        // Each successful write tried repartitions + 1 = 4 partitions.
        let (name, slope) = &registry.histograms()[0];
        assert_eq!(name, "codec.scripted.slope_trials");
        assert_eq!(slope.count, 2);
        assert_eq!(slope.sum, 8);
    }

    #[test]
    fn instrumented_with_disabled_registry_is_transparent() {
        let registry = sim_telemetry::Registry::disabled();
        let mut codec = Instrumented::new(ScriptedCodec { fail: false }, &registry);
        let mut block = PcmBlock::pristine(8);
        let report = codec.write(&mut block, &BitBlock::zeros(8)).unwrap();
        assert_eq!(report.verify_reads, 2);
        assert!(registry.counters().is_empty());
        assert_eq!(codec.name(), "scripted");
        assert_eq!(codec.into_inner().name(), "scripted");
    }

    #[test]
    fn boxed_codecs_still_implement_the_trait() {
        let mut boxed: Box<dyn StuckAtCodec> = Box::new(ScriptedCodec { fail: false });
        let mut block = PcmBlock::pristine(8);
        assert!(boxed.write(&mut block, &BitBlock::zeros(8)).is_ok());
        assert_eq!(boxed.block_bits(), 8);
    }
}
