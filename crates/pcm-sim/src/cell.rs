//! A single phase-change-memory cell with finite write endurance.

/// One PCM cell.
///
/// A cell stores a bit and survives a fixed number of *actual* programming
/// operations (its lifetime). When the budget is exhausted the cell becomes
/// permanently stuck at the value it held at that moment: reads keep
/// returning that value, writes silently fail — exactly the stuck-at-fault
/// model of the paper (§1: "its stuck-at value is still readable but cannot
/// be changed").
///
/// # Examples
///
/// ```
/// use pcm_sim::Cell;
///
/// let mut cell = Cell::new(false, 2);
/// cell.write(true);  // consumes 1 write
/// cell.write(false); // consumes the last write; cell is now stuck at false
/// assert!(cell.is_stuck());
/// cell.write(true);  // silently ineffective
/// assert!(!cell.read());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    value: bool,
    writes_left: u64,
    partial: bool,
}

impl Cell {
    /// Creates a cell holding `value` that survives `lifetime` more writes.
    #[must_use]
    pub fn new(value: bool, lifetime: u64) -> Self {
        Self {
            value,
            writes_left: lifetime,
            partial: false,
        }
    }

    /// Creates an already-failed cell stuck at `value`.
    ///
    /// Used by tests and examples to inject faults deterministically.
    #[must_use]
    pub fn stuck_at(value: bool) -> Self {
        Self {
            value,
            writes_left: 0,
            partial: false,
        }
    }

    /// Creates an already-failed cell *partially* stuck at `value`: it
    /// reliably stores `value`, while writes of the opposite value only
    /// succeed occasionally (never, in this worst-case functional model —
    /// the probabilistic weak write lives in the Monte Carlo layer; see
    /// [`Stuckness::Partial`](crate::Stuckness::Partial)).
    #[must_use]
    pub fn partially_stuck_at(value: bool) -> Self {
        Self {
            value,
            writes_left: 0,
            partial: true,
        }
    }

    /// Reads the stored value. Always succeeds, even for a stuck cell.
    #[must_use]
    pub fn read(&self) -> bool {
        self.value
    }

    /// Programs the cell to `value`.
    ///
    /// Consumes one unit of lifetime *only if the value actually changes*
    /// (writing the already-stored value is filtered out by the
    /// read-before-write the paper assumes, and does not wear the cell).
    /// Returns `true` if a programming pulse was issued.
    ///
    /// A stuck cell ignores the write entirely.
    pub fn write(&mut self, value: bool) -> bool {
        if self.is_stuck() || self.value == value {
            return false;
        }
        self.value = value;
        self.writes_left -= 1;
        true
    }

    /// Whether the cell has exhausted its endurance (fully *or* partially
    /// stuck — either way, the worst-case functional model treats it as
    /// unchangeable; [`is_partially_stuck`](Self::is_partially_stuck)
    /// refines the failure mode).
    #[must_use]
    pub fn is_stuck(&self) -> bool {
        self.writes_left == 0
    }

    /// Whether the cell failed in the *partially*-stuck mode: it reliably
    /// stores its stuck value, and a write of the opposite value has a
    /// residual (probabilistic) chance of taking.
    #[must_use]
    pub fn is_partially_stuck(&self) -> bool {
        self.partial
    }

    /// The stuck-at value, if the cell has failed.
    #[must_use]
    pub fn stuck_value(&self) -> Option<bool> {
        self.is_stuck().then_some(self.value)
    }

    /// Remaining write budget.
    #[must_use]
    pub fn writes_left(&self) -> u64 {
        self.writes_left
    }

    /// Forces the cell into the stuck state at `value`, regardless of its
    /// remaining lifetime. Fault-injection hook for tests and examples.
    pub fn force_stuck(&mut self, value: bool) {
        self.value = value;
        self.writes_left = 0;
        self.partial = false;
    }

    /// Forces the cell into the *partially* stuck state at `value`.
    /// Fault-injection hook for tests and the exhaustive suites.
    pub fn force_partially_stuck(&mut self, value: bool) {
        self.value = value;
        self.writes_left = 0;
        self.partial = true;
    }
}

impl Default for Cell {
    /// A pristine cell holding `false` with an effectively unlimited
    /// lifetime.
    fn default() -> Self {
        Self::new(false, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_value_write_is_free() {
        let mut c = Cell::new(false, 1);
        assert!(!c.write(false));
        assert_eq!(c.writes_left(), 1);
        assert!(!c.is_stuck());
    }

    #[test]
    fn wears_out_and_sticks_at_last_value() {
        let mut c = Cell::new(false, 2);
        assert!(c.write(true));
        assert!(c.write(false));
        assert!(c.is_stuck());
        assert_eq!(c.stuck_value(), Some(false));
        assert!(!c.write(true));
        assert!(!c.read());
    }

    #[test]
    fn stuck_at_constructor() {
        let c = Cell::stuck_at(true);
        assert!(c.is_stuck());
        assert_eq!(c.stuck_value(), Some(true));
        assert!(c.read());
    }

    #[test]
    fn force_stuck_overrides_lifetime() {
        let mut c = Cell::new(false, 1_000);
        c.force_stuck(true);
        assert_eq!(c.stuck_value(), Some(true));
    }

    #[test]
    fn default_is_pristine() {
        let c = Cell::default();
        assert!(!c.is_stuck());
        assert!(!c.read());
    }

    #[test]
    fn partially_stuck_cell_holds_its_reliable_value() {
        let mut c = Cell::partially_stuck_at(true);
        assert!(c.is_stuck());
        assert!(c.is_partially_stuck());
        assert_eq!(c.stuck_value(), Some(true));
        // Worst-case functional model: the weak write never takes.
        assert!(!c.write(false));
        assert!(c.read());
        // Re-forcing to fully stuck clears the partial flag.
        c.force_stuck(false);
        assert!(!c.is_partially_stuck());
        let mut d = Cell::new(false, 100);
        d.force_partially_stuck(true);
        assert!(d.is_partially_stuck());
        assert_eq!(d.stuck_value(), Some(true));
    }
}
