//! Wear-leveling substrates: Start-Gap and its randomized variant.
//!
//! The paper's evaluation (§3.1) *assumes* perfect wear leveling — "writes
//! are uniformly distributed over the live memory blocks" — justified by
//! citing Randomized Region-based Start-Gap (Qureshi et al., MICRO 2009)
//! and Security Refresh. This module implements Start-Gap so the
//! assumption can be validated instead of taken on faith: feed any skewed
//! write stream through [`StartGap`] / [`RandomizedStartGap`] and measure
//! the per-line write spread (see `tests/wear_leveling.rs` and the
//! `wear_leveling` ablation).
//!
//! ## Start-Gap in brief
//!
//! For `N` logical lines the device provisions `N + 1` physical lines; the
//! spare is the *gap*. Every `ψ` writes the gap moves down by one slot
//! (copying one line), and when it wraps, a *start* register advances —
//! over time every logical line visits every physical slot, spreading hot
//! addresses across the device. The randomized variant first scrambles the
//! logical address with a fixed random bijection so that spatially
//! correlated hot regions do not march through physical space together.

use sim_rng::SmallRng;
use sim_rng::{Rng, SeedableRng};

/// Remaps logical line addresses to physical slots, leveling wear.
pub trait WearLeveler {
    /// Number of logical lines managed.
    fn lines(&self) -> usize;

    /// Number of physical slots the leveler maps onto. Start-Gap needs one
    /// spare beyond the logical lines (the default); algebraic schemes
    /// like Security Refresh use exactly `lines()`.
    fn physical_slots(&self) -> usize {
        self.lines() + 1
    }

    /// Physical slot (in `0..=lines()`, the extra slot being the gap space)
    /// currently backing a logical line.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `logical >= lines()`.
    fn physical_of(&mut self, logical: usize) -> usize;

    /// Accounts one write to a logical line and returns the physical slot
    /// it lands in (remap bookkeeping may advance internally).
    fn on_write(&mut self, logical: usize) -> usize;

    /// Extra device writes performed so far by the leveler itself (gap
    /// copies) — its write-amplification cost.
    fn overhead_writes(&self) -> u64;
}

/// The Start-Gap algebraic wear leveler (Qureshi et al., MICRO 2009).
///
/// # Examples
///
/// ```
/// use pcm_sim::wearlevel::{StartGap, WearLeveler};
///
/// let mut wl = StartGap::new(8, 4); // 8 lines, gap moves every 4 writes
/// let before = wl.physical_of(3);
/// for _ in 0..64 {
///     wl.on_write(3); // hammer one logical line
/// }
/// // The hot line no longer sits where it started.
/// assert_ne!(wl.physical_of(3), before);
/// ```
#[derive(Debug, Clone)]
pub struct StartGap {
    lines: usize,
    /// Physical index of the gap (the unused spare slot), in `0..=lines`.
    gap: usize,
    /// Rotation of the logical space, advanced on each gap wrap.
    start: usize,
    /// Gap moves after every `interval` data writes.
    interval: u64,
    writes_since_move: u64,
    overhead_writes: u64,
}

impl StartGap {
    /// Creates a leveler for `lines` logical lines whose gap moves every
    /// `interval` writes (the paper behind Start-Gap uses ψ = 100).
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0` or `interval == 0`.
    #[must_use]
    pub fn new(lines: usize, interval: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(interval > 0, "gap interval must be positive");
        Self {
            lines,
            gap: lines, // gap starts at the spare slot past the end
            start: 0,
            interval,
            writes_since_move: 0,
            overhead_writes: 0,
        }
    }

    /// Current gap slot (for tests/diagnostics).
    #[must_use]
    pub fn gap(&self) -> usize {
        self.gap
    }

    /// Current start rotation (for tests/diagnostics).
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    fn mapping(&self, logical: usize) -> usize {
        assert!(logical < self.lines, "logical line {logical} out of range");
        let rotated = (logical + self.start) % self.lines;
        // Slots at or past the gap are shifted by one to skip it.
        if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        }
    }

    fn move_gap(&mut self) {
        // Copy the line just below the gap into the gap slot: one device
        // write of overhead.
        self.overhead_writes += 1;
        if self.gap == 0 {
            // Wrap: the gap returns to the top and the start advances,
            // rotating the whole logical space by one.
            self.gap = self.lines;
            self.start = (self.start + 1) % self.lines;
        } else {
            self.gap -= 1;
        }
    }
}

impl WearLeveler for StartGap {
    fn lines(&self) -> usize {
        self.lines
    }

    fn physical_of(&mut self, logical: usize) -> usize {
        self.mapping(logical)
    }

    fn on_write(&mut self, logical: usize) -> usize {
        let slot = self.mapping(logical);
        self.writes_since_move += 1;
        if self.writes_since_move == self.interval {
            self.writes_since_move = 0;
            self.move_gap();
        }
        slot
    }

    fn overhead_writes(&self) -> u64 {
        self.overhead_writes
    }
}

/// Start-Gap behind a fixed random bijection of the logical space
/// (the "randomized" part of Randomized Region-based Start-Gap): spatially
/// adjacent hot lines scatter before the rotation spreads them further.
#[derive(Debug, Clone)]
pub struct RandomizedStartGap {
    scramble: Vec<usize>,
    inner: StartGap,
}

impl RandomizedStartGap {
    /// Creates the randomized leveler; `seed` fixes the static address
    /// scramble (burned in at manufacturing time in the real design).
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0` or `interval == 0`.
    #[must_use]
    pub fn new(lines: usize, interval: u64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut scramble: Vec<usize> = (0..lines).collect();
        for i in (1..lines).rev() {
            scramble.swap(i, rng.random_range(0..=i));
        }
        Self {
            scramble,
            inner: StartGap::new(lines, interval),
        }
    }

    /// The static scramble applied before Start-Gap (for tests).
    #[must_use]
    pub fn scrambled(&self, logical: usize) -> usize {
        self.scramble[logical]
    }
}

impl WearLeveler for RandomizedStartGap {
    fn lines(&self) -> usize {
        self.inner.lines()
    }

    fn physical_of(&mut self, logical: usize) -> usize {
        let scrambled = self.scramble[logical];
        self.inner.physical_of(scrambled)
    }

    fn on_write(&mut self, logical: usize) -> usize {
        let scrambled = self.scramble[logical];
        self.inner.on_write(scrambled)
    }

    fn overhead_writes(&self) -> u64 {
        self.inner.overhead_writes()
    }
}

/// Drives a write stream through a leveler and tallies writes per physical
/// slot — the measurement behind the uniform-wear validation.
pub fn wear_histogram<W, I>(leveler: &mut W, stream: I) -> Vec<u64>
where
    W: WearLeveler + ?Sized,
    I: IntoIterator<Item = usize>,
{
    let mut histogram = vec![0u64; leveler.physical_slots()];
    for logical in stream {
        histogram[leveler.on_write(logical)] += 1;
    }
    histogram
}

/// Coefficient of variation of a wear histogram (0 = perfectly level).
#[must_use]
pub fn wear_cv(histogram: &[u64]) -> f64 {
    let n = histogram.len() as f64;
    let mean = histogram.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = histogram
        .iter()
        .map(|&h| (h as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// A deliberately skewed write stream: 90% of writes hit the `hot_fraction`
/// hottest lines (plus a round-robin cold tail) — the adversarial pattern
/// wear leveling exists for.
pub fn skewed_stream<R: Rng + ?Sized>(
    rng: &mut R,
    lines: usize,
    length: usize,
    hot_fraction: f64,
) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&hot_fraction), "fraction out of range");
    let hot = ((lines as f64 * hot_fraction).ceil() as usize).clamp(1, lines);
    (0..length)
        .map(|i| {
            if rng.random_bool(0.9) {
                rng.random_range(0..hot)
            } else {
                i % lines
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_a_bijection_at_all_times() {
        let mut wl = StartGap::new(16, 3);
        for step in 0..500 {
            let mut seen = [false; 17];
            for logical in 0..16 {
                let slot = wl.physical_of(logical);
                assert!(slot <= 16, "slot out of range at step {step}");
                assert!(!seen[slot], "two lines share slot {slot} at step {step}");
                seen[slot] = true;
            }
            // Exactly the gap slot is unused.
            assert_eq!(seen.iter().filter(|&&s| !s).count(), 1);
            wl.on_write(step % 16);
        }
    }

    #[test]
    fn gap_wraps_and_start_advances() {
        let mut wl = StartGap::new(4, 1); // gap moves on every write
        assert_eq!(wl.gap(), 4);
        for _ in 0..5 {
            wl.on_write(0);
        }
        // Five moves: gap 4→3→2→1→0→wrap(4, start+1).
        assert_eq!(wl.gap(), 4);
        assert_eq!(wl.start(), 1);
        assert_eq!(wl.overhead_writes(), 5);
    }

    #[test]
    fn hot_line_migrates_across_all_slots() {
        let mut wl = StartGap::new(8, 2);
        let mut visited = std::collections::BTreeSet::new();
        for _ in 0..8 * 2 * 20 {
            visited.insert(wl.on_write(5));
        }
        assert_eq!(
            visited.len(),
            9,
            "hot line must visit every slot: {visited:?}"
        );
    }

    #[test]
    fn start_gap_levels_a_skewed_stream() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lines = 64;
        let stream = skewed_stream(&mut rng, lines, 400_000, 0.05);
        // Without leveling: CV is huge.
        let raw = {
            let mut h = vec![0u64; lines + 1];
            for &l in &stream {
                h[l] += 1;
            }
            wear_cv(&h)
        };
        let mut wl = StartGap::new(lines, 8);
        let leveled = wear_cv(&wear_histogram(&mut wl, stream));
        assert!(raw > 2.0, "stream not skewed enough ({raw})");
        assert!(
            leveled < raw / 4.0,
            "Start-Gap should cut the wear spread ({raw} -> {leveled})"
        );
    }

    #[test]
    fn randomized_variant_also_levels_and_scramble_is_bijection() {
        let mut wl = RandomizedStartGap::new(64, 8, 9);
        let mut targets: Vec<usize> = (0..64).map(|l| wl.scrambled(l)).collect();
        targets.sort_unstable();
        assert_eq!(targets, (0..64).collect::<Vec<_>>());

        let mut rng = SmallRng::seed_from_u64(2);
        let stream = skewed_stream(&mut rng, 64, 400_000, 0.05);
        let leveled = wear_cv(&wear_histogram(&mut wl, stream));
        assert!(
            leveled < 0.5,
            "randomized Start-Gap spread too wide: {leveled}"
        );
    }

    #[test]
    fn overhead_is_one_copy_per_interval() {
        let mut wl = StartGap::new(32, 10);
        for _ in 0..1000 {
            wl.on_write(0);
        }
        assert_eq!(wl.overhead_writes(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_logical_panics() {
        let mut wl = StartGap::new(4, 1);
        let _ = wl.physical_of(4);
    }
}
