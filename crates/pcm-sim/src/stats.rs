//! Small statistics helpers for experiment reporting.

/// Arithmetic mean of a slice of `f64`; `NaN` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Arithmetic mean of a slice of counts; `NaN` for an empty slice.
#[must_use]
pub fn mean_usize(values: &[usize]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<usize>() as f64 / values.len() as f64
}

/// Sample standard deviation (n − 1 denominator); `NaN` for fewer than two
/// samples.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return f64::NAN;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Value at quantile `q ∈ [0, 1]` by nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank]
}

/// Standard error of the mean.
#[must_use]
pub fn std_error(values: &[f64]) -> f64 {
    std_dev(values) / (values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert_eq!(mean_usize(&[2, 4]), 3.0);
    }

    #[test]
    fn std_dev_of_known_values() {
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.01, "{s}");
        assert!(std_dev(&[1.0]).is_nan());
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 0.5);
    }
}
