//! Small statistics helpers for experiment reporting.

/// Arithmetic mean of a slice of `f64`; `NaN` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Arithmetic mean of a slice of counts; `NaN` for an empty slice.
#[must_use]
pub fn mean_usize(values: &[usize]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<usize>() as f64 / values.len() as f64
}

/// Sample standard deviation (n − 1 denominator); `NaN` for fewer than two
/// samples.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return f64::NAN;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Value at quantile `q ∈ [0, 1]` by the nearest-rank method on a sorted
/// copy: the smallest value whose rank is at least `⌈q·n⌉` (with `q = 0`
/// mapping to the minimum). `NaN` for an empty slice, matching
/// [`mean`]/[`std_dev`].
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (values.len() as f64 * q).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

/// Standard error of the mean.
#[must_use]
pub fn std_error(values: &[f64]) -> f64 {
    std_dev(values) / (values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert_eq!(mean_usize(&[2, 4]), 3.0);
    }

    #[test]
    fn std_dev_of_known_values() {
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.01, "{s}");
        assert!(std_dev(&[1.0]).is_nan());
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        // Nearest-rank on an even count: p50 of 4 values is rank ⌈0.5·4⌉ = 2
        // (the second-smallest), not the midpoint-rounded third.
        let w = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&w, 0.5), 2.0);
        assert_eq!(percentile(&w, 0.25), 1.0);
        assert_eq!(percentile(&w, 0.75), 3.0);
        // p90 of 10 values is rank 9, not the maximum.
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&ten, 0.9), 9.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&[], 0.5).is_nan());
    }
}
