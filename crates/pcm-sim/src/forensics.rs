//! Block-death forensics: deterministic replay of one block's fault and
//! policy-decision history.
//!
//! The Monte Carlo engine derives every page timeline from `(seed,
//! page_idx)` alone, so any single block's entire history — each fault's
//! arrival time, position, and stuck value, every sampled W/R split, and
//! every policy verdict — can be re-derived after the fact without
//! storing anything during the run. This module performs that replay with
//! the *identical* entropy consumption as
//! [`evaluate_block_with_scratch`](crate::montecarlo::evaluate_block_with_scratch)
//! (same per-event split seeding, same short-circuit on the first failed
//! sample), annotates each decision via [`RecoveryPolicy::explain`], and
//! renders a deterministic text report. A differential test pins the
//! replayed outcome against the engine's.

use crate::fault::{sample_split_for_into, Fault, Stuckness};
use crate::montecarlo::{BlockOutcome, FailureCriterion};
use crate::policy::{PolicyScratch, RecoveryPolicy};
use crate::timeline::{BlockTimeline, TimelineSampler};
use sim_rng::SeedableRng;
use sim_rng::SmallRng;

/// Identifies one block of one simulated chip run.
#[derive(Debug, Clone, Copy)]
pub struct BlockTraceConfig {
    /// Master seed of the run being replayed.
    pub seed: u64,
    /// Bits per page (4 KB page = 32768).
    pub page_bits: usize,
    /// Bits per protected data block.
    pub block_bits: usize,
    /// Death criterion of the run being replayed.
    pub criterion: FailureCriterion,
    /// Page index within the chip.
    pub page: usize,
    /// Block index within the page.
    pub block: usize,
    /// Partially-stuck fraction of the run being replayed (see
    /// [`SimConfig::partial_fraction`](crate::montecarlo::SimConfig));
    /// `0.0` for every classic run.
    pub partial_fraction: f64,
}

/// Re-derives the fault timeline of the configured block, byte-identical
/// to what the engine sampled for the same `(seed, page)`.
///
/// # Errors
///
/// Returns a message when the block geometry is inconsistent or the block
/// index is out of range.
pub fn derive_block_timeline(cfg: &BlockTraceConfig) -> Result<BlockTimeline, String> {
    if cfg.block_bits == 0 || !cfg.page_bits.is_multiple_of(cfg.block_bits) {
        return Err(format!(
            "block width {} does not divide page width {}",
            cfg.block_bits, cfg.page_bits
        ));
    }
    let blocks_per_page = cfg.page_bits / cfg.block_bits;
    if cfg.block >= blocks_per_page {
        return Err(format!(
            "block index {} out of range: a {}-bit page holds {} blocks of {} bits",
            cfg.block, cfg.page_bits, blocks_per_page, cfg.block_bits
        ));
    }
    let sampler = TimelineSampler::paper_default(cfg.block_bits).with_partial_mix(
        cfg.partial_fraction,
        crate::timeline::DEFAULT_WEAK_SUCCESS_Q8,
    );
    let mut rng = TimelineSampler::page_rng(cfg.seed, cfg.page as u64);
    let page = sampler.sample_page(&mut rng, blocks_per_page);
    page.blocks
        .into_iter()
        .nth(cfg.block)
        .ok_or_else(|| "sampled page has too few blocks".to_owned())
}

/// One tested W/R split and the policy's verdict on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitTrace {
    /// `wrong[i]` ⇔ fault `i` was stuck-at-Wrong for the sampled data
    /// word. Empty under [`FailureCriterion::GuaranteedAllData`].
    pub wrong: Vec<bool>,
    /// Whether the policy recovered this split.
    pub survivable: bool,
    /// Scheme-specific narration from [`RecoveryPolicy::explain`].
    pub note: Option<String>,
}

/// One fault arrival and every policy decision it triggered.
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    /// Arrival index within the block (0-based).
    pub index: usize,
    /// Arrival time in block writes.
    pub time: f64,
    /// The fault that arrived.
    pub fault: Fault,
    /// Splits tested for this population, in engine order. Stops at the
    /// first failed split, exactly as the engine short-circuits.
    pub splits: Vec<SplitTrace>,
    /// Whether this arrival killed the block.
    pub died: bool,
}

/// Full annotated replay of one policy over one block timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTrace {
    /// The policy's display name.
    pub policy: String,
    /// Criterion the replay used.
    pub criterion: FailureCriterion,
    /// Per-arrival decisions, truncated at death.
    pub events: Vec<EventTrace>,
    /// The replayed outcome; matches
    /// [`evaluate_block`](crate::montecarlo::evaluate_block) exactly.
    pub outcome: BlockOutcome,
}

/// Replays `policy` over `timeline`, annotating every decision.
///
/// Consumes entropy identically to the engine's block loop: one
/// [`SmallRng`] seeded from each event's `split_seed`, one split drawn per
/// sample, stopping at the first failure.
#[must_use]
pub fn trace_block(
    policy: &dyn RecoveryPolicy,
    timeline: &BlockTimeline,
    criterion: FailureCriterion,
) -> BlockTrace {
    let mut scratch = PolicyScratch::new();
    let mut faults: Vec<Fault> = Vec::new();
    let mut wrong: Vec<bool> = Vec::new();
    policy.forget_block(&mut scratch);
    let mut events = Vec::new();
    let mut outcome = BlockOutcome {
        events_survived: timeline.events.len(),
        death_time: None,
    };
    for (i, event) in timeline.events.iter().enumerate() {
        faults.push(event.fault);
        policy.observe_fault(&faults, &mut scratch);
        let mut splits = Vec::new();
        let survivable = match criterion {
            FailureCriterion::PerEventSplit { samples } => {
                let mut rng = SmallRng::seed_from_u64(event.split_seed);
                let mut all_ok = true;
                for _ in 0..samples {
                    sample_split_for_into(&mut rng, &faults, &mut wrong);
                    let ok = policy.recoverable_with(&faults, &wrong, &mut scratch);
                    splits.push(SplitTrace {
                        wrong: wrong.clone(),
                        survivable: ok,
                        note: policy.explain(&faults, &wrong),
                    });
                    if !ok {
                        all_ok = false;
                        break;
                    }
                }
                all_ok
            }
            FailureCriterion::GuaranteedAllData => {
                let ok = policy.guaranteed(&faults);
                splits.push(SplitTrace {
                    wrong: Vec::new(),
                    survivable: ok,
                    note: None,
                });
                ok
            }
        };
        events.push(EventTrace {
            index: i,
            time: event.time,
            fault: event.fault,
            splits,
            died: !survivable,
        });
        if !survivable {
            outcome = BlockOutcome {
                events_survived: i,
                death_time: Some(event.time),
            };
            break;
        }
    }
    BlockTrace {
        policy: policy.name(),
        criterion,
        events,
        outcome,
    }
}

fn criterion_label(criterion: FailureCriterion) -> String {
    match criterion {
        FailureCriterion::PerEventSplit { samples } => format!("per-event-split x{samples}"),
        FailureCriterion::GuaranteedAllData => "guaranteed-all-data".to_owned(),
    }
}

fn classes(wrong: &[bool]) -> String {
    wrong.iter().map(|&w| if w { 'W' } else { 'R' }).collect()
}

impl BlockTrace {
    /// Renders the replay as a deterministic text report (pure function of
    /// the trace and `cfg`; byte-identical across runs of the same seed).
    #[must_use]
    pub fn report(&self, cfg: &BlockTraceConfig) -> String {
        let mut out = String::new();
        out.push_str(&format!("policy:    {}\n", self.policy));
        out.push_str(&format!(
            "target:    page {} block {} (seed {})\n",
            cfg.page, cfg.block, cfg.seed
        ));
        out.push_str(&format!("criterion: {}\n", criterion_label(self.criterion)));
        out.push_str(&format!(
            "events:    {} fault arrival(s) replayed\n\n",
            self.events.len()
        ));
        for event in &self.events {
            let kind = match event.fault.kind {
                Stuckness::Full => String::new(),
                Stuckness::Partial { weak_success_q8 } => {
                    format!(" (partial, weak q8={weak_success_q8})")
                }
            };
            out.push_str(&format!(
                "event {:>3}  t={}  bit {} stuck-at-{}{kind}\n",
                event.index,
                event.time,
                event.fault.offset,
                u8::from(event.fault.stuck)
            ));
            let total = event.splits.len();
            for (s, split) in event.splits.iter().enumerate() {
                let verdict = if split.survivable {
                    "recoverable"
                } else {
                    "DEAD"
                };
                let classes = if split.wrong.is_empty() {
                    "(all data words)".to_owned()
                } else {
                    classes(&split.wrong)
                };
                out.push_str(&format!(
                    "  split {}/{total}  classes {classes}  -> {verdict}",
                    s + 1
                ));
                if let Some(note) = &split.note {
                    out.push_str(&format!("  [{note}]"));
                }
                out.push('\n');
            }
        }
        out.push('\n');
        match self.outcome.death_time {
            Some(t) => out.push_str(&format!(
                "verdict: died at event {} (t={}), after recovering {} fault(s)\n",
                self.outcome.events_survived, t, self.outcome.events_survived
            )),
            None => out.push_str(&format!(
                "verdict: outlived its {}-event timeline\n",
                self.outcome.events_survived
            )),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::evaluate_block;

    /// Tolerates up to `cap` stuck-at-Wrong faults, with narration.
    struct WrongCap {
        cap: usize,
    }

    impl RecoveryPolicy for WrongCap {
        fn name(&self) -> String {
            format!("wrong-cap{}", self.cap)
        }
        fn overhead_bits(&self) -> usize {
            0
        }
        fn block_bits(&self) -> usize {
            512
        }
        fn recoverable(&self, _faults: &[Fault], wrong: &[bool]) -> bool {
            wrong.iter().filter(|&&w| w).count() <= self.cap
        }
        fn explain(&self, _faults: &[Fault], wrong: &[bool]) -> Option<String> {
            Some(format!(
                "{} of {} wrong (cap {})",
                wrong.iter().filter(|&&w| w).count(),
                wrong.len(),
                self.cap
            ))
        }
    }

    fn cfg() -> BlockTraceConfig {
        BlockTraceConfig {
            seed: 42,
            page_bits: 4096 * 8,
            block_bits: 512,
            criterion: FailureCriterion::default(),
            page: 3,
            block: 12,
            partial_fraction: 0.0,
        }
    }

    #[test]
    fn derive_rejects_bad_geometry() {
        let mut bad = cfg();
        bad.block = 64; // a 32768-bit page holds 64 512-bit blocks: 0..=63
        assert!(derive_block_timeline(&bad).is_err());
        bad = cfg();
        bad.block_bits = 500;
        assert!(derive_block_timeline(&bad).is_err());
    }

    #[test]
    fn derived_timeline_matches_engine_sampling() {
        let cfg = cfg();
        let a = derive_block_timeline(&cfg).unwrap();
        let b = derive_block_timeline(&cfg).unwrap();
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
        // The same block sampled through the page path directly.
        let sampler = TimelineSampler::paper_default(cfg.block_bits);
        let mut rng = TimelineSampler::page_rng(cfg.seed, cfg.page as u64);
        let page = sampler.sample_page(&mut rng, cfg.page_bits / cfg.block_bits);
        assert_eq!(a.events, page.blocks[cfg.block].events);
    }

    #[test]
    fn replay_outcome_matches_the_engine() {
        let cfg = cfg();
        let timeline = derive_block_timeline(&cfg).unwrap();
        for cap in [0, 2, 5, 100] {
            let policy = WrongCap { cap };
            let trace = trace_block(&policy, &timeline, cfg.criterion);
            let engine = evaluate_block(&policy, &timeline, cfg.criterion);
            assert_eq!(trace.outcome, engine, "cap={cap}");
            // The trace narrates exactly the arrivals the engine consumed.
            let consumed = match engine.death_time {
                Some(_) => engine.events_survived + 1,
                None => engine.events_survived,
            };
            assert_eq!(trace.events.len(), consumed);
            if let Some(last) = trace.events.last() {
                assert_eq!(last.died, engine.death_time.is_some());
            }
        }
    }

    #[test]
    fn report_is_byte_identical_across_replays() {
        let cfg = cfg();
        let policy = WrongCap { cap: 3 };
        let render = || {
            let timeline = derive_block_timeline(&cfg).unwrap();
            trace_block(&policy, &timeline, cfg.criterion).report(&cfg)
        };
        let a = render();
        assert_eq!(a, render());
        assert!(a.contains("policy:    wrong-cap3"));
        assert!(a.contains("page 3 block 12 (seed 42)"));
        assert!(a.contains("wrong (cap 3)"));
        assert!(a.contains("verdict:"));
    }

    #[test]
    fn partial_fraction_replay_matches_the_engine() {
        let cfg = BlockTraceConfig {
            partial_fraction: 0.5,
            ..cfg()
        };
        let timeline = derive_block_timeline(&cfg).unwrap();
        assert!(timeline.events.iter().any(|e| e.fault.is_partial()));
        assert!(timeline.events.iter().any(|e| !e.fault.is_partial()));
        for cap in [2, 1000] {
            let policy = WrongCap { cap };
            let trace = trace_block(&policy, &timeline, cfg.criterion);
            let engine = evaluate_block(&policy, &timeline, cfg.criterion);
            assert_eq!(trace.outcome, engine, "cap={cap}");
        }
        // An outliving replay narrates every arrival, including the
        // partially stuck ones, with their kind annotated.
        let trace = trace_block(&WrongCap { cap: 1000 }, &timeline, cfg.criterion);
        assert!(trace.report(&cfg).contains("partial, weak q8=128"));
        // And a zero-fraction replay of the same coordinates is the classic
        // timeline (different draws, no partial faults).
        let classic = derive_block_timeline(&BlockTraceConfig {
            partial_fraction: 0.0,
            ..cfg
        })
        .unwrap();
        assert!(classic.events.iter().all(|e| !e.fault.is_partial()));
    }

    #[test]
    fn guaranteed_criterion_traces_without_splits() {
        let cfg = BlockTraceConfig {
            criterion: FailureCriterion::GuaranteedAllData,
            ..cfg()
        };
        let timeline = derive_block_timeline(&cfg).unwrap();
        let policy = WrongCap { cap: 2 };
        let trace = trace_block(&policy, &timeline, cfg.criterion);
        let engine = evaluate_block(&policy, &timeline, cfg.criterion);
        assert_eq!(trace.outcome, engine);
        assert!(trace
            .events
            .iter()
            .all(|e| e.splits.len() == 1 && e.splits[0].wrong.is_empty()));
        assert!(trace.report(&cfg).contains("(all data words)"));
    }
}
