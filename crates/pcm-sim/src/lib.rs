//! Phase-change-memory device and Monte Carlo lifetime simulator.
//!
//! This crate is the *substrate* of the Aegis reproduction: everything the
//! MICRO-46 paper's evaluation (§3.1) assumes about the memory device lives
//! here, independent of any particular recovery scheme.
//!
//! ## Device model
//!
//! - [`Cell`]: one PCM cell with a finite write endurance. After its lifetime
//!   is exhausted it becomes *stuck at* its current value: still readable,
//!   never writable again (the defining property the partition-and-inversion
//!   schemes exploit).
//! - [`PcmBlock`]: a row of cells — the protection granularity (128–512
//!   bits). Supports differential writes (only cells whose stored value
//!   differs from the target are programmed) and verification reads.
//! - [`codec::StuckAtCodec`]: the interface every recovery scheme implements
//!   to store logical data in a possibly-faulty block.
//!
//! ## Stochastic model (paper §3.1)
//!
//! - Cell lifetimes are i.i.d. `Normal(1e8, 25% CV)` ([`LifetimeModel`]).
//! - A read-before-write excludes ~50% of cells from each write
//!   ([`WearModel`]), so a cell's fault *arrival time*, measured in block
//!   writes, is `lifetime / participation`.
//! - Perfect wear leveling spreads writes uniformly over live pages;
//!   [`montecarlo::survival_curve`] converts per-page lifetimes into the
//!   chip-level survival curve exactly, without a per-write loop.
//!
//! ## Event-driven Monte Carlo
//!
//! [`montecarlo`] samples per-page fault *timelines* ([`timeline`]) and asks
//! a scheme's [`policy::RecoveryPolicy`] whether each newly arrived fault is
//! recoverable. All schemes are evaluated on the same timelines (common
//! random numbers), so cross-scheme comparisons are stable at moderate page
//! counts.
//!
//! # Examples
//!
//! ```
//! use pcm_sim::{PcmBlock, LifetimeModel};
//! use sim_rng::{SeedableRng, SmallRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let lifetimes = LifetimeModel::paper_default();
//! let mut block = PcmBlock::with_lifetimes(512, |_| lifetimes.sample(&mut rng) as u64);
//! assert_eq!(block.len(), 512);
//! assert!(block.faults().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod cell;
mod error;
mod fault;
mod lifetime;

pub mod chip;
pub mod codec;
pub mod failcache;
pub mod forensics;
pub mod montecarlo;
pub mod policy;
pub mod securerefresh;
pub mod stats;
pub mod timeline;
pub mod trace;
pub mod wearlevel;

pub use block::PcmBlock;
pub use cell::Cell;
pub use error::UncorrectableError;
pub use fault::{
    classify_split, sample_split, sample_split_for, sample_split_for_into, sample_split_into,
    Fault, Stuckness,
};
pub use lifetime::{LifetimeModel, WearModel};
