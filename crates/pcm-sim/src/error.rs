//! Error types shared by the simulator and the recovery codecs.

use std::error::Error;
use std::fmt;

/// A write could not be completed correctly: the recovery scheme exhausted
/// its mechanisms (re-partitions, pointers, inversion flags…) and at least
/// one cell still reads back the wrong value.
///
/// This is the event that ends a data block's life in the paper's
/// methodology; a memory page dies with its first block that reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UncorrectableError {
    scheme: String,
    faults: usize,
    detail: String,
}

impl UncorrectableError {
    /// Creates an error for `scheme` observing `faults` faults, with a
    /// scheme-specific explanation of what was exhausted.
    #[must_use]
    pub fn new(scheme: impl Into<String>, faults: usize, detail: impl Into<String>) -> Self {
        Self {
            scheme: scheme.into(),
            faults,
            detail: detail.into(),
        }
    }

    /// The recovery scheme that gave up.
    #[must_use]
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Number of faults present in the block when the write failed.
    #[must_use]
    pub fn faults(&self) -> usize {
        self.faults
    }
}

impl fmt::Display for UncorrectableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} could not correct a write with {} stuck-at faults: {}",
            self.scheme, self.faults, self.detail
        )
    }
}

impl Error for UncorrectableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_scheme_and_count() {
        let e = UncorrectableError::new("aegis 17x31", 9, "all 31 slopes collide");
        let msg = e.to_string();
        assert!(msg.contains("aegis 17x31"));
        assert!(msg.contains('9'));
        assert_eq!(e.scheme(), "aegis 17x31");
        assert_eq!(e.faults(), 9);
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<UncorrectableError>();
    }
}
