//! Event-driven Monte Carlo engine.
//!
//! Reproduces the paper's §3.1 methodology: a chip of 4 KB pages, each made
//! of 128–512-bit data blocks, written continuously under perfect wear
//! leveling until every page is dead. Instead of issuing ~10^11 writes, the
//! engine samples per-page fault [timelines](crate::timeline) and asks a
//! scheme's [`RecoveryPolicy`] whether each fault arrival is survivable.
//!
//! The key outputs map one-to-one onto the paper's figures:
//!
//! - [`MemoryRun::mean_faults_recovered`] → Figure 5 / 11 bars;
//! - [`MemoryRun::lifetime_improvement`] → Figure 6 / 12 bars
//!   (and ÷ overhead bits → Figures 7 / 13);
//! - [`block_failure_cdf`] → Figure 8 curves;
//! - [`survival_curve`] / [`half_lifetime`] → Figure 9 curves.

use crate::fault::sample_split_for_into;
use crate::policy::{PolicyScratch, RecoveryPolicy};
use crate::timeline::{BlockTimeline, FaultEvent, PageTimeline, TimelineCache, TimelineSampler};
use crate::Fault;
use sim_rng::SeedableRng;
use sim_rng::SmallRng;
use sim_telemetry::{
    metric_name, Counter, Histogram, PoolWorkerUtil, Registry, StatusWriter, Tracer,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// When is a block considered dead? (See DESIGN.md §3.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCriterion {
    /// At each fault arrival, test the scheme against `samples` random W/R
    /// splits (the split of the revealing write, plus optional extra draws
    /// standing in for nearby writes). `samples = 1` matches the
    /// evaluation style of the SAFER/RDIS/Aegis papers.
    PerEventSplit {
        /// Random splits tested per fault event; the block dies if any
        /// fails.
        samples: u32,
    },
    /// A block survives only while its fault set is recoverable for *every*
    /// data word ([`RecoveryPolicy::guaranteed`]). Stricter; used in
    /// ablations.
    GuaranteedAllData,
}

impl Default for FailureCriterion {
    fn default() -> Self {
        Self::PerEventSplit { samples: 1 }
    }
}

/// Progress callback: `(pages_done, pages_total)`. Called from worker
/// threads, so implementations must be `Sync`; page completion order is
/// nondeterministic but the final call always reports `(total, total)`.
pub type ProgressFn<'a> = dyn Fn(usize, usize) + Sync + 'a;

/// Telemetry handles for the Monte Carlo layer, named
/// `mc.<scheme>.<metric>`. All handles are no-ops when built from a
/// disabled registry, so the engine's hot path stays unchanged.
#[derive(Clone, Default)]
pub struct McTelemetry {
    pages: Counter,
    fault_events: Counter,
    policy_decisions: Counter,
    block_deaths_split: Counter,
    block_deaths_guarantee: Counter,
    blocks_outlived: Counter,
    page_fault_arrivals: Histogram,
    page_lifetime_writes: Histogram,
    /// Pages executed beyond a worker's fair static share
    /// (`pool.<scheme>.pages_stolen`). Scheduling-dependent, so registered
    /// as a *volatile* counter: present in the JSONL stream but excluded
    /// from the deterministic byte-identity contract.
    pool_pages_stolen: Counter,
    /// Batch pulls from the pool's shared counter
    /// (`pool.<scheme>.worker_batches`). Volatile, like `pool_pages_stolen`.
    pool_worker_batches: Counter,
}

impl McTelemetry {
    /// Handles for `scheme` in `registry`.
    #[must_use]
    pub fn for_scheme(registry: &Registry, scheme: &str) -> McTelemetry {
        let counter = |metric: &str| registry.counter(&metric_name("mc", scheme, metric));
        let histogram = |metric: &str| registry.histogram(&metric_name("mc", scheme, metric));
        let volatile =
            |metric: &str| registry.volatile_counter(&metric_name("pool", scheme, metric));
        McTelemetry {
            pages: counter("pages"),
            fault_events: counter("fault_events"),
            policy_decisions: counter("policy_decisions"),
            block_deaths_split: counter("block_deaths_split"),
            block_deaths_guarantee: counter("block_deaths_guarantee"),
            blocks_outlived: counter("blocks_outlived"),
            page_fault_arrivals: histogram("page_fault_arrivals"),
            page_lifetime_writes: histogram("page_lifetime_writes"),
            pool_pages_stolen: volatile("pages_stolen"),
            pool_worker_batches: volatile("worker_batches"),
        }
    }

    /// Feeds one pool run's scheduling statistics into the volatile
    /// `pool.<scheme>.*` counters.
    fn record_pool(&self, stats: &sim_pool::PoolStats) {
        self.pool_pages_stolen.add(stats.stolen);
        self.pool_worker_batches.add(stats.batches);
    }
}

/// Optional observation hooks for a chip run; the default observes
/// nothing and adds no work.
#[derive(Default)]
pub struct RunHooks<'a> {
    /// Metric handles to feed (usually [`McTelemetry::for_scheme`]).
    pub telemetry: Option<McTelemetry>,
    /// Called after each page completes.
    pub progress: Option<&'a ProgressFn<'a>>,
    /// Wall-clock span collector. When enabled, the run opens an
    /// `mc.<scheme>` span, each worker records per-`page` spans into its
    /// private ring, and per-worker pool utilization is captured — all on
    /// the volatile trace sidecar, never the deterministic stream.
    pub tracer: Option<&'a Tracer>,
    /// Live heartbeat sink. When enabled, the run enters an `mc.<scheme>`
    /// phase, reports page completions as phase progress (rate-limited
    /// rewrites of `<run-id>.status.json`), and records the pool's worker
    /// busy fraction — pure liveness, outside the determinism contract.
    pub status: Option<&'a StatusWriter>,
    /// Shared page-timeline cache. When set, workers fetch sampled pages
    /// through [`TimelineCache::get_or_sample`] instead of re-sampling, so
    /// a sweep evaluating several schemes over the same `(seed, width)`
    /// samples each page once. Results are byte-identical with the cache
    /// on or off (see the cache's determinism notes).
    pub timelines: Option<&'a TimelineCache>,
}

/// Outcome of running one policy over one block timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockOutcome {
    /// Fault events survived before death (= faults recovered in this
    /// block).
    pub events_survived: usize,
    /// Time of death in block writes; `None` if the block outlived its
    /// (truncated) timeline.
    pub death_time: Option<f64>,
}

/// Evaluates `policy` over a single block's fault timeline.
pub fn evaluate_block(
    policy: &dyn RecoveryPolicy,
    timeline: &BlockTimeline,
    criterion: FailureCriterion,
) -> BlockOutcome {
    evaluate_block_with(policy, timeline, criterion, None)
}

/// [`evaluate_block`] with optional telemetry: counts fault events seen,
/// every policy-predicate invocation, and the block's fate (death under
/// which criterion, or outliving its timeline).
pub fn evaluate_block_with(
    policy: &dyn RecoveryPolicy,
    timeline: &BlockTimeline,
    criterion: FailureCriterion,
    telemetry: Option<&McTelemetry>,
) -> BlockOutcome {
    evaluate_block_with_scratch(
        policy,
        timeline,
        criterion,
        telemetry,
        &mut PolicyScratch::new(),
    )
}

/// [`evaluate_block_with`] reusing a caller-provided [`PolicyScratch`].
///
/// This is the engine's steady-state form: the fault population, the W/R
/// split, and the policy's working buffers all live in the arena, so
/// evaluating a block allocates nothing after the arena warms up. Results
/// are identical to the allocating form — split sampling consumes the same
/// entropy and policies must decide identically with or without scratch.
pub fn evaluate_block_with_scratch(
    policy: &dyn RecoveryPolicy,
    timeline: &BlockTimeline,
    criterion: FailureCriterion,
    telemetry: Option<&McTelemetry>,
    scratch: &mut PolicyScratch,
) -> BlockOutcome {
    // Detach the driver-owned fault buffer so the policy can borrow the
    // arena's own fields (`flags`, `bytes`, `counts`) mutably during the
    // decision. The split buffer stays in the arena until a branch needs
    // it: the guarantee branch hands the whole arena to the policy, which
    // may enumerate splits out of `scratch.split` itself.
    let mut faults: Vec<Fault> = std::mem::take(&mut scratch.faults);
    faults.clear();
    // A new block begins: any incremental pair state in the arena is stale.
    policy.forget_block(scratch);
    let mut decisions = 0u64;
    let outcome = 'outcome: {
        for (i, event) in timeline.events.iter().enumerate() {
            faults.push(event.fault);
            // Let the policy extend its incremental pair state with the new
            // arrival before the split checks for this population run.
            policy.observe_fault(&faults, scratch);
            let survivable = match criterion {
                FailureCriterion::PerEventSplit { samples } => {
                    let mut wrong: Vec<bool> = std::mem::take(&mut scratch.split);
                    let mut rng = SmallRng::seed_from_u64(event.split_seed);
                    let ok = (0..samples).all(|_| {
                        decisions += 1;
                        // Fault-aware sampling: fully stuck faults consume
                        // exactly one bool (identical stream to the legacy
                        // count-based sampler), partially stuck faults get
                        // their weak-write chance to land on R.
                        sample_split_for_into(&mut rng, &faults, &mut wrong);
                        policy.recoverable_with(&faults, &wrong, scratch)
                    });
                    scratch.split = wrong;
                    ok
                }
                FailureCriterion::GuaranteedAllData => {
                    decisions += 1;
                    policy.guaranteed_with(&faults, scratch)
                }
            };
            if !survivable {
                break 'outcome BlockOutcome {
                    events_survived: i,
                    death_time: Some(event.time),
                };
            }
        }
        BlockOutcome {
            events_survived: timeline.events.len(),
            death_time: None,
        }
    };
    let fault_events = faults.len() as u64;
    scratch.faults = faults;
    if let Some(t) = telemetry {
        t.fault_events.add(fault_events);
        t.policy_decisions.add(decisions);
        match (outcome.death_time, criterion) {
            (None, _) => t.blocks_outlived.incr(),
            (Some(_), FailureCriterion::PerEventSplit { .. }) => t.block_deaths_split.incr(),
            (Some(_), FailureCriterion::GuaranteedAllData) => t.block_deaths_guarantee.incr(),
        }
    }
    outcome
}

/// Outcome of one policy over one page timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageOutcome {
    /// Page death time in page writes (a page write is one write to each of
    /// its blocks): the earliest block death.
    pub death_time: f64,
    /// Fault events (across all blocks) that arrived strictly before death
    /// — the paper's "recoverable faults in a 4KB page".
    pub faults_recovered: usize,
    /// True if some block outlived its truncated timeline, making
    /// `death_time` a lower bound. Should never happen with the default
    /// event cap; surfaced loudly rather than silently.
    pub capped: bool,
}

/// Evaluates `policy` over a page timeline.
pub fn evaluate_page(
    policy: &dyn RecoveryPolicy,
    page: &PageTimeline,
    criterion: FailureCriterion,
) -> PageOutcome {
    evaluate_page_with(policy, page, criterion, None)
}

/// [`evaluate_page`] with optional telemetry: additionally records the
/// page count, the page's total fault arrivals, and its lifetime (in
/// whole page writes) into the `mc.<scheme>.*` histograms.
pub fn evaluate_page_with(
    policy: &dyn RecoveryPolicy,
    page: &PageTimeline,
    criterion: FailureCriterion,
    telemetry: Option<&McTelemetry>,
) -> PageOutcome {
    evaluate_page_with_scratch(
        policy,
        page,
        criterion,
        telemetry,
        &mut PolicyScratch::new(),
    )
}

/// [`evaluate_page_with`] reusing a caller-provided [`PolicyScratch`]
/// across all of the page's blocks (see
/// [`evaluate_block_with_scratch`]).
pub fn evaluate_page_with_scratch(
    policy: &dyn RecoveryPolicy,
    page: &PageTimeline,
    criterion: FailureCriterion,
    telemetry: Option<&McTelemetry>,
    scratch: &mut PolicyScratch,
) -> PageOutcome {
    let mut death_time = f64::INFINITY;
    let mut capped = false;
    for block in &page.blocks {
        let outcome = evaluate_block_with_scratch(policy, block, criterion, telemetry, scratch);
        match outcome.death_time {
            Some(t) => death_time = death_time.min(t),
            None => capped = true,
        }
    }
    // A block that outlived its truncated timeline only matters if it could
    // have died before the earliest real death; its last tracked event is a
    // lower bound witness.
    let capped = capped
        && page
            .blocks
            .iter()
            .any(|b| b.events.last().is_some_and(|e| e.time < death_time));
    let faults_recovered = page
        .blocks
        .iter()
        .flat_map(|b| &b.events)
        .filter(|e| e.time < death_time)
        .count();
    if let Some(t) = telemetry {
        t.pages.incr();
        let arrivals = page.blocks.iter().map(|b| b.events.len()).sum::<usize>();
        t.page_fault_arrivals.record(arrivals as u64);
        if death_time.is_finite() && death_time >= 0.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            t.page_lifetime_writes.record(death_time as u64);
        }
    }
    PageOutcome {
        death_time,
        faults_recovered,
        capped,
    }
}

/// Default number of blocks a worker evaluates in lockstep per batch.
pub const DEFAULT_EVAL_LANES: usize = 8;

/// Blocks per lane-sized batch in the chip-level engine, resolved once per
/// process: `SIM_EVAL_LANES` (clamped to `1..=64`) overrides the default of
/// [`DEFAULT_EVAL_LANES`]. The lane width never affects results — the
/// determinism suite pins byte-identical telemetry across widths — only
/// locality and batching opportunity.
pub fn eval_lanes() -> usize {
    static LANES: OnceLock<usize> = OnceLock::new();
    *LANES.get_or_init(|| {
        std::env::var("SIM_EVAL_LANES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(DEFAULT_EVAL_LANES, |n| n.clamp(1, 64))
    })
}

/// Per-worker arena for the batched engine path: one [`PolicyScratch`] per
/// lane plus the batch bookkeeping, so steady-state evaluation of
/// lane-sized block batches allocates nothing once warm.
#[derive(Debug)]
pub struct BatchScratch {
    /// One policy arena per lane; lane `l` of every batch reuses arena `l`,
    /// so each arena sees one block at a time exactly like the sequential
    /// path (the pair cache self-heals on the block boundary).
    per_lane: Vec<PolicyScratch>,
    /// Per-lane outcomes of the current batch.
    outcomes: Vec<BlockOutcome>,
    /// Lanes still in lockstep (not yet dead or out of events).
    active: Vec<usize>,
}

impl BatchScratch {
    /// An arena evaluating `lanes` blocks per batch.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "a batch needs at least one lane");
        Self {
            per_lane: (0..lanes).map(|_| PolicyScratch::new()).collect(),
            outcomes: Vec::with_capacity(lanes),
            active: Vec::with_capacity(lanes),
        }
    }

    /// An arena sized by [`eval_lanes`].
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(eval_lanes())
    }

    /// Lanes per batch.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.per_lane.len()
    }
}

/// Advances one lane by one fault event; returns whether the lane
/// survived it. This is the per-event body of
/// [`evaluate_block_with_scratch`], factored out so the batched and
/// single-block paths run literally the same code (same entropy, same
/// policy calls, same decision count).
fn step_lane(
    policy: &dyn RecoveryPolicy,
    event: &FaultEvent,
    criterion: FailureCriterion,
    scratch: &mut PolicyScratch,
    decisions: &mut u64,
) -> bool {
    let mut faults: Vec<Fault> = std::mem::take(&mut scratch.faults);
    faults.push(event.fault);
    policy.observe_fault(&faults, scratch);
    let survivable = match criterion {
        FailureCriterion::PerEventSplit { samples } => {
            let mut wrong: Vec<bool> = std::mem::take(&mut scratch.split);
            let mut rng = SmallRng::seed_from_u64(event.split_seed);
            let ok = (0..samples).all(|_| {
                *decisions += 1;
                sample_split_for_into(&mut rng, &faults, &mut wrong);
                policy.recoverable_with(&faults, &wrong, scratch)
            });
            scratch.split = wrong;
            ok
        }
        FailureCriterion::GuaranteedAllData => {
            *decisions += 1;
            policy.guaranteed_with(&faults, scratch)
        }
    };
    scratch.faults = faults;
    survivable
}

/// Evaluates up to `lanes` blocks in lockstep — the batched twin of
/// [`evaluate_block_with_scratch`].
///
/// All lanes advance event index by event index. Each lane's decisions
/// depend only on its own fault population, split RNG (re-seeded per event
/// from [`FaultEvent::split_seed`]) and per-lane arena, so interleaving
/// lanes cannot change any lane's verdict: outcome `l` is exactly what
/// [`evaluate_block_with_scratch`] returns for `blocks[l]`.
///
/// Per-lane fault divergence — a lane dying or running out of events while
/// others continue — is handled by *compacting* the diverged lane out of
/// the active set; when the batch thins to a single survivor, its remaining
/// events finish on the plain single-block loop. Telemetry totals are
/// order-independent sums, so the batched path feeds the exact counter
/// values of the sequential path.
///
/// # Panics
///
/// Panics if `blocks.len()` exceeds the arena's lane count.
pub fn evaluate_block_batch_with_scratch<'a>(
    policy: &dyn RecoveryPolicy,
    blocks: &[BlockTimeline],
    criterion: FailureCriterion,
    telemetry: Option<&McTelemetry>,
    batch: &'a mut BatchScratch,
) -> &'a [BlockOutcome] {
    let BatchScratch {
        per_lane,
        outcomes,
        active,
    } = batch;
    assert!(
        blocks.len() <= per_lane.len(),
        "batch of {} blocks exceeds {} lanes",
        blocks.len(),
        per_lane.len()
    );
    outcomes.clear();
    outcomes.resize(
        blocks.len(),
        BlockOutcome {
            events_survived: 0,
            death_time: None,
        },
    );
    active.clear();
    active.extend(0..blocks.len());
    let mut decisions = 0u64;
    let mut fault_events = 0u64;
    let mut outlived = 0u64;
    let mut died = 0u64;
    for scratch in per_lane.iter_mut().take(blocks.len()) {
        scratch.faults.clear();
        // A new block begins in every lane: stale incremental pair state
        // from the previous batch must not leak in.
        policy.forget_block(scratch);
    }
    let mut event_idx = 0usize;
    while active.len() > 1 {
        let idx = event_idx;
        active.retain(|&lane| {
            let scratch = &mut per_lane[lane];
            match blocks[lane].events.get(idx) {
                // Lane out of events: it outlived its (truncated) timeline.
                None => {
                    outcomes[lane] = BlockOutcome {
                        events_survived: idx,
                        death_time: None,
                    };
                    fault_events += scratch.faults.len() as u64;
                    outlived += 1;
                    false
                }
                Some(event) => {
                    if step_lane(policy, event, criterion, scratch, &mut decisions) {
                        true
                    } else {
                        outcomes[lane] = BlockOutcome {
                            events_survived: idx,
                            death_time: Some(event.time),
                        };
                        fault_events += scratch.faults.len() as u64;
                        died += 1;
                        false
                    }
                }
            }
        });
        event_idx += 1;
    }
    // Lone survivor: fall back to the single-block path for its tail.
    if let Some(&lane) = active.first() {
        let scratch = &mut per_lane[lane];
        let block = &blocks[lane];
        let mut outcome = BlockOutcome {
            events_survived: block.events.len(),
            death_time: None,
        };
        let mut alive = true;
        for (i, event) in block.events.iter().enumerate().skip(event_idx) {
            if !step_lane(policy, event, criterion, scratch, &mut decisions) {
                outcome = BlockOutcome {
                    events_survived: i,
                    death_time: Some(event.time),
                };
                alive = false;
                break;
            }
        }
        outcomes[lane] = outcome;
        fault_events += scratch.faults.len() as u64;
        if alive {
            outlived += 1;
        } else {
            died += 1;
        }
        active.clear();
    }
    if let Some(t) = telemetry {
        t.fault_events.add(fault_events);
        t.policy_decisions.add(decisions);
        t.blocks_outlived.add(outlived);
        match criterion {
            FailureCriterion::PerEventSplit { .. } => t.block_deaths_split.add(died),
            FailureCriterion::GuaranteedAllData => t.block_deaths_guarantee.add(died),
        }
    }
    outcomes
}

/// Batched twin of [`evaluate_page_with_scratch`]: the page's blocks are
/// pulled through [`evaluate_block_batch_with_scratch`] in lane-sized
/// chunks (the final chunk may be partial). Outcome aggregation is
/// identical to the sequential form, so the returned [`PageOutcome`] — and
/// all telemetry — is byte-identical lane width by lane width.
pub fn evaluate_page_batched_with_scratch(
    policy: &dyn RecoveryPolicy,
    page: &PageTimeline,
    criterion: FailureCriterion,
    telemetry: Option<&McTelemetry>,
    batch: &mut BatchScratch,
) -> PageOutcome {
    let lanes = batch.lanes();
    let mut death_time = f64::INFINITY;
    let mut any_outlived = false;
    for chunk in page.blocks.chunks(lanes) {
        for outcome in evaluate_block_batch_with_scratch(policy, chunk, criterion, telemetry, batch)
        {
            match outcome.death_time {
                Some(t) => death_time = death_time.min(t),
                None => any_outlived = true,
            }
        }
    }
    // Same capping rule as the sequential path: truncation only matters if
    // an outlived block could have died before the earliest real death.
    let capped = any_outlived
        && page
            .blocks
            .iter()
            .any(|b| b.events.last().is_some_and(|e| e.time < death_time));
    let faults_recovered = page
        .blocks
        .iter()
        .flat_map(|b| &b.events)
        .filter(|e| e.time < death_time)
        .count();
    if let Some(t) = telemetry {
        t.pages.incr();
        let arrivals = page.blocks.iter().map(|b| b.events.len()).sum::<usize>();
        t.page_fault_arrivals.record(arrivals as u64);
        if death_time.is_finite() && death_time >= 0.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            t.page_lifetime_writes.record(death_time as u64);
        }
    }
    PageOutcome {
        death_time,
        faults_recovered,
        capped,
    }
}

/// Configuration of a chip-level Monte Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Pages simulated (the paper's 8 MB chip has 2048 pages of 4 KB).
    pub pages: usize,
    /// Bits per page (4 KB = 32768).
    pub page_bits: usize,
    /// Bits per protected data block (256 or 512 in the paper).
    pub block_bits: usize,
    /// Death criterion.
    pub criterion: FailureCriterion,
    /// Master seed; every policy evaluated with the same config sees the
    /// identical fault timelines.
    pub seed: u64,
    /// Worker threads; `None` defers to the `SIM_THREADS` environment
    /// variable and then to the machine's available parallelism (see
    /// [`sim_pool::resolve_threads`]). Never affects results, only wall
    /// clock.
    pub threads: Option<usize>,
    /// Fraction of dying cells that are only *partially* stuck (still able
    /// to store one value reliably); `0.0` is the classic all-fully-stuck
    /// model and leaves the RNG streams byte-identical to historical runs.
    /// Partially stuck cells carry the default weak-write success
    /// probability ([`crate::timeline::DEFAULT_WEAK_SUCCESS_Q8`]).
    pub partial_fraction: f64,
}

impl SimConfig {
    /// The paper's full-scale setup: 8 MB of 4 KB pages.
    #[must_use]
    pub fn paper_8mb(block_bits: usize, seed: u64) -> Self {
        Self {
            pages: 2048,
            page_bits: 4096 * 8,
            block_bits,
            criterion: FailureCriterion::default(),
            seed,
            threads: None,
            partial_fraction: 0.0,
        }
    }

    /// A scaled-down setup for quick runs and benches.
    #[must_use]
    pub fn scaled(pages: usize, block_bits: usize, seed: u64) -> Self {
        Self {
            pages,
            page_bits: 4096 * 8,
            block_bits,
            criterion: FailureCriterion::default(),
            seed,
            threads: None,
            partial_fraction: 0.0,
        }
    }

    /// Data blocks per page.
    ///
    /// # Panics
    ///
    /// Panics if the block width does not divide the page width.
    #[must_use]
    pub fn blocks_per_page(&self) -> usize {
        assert_eq!(
            self.page_bits % self.block_bits,
            0,
            "block width must divide page width"
        );
        self.page_bits / self.block_bits
    }
}

/// Results of a chip-level run of one policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryRun {
    /// Per-page death times under the policy, in page writes.
    pub page_lifetimes: Vec<f64>,
    /// Per-page death times without any protection (first cell failure).
    pub unprotected_lifetimes: Vec<f64>,
    /// Per-page recoverable-fault counts.
    pub faults_recovered: Vec<usize>,
    /// Pages whose death time was capped by timeline truncation (expected
    /// 0; a non-zero value means the event cap must be raised).
    pub capped_pages: usize,
}

impl MemoryRun {
    /// Mean recoverable faults per page (Figure 5 / 11 metric).
    #[must_use]
    pub fn mean_faults_recovered(&self) -> f64 {
        crate::stats::mean_usize(&self.faults_recovered)
    }

    /// Mean page lifetime in page writes.
    #[must_use]
    pub fn mean_lifetime(&self) -> f64 {
        crate::stats::mean(&self.page_lifetimes)
    }

    /// Mean unprotected page lifetime in page writes.
    #[must_use]
    pub fn mean_unprotected_lifetime(&self) -> f64 {
        crate::stats::mean(&self.unprotected_lifetimes)
    }

    /// Lifetime improvement factor over the unprotected page
    /// (Figure 6 metric; Figure 12 reports `(x − 1) · 100%`).
    #[must_use]
    pub fn lifetime_improvement(&self) -> f64 {
        self.mean_lifetime() / self.mean_unprotected_lifetime()
    }

    /// Streaming moments over per-page lifetimes, quantized to whole page
    /// writes (the same flooring the `page_lifetime_writes` histogram
    /// applies) so the accumulator keeps the exact integer power sums
    /// that make shard merges and resumed runs bit-identical. Non-finite
    /// death times (capped pages) are skipped, matching the histogram.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn lifetime_moments(&self) -> sim_telemetry::Moments {
        let mut m = sim_telemetry::Moments::new();
        for &t in &self.page_lifetimes {
            if t.is_finite() && t >= 0.0 {
                m.push(t as u64);
            }
        }
        m
    }

    /// Streaming moments over per-page recoverable-fault counts
    /// (Figure 5 / 8 metric) — exact, the counts are integers already.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn faults_moments(&self) -> sim_telemetry::Moments {
        let mut m = sim_telemetry::Moments::new();
        for &f in &self.faults_recovered {
            m.push(f as u64);
        }
        m
    }
}

/// Runs `policy` over a simulated chip, in parallel across pages.
///
/// Timelines are derived deterministically from `cfg.seed` and the page
/// index, so runs with different policies (or thread counts) see identical
/// randomness.
pub fn run_memory(policy: &dyn RecoveryPolicy, cfg: &SimConfig) -> MemoryRun {
    run_memory_with(policy, cfg, &RunHooks::default())
}

/// [`run_memory`] with observation [`RunHooks`]: telemetry counters flow
/// into `hooks.telemetry` and `hooks.progress` is called as pages finish.
///
/// The hooks never influence the simulation — results are byte-identical
/// with hooks on or off (telemetry totals are order-independent sums).
///
/// Pages are scheduled dynamically over `cfg.threads` workers by
/// [`sim_pool::run_indexed`]: page lifetimes vary ~10×, so workers pull
/// small index batches from a shared counter instead of owning static
/// chunks. Each page's randomness is derived from `(cfg.seed, page_idx)`
/// and results are written by index, so the thread count and stealing
/// order never change the output.
pub fn run_memory_with(
    policy: &dyn RecoveryPolicy,
    cfg: &SimConfig,
    hooks: &RunHooks<'_>,
) -> MemoryRun {
    run_memory_range_with(policy, cfg, 0, cfg.pages, hooks)
}

/// [`run_memory_with`] restricted to the global pages `start..end`.
///
/// Because every page's randomness is the `substream_seed(cfg.seed,
/// page_idx)` substream (see [`TimelineSampler::page_rng`]), evaluating a
/// sub-range produces exactly the per-page results the full run would
/// produce for those indices — no RNG state crosses page boundaries. This
/// is the primitive under both checkpoint/resume (a resumed run continues
/// from the page high-water mark) and sharding (shard `i` of `K` runs the
/// stripe `[i·P/K, (i+1)·P/K)`); concatenating the ranges in index order
/// is byte-identical to one uninterrupted call over `0..cfg.pages`.
///
/// `cfg.pages` stays the *global* page count: progress reports and
/// telemetry denominators describe positions in the full run, so a resumed
/// run reports `start+1..=end` of `cfg.pages`.
pub fn run_memory_range_with(
    policy: &dyn RecoveryPolicy,
    cfg: &SimConfig,
    start: usize,
    end: usize,
    hooks: &RunHooks<'_>,
) -> MemoryRun {
    assert_eq!(
        policy.block_bits(),
        cfg.block_bits,
        "policy protects {}-bit blocks but the config uses {}-bit blocks",
        policy.block_bits(),
        cfg.block_bits
    );
    assert!(
        start <= end && end <= cfg.pages,
        "page range {start}..{end} out of bounds for {} pages",
        cfg.pages
    );
    let count = end - start;
    // A zero partial fraction skips the kind draw entirely, so legacy
    // configs keep their historical timelines bit for bit.
    let sampler = TimelineSampler::paper_default(cfg.block_bits).with_partial_mix(
        cfg.partial_fraction,
        crate::timeline::DEFAULT_WEAK_SUCCESS_Q8,
    );
    let blocks_per_page = cfg.blocks_per_page();
    let threads = sim_pool::resolve_threads(cfg.threads);
    let done = AtomicUsize::new(0);
    let telemetry = hooks.telemetry.as_ref();
    let progress = hooks.progress;
    let status = hooks.status.filter(|s| s.is_enabled());
    if let Some(status) = status {
        status.begin_phase(&format!("mc.{}", policy.name()));
    }

    let timelines = hooks.timelines;
    // The identical per-page body runs under both scheduling paths, so
    // tracing can only add spans around it, never change what it computes.
    let eval_page = |scratch: &mut BatchScratch, page_idx: usize| {
        let page = match timelines {
            Some(cache) => {
                cache.get_or_sample(&sampler, cfg.seed, page_idx as u64, blocks_per_page)
            }
            None => {
                let mut rng = TimelineSampler::page_rng(cfg.seed, page_idx as u64);
                Arc::new(sampler.sample_page(&mut rng, blocks_per_page))
            }
        };
        let outcome =
            evaluate_page_batched_with_scratch(policy, &page, cfg.criterion, telemetry, scratch);
        // Advance completion unconditionally so the count can never
        // disagree with the telemetry pages counter, then report it.
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(report) = progress {
            report(start + finished, cfg.pages);
        }
        if let Some(status) = status {
            status.phase_progress((start + finished) as u64);
        }
        (
            outcome.death_time,
            page.first_cell_death(),
            outcome.faults_recovered,
            outcome.capped,
        )
    };

    let tracer = hooks.tracer.filter(|t| t.is_enabled());
    let (results, stats) = match (tracer, status) {
        (None, None) => {
            sim_pool::run_indexed(threads, count, BatchScratch::from_env, |scratch, idx| {
                eval_page(scratch, start + idx)
            })
        }
        // Status heartbeats without tracing still need the timed pool
        // variant for the worker busy fraction; results are identical.
        (None, Some(status)) => {
            let (results, stats, workers) = sim_pool::run_indexed_stats(
                threads,
                count,
                BatchScratch::from_env,
                |scratch, idx| eval_page(scratch, start + idx),
            );
            status.set_busy(sim_pool::busy_fraction(&workers));
            (results, stats)
        }
        (Some(tracer), _) => {
            let phase_name = format!("mc.{}", policy.name());
            let phase = tracer.span(&phase_name);
            let parent = Some(phase.id());
            let (results, stats, workers) = sim_pool::run_indexed_stats(
                threads,
                count,
                || (BatchScratch::from_env(), tracer.worker(parent)),
                |(scratch, trace), idx| {
                    let span = trace.begin("page");
                    let out = eval_page(scratch, start + idx);
                    trace.end(span);
                    out
                },
            );
            drop(phase);
            if let Some(status) = status {
                status.set_busy(sim_pool::busy_fraction(&workers));
            }
            let utils: Vec<PoolWorkerUtil> = workers
                .into_iter()
                .map(|w| PoolWorkerUtil {
                    worker: w.worker,
                    tasks: w.tasks,
                    batches: w.batches,
                    busy_ns: w.busy_ns,
                    idle_ns: w.idle_ns,
                    pull_ns: w.pull_ns,
                })
                .collect();
            tracer.record_pool(&phase_name, utils);
            (results, stats)
        }
    };
    debug_assert_eq!(done.load(Ordering::Relaxed), count);
    if let Some(t) = telemetry {
        t.record_pool(&stats);
    }

    let mut run = MemoryRun::default();
    for (death, unprotected, faults, capped) in results {
        run.page_lifetimes.push(death);
        run.unprotected_lifetimes.push(unprotected);
        run.faults_recovered.push(faults);
        run.capped_pages += usize::from(capped);
    }
    run
}

/// Survival curve of a chip under perfect wear leveling over *live* pages.
///
/// Input: per-page intrinsic lifetimes (writes each page can absorb).
/// Output: `(global_writes, surviving_fraction)` breakpoints. Because the
/// write stream spreads over surviving pages only, the global write count at
/// which the `k`-th page dies is `Σ_{i≤k} (N−i+1)·(T(i) − T(i−1))` over the
/// sorted lifetimes — an exact transform, no per-write loop.
#[must_use]
pub fn survival_curve(page_lifetimes: &[f64]) -> Vec<(f64, f64)> {
    let n = page_lifetimes.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sorted = page_lifetimes.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut curve = Vec::with_capacity(n + 1);
    curve.push((0.0, 1.0));
    let mut global = 0.0;
    let mut prev = 0.0;
    for (i, &t) in sorted.iter().enumerate() {
        global += (n - i) as f64 * (t - prev);
        prev = t;
        curve.push((global, (n - i - 1) as f64 / n as f64));
    }
    curve
}

/// Global page writes at which half the pages have died (the paper's "half
/// lifetime" metric from Figure 9).
///
/// # Panics
///
/// Panics on an empty input.
#[must_use]
pub fn half_lifetime(page_lifetimes: &[f64]) -> f64 {
    assert!(!page_lifetimes.is_empty(), "no pages simulated");
    let curve = survival_curve(page_lifetimes);
    curve
        .iter()
        .find(|&&(_, alive)| alive <= 0.5)
        .map(|&(writes, _)| writes)
        .expect("survival curve always reaches 0")
}

/// Distribution of block death fault-counts for Figure 8.
#[derive(Debug, Clone, Default)]
pub struct FailureCdf {
    /// `histogram[f]` = blocks that died exactly upon their `f`-th fault.
    pub histogram: Vec<usize>,
    /// Blocks simulated.
    pub trials: usize,
}

impl FailureCdf {
    /// `P(block has failed | f faults occurred)` for `f = 0..=max`.
    #[must_use]
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0usize;
        self.histogram
            .iter()
            .map(|&h| {
                acc += h;
                acc as f64 / self.trials as f64
            })
            .collect()
    }
}

/// Simulates `trials` independent blocks, returning each block's outcome.
///
/// Block `i` is derived deterministically from `(seed, i)`, so different
/// policies evaluated with the same arguments see identical fault
/// timelines.
pub fn block_outcomes(
    policy: &dyn RecoveryPolicy,
    criterion: FailureCriterion,
    trials: usize,
    seed: u64,
) -> Vec<BlockOutcome> {
    block_outcomes_with_threads(policy, criterion, trials, seed, None)
}

/// [`block_outcomes`] with an explicit worker-thread override (`None`
/// defers to `SIM_THREADS`, then available parallelism). Trials are
/// dynamically scheduled by [`sim_pool::run_indexed`]; the thread count
/// never affects the outcomes.
pub fn block_outcomes_with_threads(
    policy: &dyn RecoveryPolicy,
    criterion: FailureCriterion,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
) -> Vec<BlockOutcome> {
    let sampler = TimelineSampler::paper_default(policy.block_bits());
    let threads = sim_pool::resolve_threads(threads);
    let (outcomes, _stats) =
        sim_pool::run_indexed(threads, trials, PolicyScratch::new, |scratch, i| {
            let mut rng = TimelineSampler::page_rng(seed, i as u64);
            let tl = sampler.sample_block(&mut rng);
            evaluate_block_with_scratch(policy, &tl, criterion, None, scratch)
        });
    outcomes
}

/// Simulates `trials` independent blocks and records the fault count at
/// which each dies (Figure 8).
pub fn block_failure_cdf(
    policy: &dyn RecoveryPolicy,
    criterion: FailureCriterion,
    trials: usize,
    seed: u64,
) -> FailureCdf {
    block_failure_cdf_with_threads(policy, criterion, trials, seed, None)
}

/// [`block_failure_cdf`] with an explicit worker-thread override (see
/// [`block_outcomes_with_threads`]).
pub fn block_failure_cdf_with_threads(
    policy: &dyn RecoveryPolicy,
    criterion: FailureCriterion,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
) -> FailureCdf {
    let sampler = TimelineSampler::paper_default(policy.block_bits());
    let mut histogram = vec![0usize; sampler.max_events() + 1];
    for outcome in block_outcomes_with_threads(policy, criterion, trials, seed, threads) {
        if outcome.death_time.is_some() {
            let slot = (outcome.events_survived + 1).min(histogram.len() - 1);
            histogram[slot] += 1;
        }
    }
    FailureCdf { histogram, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::FaultEvent;

    /// Policy that tolerates up to `cap` faults regardless of data.
    struct CapPolicy {
        cap: usize,
        bits: usize,
    }

    impl RecoveryPolicy for CapPolicy {
        fn name(&self) -> String {
            format!("cap{}", self.cap)
        }
        fn overhead_bits(&self) -> usize {
            0
        }
        fn block_bits(&self) -> usize {
            self.bits
        }
        fn recoverable(&self, faults: &[Fault], wrong: &[bool]) -> bool {
            assert_eq!(faults.len(), wrong.len());
            faults.len() <= self.cap
        }
        fn guaranteed(&self, faults: &[Fault]) -> bool {
            faults.len() <= self.cap
        }
    }

    fn timeline(times: &[f64]) -> BlockTimeline {
        BlockTimeline {
            events: times
                .iter()
                .enumerate()
                .map(|(i, &t)| FaultEvent {
                    time: t,
                    fault: Fault::new(i, false),
                    split_seed: i as u64,
                })
                .collect(),
        }
    }

    #[test]
    fn block_dies_at_capacity_exceeded() {
        let policy = CapPolicy { cap: 2, bits: 512 };
        let outcome = evaluate_block(
            &policy,
            &timeline(&[10.0, 20.0, 30.0, 40.0]),
            FailureCriterion::default(),
        );
        assert_eq!(outcome.events_survived, 2);
        assert_eq!(outcome.death_time, Some(30.0));
    }

    #[test]
    fn block_outliving_timeline_reports_none() {
        let policy = CapPolicy { cap: 10, bits: 512 };
        let outcome = evaluate_block(&policy, &timeline(&[1.0, 2.0]), FailureCriterion::default());
        assert_eq!(outcome.events_survived, 2);
        assert_eq!(outcome.death_time, None);
    }

    #[test]
    fn page_death_is_earliest_block_death() {
        let policy = CapPolicy { cap: 1, bits: 512 };
        let page = PageTimeline {
            blocks: vec![timeline(&[5.0, 50.0]), timeline(&[7.0, 9.0])],
        };
        let outcome = evaluate_page(&policy, &page, FailureCriterion::default());
        // Block 1 dies at 9.0, block 0 at 50.0 => page dies at 9.0 having
        // recovered the faults at 5.0 and 7.0.
        assert_eq!(outcome.death_time, 9.0);
        assert_eq!(outcome.faults_recovered, 2);
        assert!(!outcome.capped);
    }

    #[test]
    fn survival_curve_integrates_wear_leveling() {
        // Two pages with lifetimes 10 and 20 page-writes. Both alive until
        // global 20 (10 each); then the survivor absorbs everything and
        // dies at global 20 + (20-10) = 30.
        let curve = survival_curve(&[10.0, 20.0]);
        assert_eq!(curve, vec![(0.0, 1.0), (20.0, 0.5), (30.0, 0.0)]);
    }

    #[test]
    fn half_lifetime_reads_the_curve() {
        assert_eq!(half_lifetime(&[10.0, 20.0]), 20.0);
        // Four pages of lifetimes [1, 1, 100, 100]: all four absorb writes
        // until the two short-lived pages die at global 4·1 = 4.
        assert_eq!(half_lifetime(&[1.0, 1.0, 100.0, 100.0]), 4.0);
    }

    #[test]
    fn run_moments_quantize_like_the_histogram() {
        let run = MemoryRun {
            page_lifetimes: vec![10.5, 20.0, f64::INFINITY],
            unprotected_lifetimes: vec![5.0, 8.0, 9.0],
            faults_recovered: vec![3, 1, 2],
            capped_pages: 1,
        };
        let lm = run.lifetime_moments();
        assert_eq!(lm.count(), 2, "non-finite death times are skipped");
        assert_eq!(lm.mean(), 15.0, "10.5 floors to 10, like the histogram");
        let fm = run.faults_moments();
        assert_eq!(fm.count(), 3);
        assert_eq!(fm.mean(), 2.0);
    }

    #[test]
    fn failure_cdf_is_monotone_and_reaches_one() {
        let policy = CapPolicy { cap: 3, bits: 64 };
        let cdf = block_failure_cdf(&policy, FailureCriterion::default(), 200, 11).cdf();
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cdf.last().unwrap(), 1.0);
        // Nothing dies at or below the cap.
        assert_eq!(cdf[3], 0.0);
        // Everything is dead by fault 4.
        assert_eq!(cdf[4], 1.0);
    }

    #[test]
    fn hooks_observe_without_perturbing_results() {
        let policy = CapPolicy { cap: 4, bits: 512 };
        let cfg = SimConfig {
            pages: 6,
            page_bits: 4096,
            block_bits: 512,
            criterion: FailureCriterion::default(),
            seed: 77,
            threads: None,
            partial_fraction: 0.0,
        };
        let plain = run_memory(&policy, &cfg);

        let registry = Registry::new();
        let progress = std::sync::Mutex::new(Vec::new());
        let record = |done: usize, total: usize| {
            progress.lock().unwrap().push((done, total));
        };
        let hooks = RunHooks {
            telemetry: Some(McTelemetry::for_scheme(&registry, &policy.name())),
            progress: Some(&record),
            ..RunHooks::default()
        };
        let observed = run_memory_with(&policy, &cfg, &hooks);

        assert_eq!(plain.page_lifetimes, observed.page_lifetimes);
        assert_eq!(plain.faults_recovered, observed.faults_recovered);

        let counters: std::collections::BTreeMap<String, u64> =
            registry.counters().into_iter().collect();
        assert_eq!(counters["mc.cap4.pages"], 6);
        assert!(counters["mc.cap4.policy_decisions"] > 0);
        assert!(counters["mc.cap4.fault_events"] >= counters["mc.cap4.block_deaths_split"]);
        assert_eq!(counters["mc.cap4.block_deaths_guarantee"], 0);

        let mut calls = progress.into_inner().unwrap();
        calls.sort_unstable();
        // `done` advances unconditionally and exactly once per page, so the
        // sorted calls are exactly (1,6)..(6,6) — in particular the final
        // call is pinned to (total, total).
        let expected: Vec<(usize, usize)> = (1..=6).map(|i| (i, 6)).collect();
        assert_eq!(calls, expected);
        assert_eq!(calls.last(), Some(&(6, 6)));
    }

    #[test]
    fn results_are_invariant_under_thread_count() {
        let policy = CapPolicy { cap: 4, bits: 512 };
        let mut cfg = SimConfig {
            pages: 7,
            page_bits: 4096,
            block_bits: 512,
            criterion: FailureCriterion::default(),
            seed: 23,
            threads: Some(1),
            partial_fraction: 0.0,
        };
        let single = run_memory(&policy, &cfg);
        for threads in [2, 3, 8] {
            cfg.threads = Some(threads);
            let multi = run_memory(&policy, &cfg);
            assert_eq!(single.page_lifetimes, multi.page_lifetimes);
            assert_eq!(single.unprotected_lifetimes, multi.unprotected_lifetimes);
            assert_eq!(single.faults_recovered, multi.faults_recovered);
        }
        let a = block_outcomes_with_threads(&policy, cfg.criterion, 50, 9, Some(1));
        let b = block_outcomes_with_threads(&policy, cfg.criterion, 50, 9, Some(4));
        assert_eq!(a, b);
    }

    #[test]
    fn pool_counters_are_volatile_and_observable() {
        let policy = CapPolicy { cap: 4, bits: 512 };
        let cfg = SimConfig {
            pages: 5,
            page_bits: 4096,
            block_bits: 512,
            criterion: FailureCriterion::default(),
            seed: 3,
            threads: Some(2),
            partial_fraction: 0.0,
        };
        let registry = Registry::new();
        let hooks = RunHooks {
            telemetry: Some(McTelemetry::for_scheme(&registry, "cap4")),
            ..RunHooks::default()
        };
        run_memory_with(&policy, &cfg, &hooks);
        let volatile: std::collections::BTreeMap<String, u64> =
            registry.volatile_counters().into_iter().collect();
        assert!(volatile.contains_key("pool.cap4.pages_stolen"));
        assert!(volatile["pool.cap4.worker_batches"] >= 1);
        // Volatile counters must not leak into the deterministic snapshot.
        let deterministic: Vec<String> = registry.counters().into_iter().map(|(n, _)| n).collect();
        assert!(deterministic.iter().all(|n| !n.starts_with("pool.")));
    }

    #[test]
    fn guaranteed_criterion_attributes_deaths_correctly() {
        let policy = CapPolicy { cap: 1, bits: 512 };
        let registry = Registry::new();
        let telemetry = McTelemetry::for_scheme(&registry, "cap1");
        let outcome = evaluate_block_with(
            &policy,
            &timeline(&[1.0, 2.0, 3.0]),
            FailureCriterion::GuaranteedAllData,
            Some(&telemetry),
        );
        assert_eq!(outcome.death_time, Some(2.0));
        let counters: std::collections::BTreeMap<String, u64> =
            registry.counters().into_iter().collect();
        assert_eq!(counters["mc.cap1.block_deaths_guarantee"], 1);
        assert_eq!(counters["mc.cap1.block_deaths_split"], 0);
        assert_eq!(counters["mc.cap1.policy_decisions"], 2);
    }

    #[test]
    fn tracer_records_spans_without_perturbing_results() {
        let policy = CapPolicy { cap: 4, bits: 512 };
        let cfg = SimConfig {
            pages: 6,
            page_bits: 4096,
            block_bits: 512,
            criterion: FailureCriterion::default(),
            seed: 77,
            threads: Some(2),
            partial_fraction: 0.0,
        };
        let plain = run_memory(&policy, &cfg);

        let tracer = Tracer::new(1024);
        let hooks = RunHooks {
            tracer: Some(&tracer),
            ..RunHooks::default()
        };
        let traced = run_memory_with(&policy, &cfg, &hooks);
        assert_eq!(plain.page_lifetimes, traced.page_lifetimes);
        assert_eq!(plain.faults_recovered, traced.faults_recovered);

        let log = tracer.finish("unit").unwrap();
        let phase = log.spans.iter().find(|s| s.name == "mc.cap4").unwrap();
        let pages: Vec<_> = log.spans.iter().filter(|s| s.name == "page").collect();
        assert_eq!(pages.len(), 6);
        // Every page span hangs off the engine phase and was recorded by
        // a worker collector.
        assert!(pages.iter().all(|s| s.parent == Some(phase.id)));
        assert!(pages.iter().all(|s| s.worker != 0));
        // Pool utilization was captured for the phase, one entry per
        // worker, and the task counts add up to the page count.
        assert_eq!(log.pool.len(), 1);
        assert_eq!(log.pool[0].phase, "mc.cap4");
        let tasks: usize = log.pool[0].workers.iter().map(|w| w.tasks).sum();
        assert_eq!(tasks, 6);
        assert_eq!(log.total_dropped(), 0);
    }

    #[test]
    fn status_hooks_heartbeat_without_perturbing_results() {
        let policy = CapPolicy { cap: 4, bits: 512 };
        let cfg = SimConfig {
            pages: 6,
            page_bits: 4096,
            block_bits: 512,
            criterion: FailureCriterion::default(),
            seed: 77,
            threads: Some(2),
            partial_fraction: 0.0,
        };
        let plain = run_memory(&policy, &cfg);

        let dir = std::env::temp_dir().join(format!("pcm-sim-status-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let status =
            StatusWriter::with_interval("engine", &dir, std::time::Duration::ZERO).unwrap();
        status.set_total_pages(6);
        let hooks = RunHooks {
            status: Some(&status),
            ..RunHooks::default()
        };
        let observed = run_memory_with(&policy, &cfg, &hooks);
        assert_eq!(plain.page_lifetimes, observed.page_lifetimes);
        assert_eq!(plain.faults_recovered, observed.faults_recovered);

        let record = status.record().unwrap();
        assert_eq!(record.phase, "mc.cap4");
        assert_eq!(record.pages_done, 6);
        assert!(record.busy.is_some(), "pool utilization was sampled");
        let text = std::fs::read_to_string(dir.join("engine.status.json")).unwrap();
        let on_disk = sim_telemetry::StatusRecord::parse(&text).unwrap();
        assert_eq!(on_disk.pages_done, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Policy that dies on the first stuck-at-Wrong fault.
    struct NoWrong;

    impl RecoveryPolicy for NoWrong {
        fn name(&self) -> String {
            "no-wrong".into()
        }
        fn overhead_bits(&self) -> usize {
            0
        }
        fn block_bits(&self) -> usize {
            512
        }
        fn recoverable(&self, _faults: &[Fault], wrong: &[bool]) -> bool {
            wrong.iter().all(|&w| !w)
        }
    }

    #[test]
    fn partial_fraction_weakens_faults_and_stays_deterministic() {
        let mut cfg = SimConfig::scaled(12, 512, 41);
        let classic = run_memory(&NoWrong, &cfg);
        cfg.partial_fraction = 1.0;
        let partial = run_memory(&NoWrong, &cfg);
        let partial_again = run_memory(&NoWrong, &cfg);
        // Deterministic per seed and thread-invariant.
        assert_eq!(partial.page_lifetimes, partial_again.page_lifetimes);
        cfg.threads = Some(3);
        let threaded = run_memory(&NoWrong, &cfg);
        assert_eq!(partial.page_lifetimes, threaded.page_lifetimes);
        // Every fault of an all-partial chip has a weak-write escape hatch
        // (W probability ¼ instead of ½), so this split-sensitive policy
        // recovers strictly more faults in aggregate.
        assert!(
            partial.mean_faults_recovered() > classic.mean_faults_recovered(),
            "partial {} vs classic {}",
            partial.mean_faults_recovered(),
            classic.mean_faults_recovered()
        );
    }

    #[test]
    fn batched_evaluation_matches_sequential_for_every_lane_width() {
        let policy = CapPolicy { cap: 3, bits: 256 };
        let sampler = crate::timeline::TimelineSampler::paper_default(256);
        for seed in 0..4u64 {
            let mut rng = crate::timeline::TimelineSampler::page_rng(seed, 0);
            let page = sampler.sample_page(&mut rng, 16);
            let registry = Registry::new();
            let telemetry = McTelemetry::for_scheme(&registry, "seq");
            let expected = evaluate_page_with_scratch(
                &policy,
                &page,
                FailureCriterion::default(),
                Some(&telemetry),
                &mut PolicyScratch::new(),
            );
            let expected_counters: std::collections::BTreeMap<String, u64> =
                registry.counters().into_iter().collect();
            for lanes in [1usize, 2, 3, 5, 8, 16, 64] {
                let registry = Registry::new();
                let telemetry = McTelemetry::for_scheme(&registry, "seq");
                let mut batch = BatchScratch::new(lanes);
                let got = evaluate_page_batched_with_scratch(
                    &policy,
                    &page,
                    FailureCriterion::default(),
                    Some(&telemetry),
                    &mut batch,
                );
                assert_eq!(got, expected, "seed {seed} lanes {lanes}");
                let counters: std::collections::BTreeMap<String, u64> =
                    registry.counters().into_iter().collect();
                assert_eq!(counters, expected_counters, "seed {seed} lanes {lanes}");
            }
        }
    }

    #[test]
    fn batched_guarantee_criterion_matches_sequential() {
        let policy = CapPolicy { cap: 2, bits: 512 };
        let page = PageTimeline {
            blocks: vec![
                timeline(&[5.0, 50.0, 60.0]),
                timeline(&[7.0, 9.0]),
                timeline(&[]),
                timeline(&[1.0, 2.0, 3.0, 4.0]),
            ],
        };
        let expected = evaluate_page(&policy, &page, FailureCriterion::GuaranteedAllData);
        for lanes in [1usize, 2, 4, 8] {
            let got = evaluate_page_batched_with_scratch(
                &policy,
                &page,
                FailureCriterion::GuaranteedAllData,
                None,
                &mut BatchScratch::new(lanes),
            );
            assert_eq!(got, expected, "lanes {lanes}");
        }
    }

    #[test]
    fn timeline_cache_leaves_chip_results_byte_identical() {
        let policy = CapPolicy { cap: 4, bits: 512 };
        let mut cfg = SimConfig::scaled(6, 512, 123);
        cfg.partial_fraction = 0.25;
        let plain = run_memory(&policy, &cfg);
        let cache = TimelineCache::with_capacity(64);
        let hooks = RunHooks {
            timelines: Some(&cache),
            ..RunHooks::default()
        };
        let cached_cold = run_memory_with(&policy, &cfg, &hooks);
        assert_eq!(cache.len(), 6, "every page was retained");
        assert_eq!(cache.hits(), 0);
        let cached_warm = run_memory_with(&policy, &cfg, &hooks);
        assert_eq!(cache.hits(), 6, "second run served entirely from cache");
        for run in [&cached_cold, &cached_warm] {
            assert_eq!(plain.page_lifetimes, run.page_lifetimes);
            assert_eq!(plain.unprotected_lifetimes, run.unprotected_lifetimes);
            assert_eq!(plain.faults_recovered, run.faults_recovered);
        }
    }

    #[test]
    fn run_memory_is_deterministic_and_ordered() {
        let policy = CapPolicy { cap: 4, bits: 512 };
        let cfg = SimConfig {
            pages: 8,
            page_bits: 4096,
            block_bits: 512,
            criterion: FailureCriterion::default(),
            seed: 5,
            threads: None,
            partial_fraction: 0.0,
        };
        let a = run_memory(&policy, &cfg);
        let b = run_memory(&policy, &cfg);
        assert_eq!(a.page_lifetimes, b.page_lifetimes);
        assert_eq!(a.faults_recovered, b.faults_recovered);
        assert_eq!(a.capped_pages, 0);
        // A protected page must outlive the unprotected one.
        for (p, u) in a.page_lifetimes.iter().zip(&a.unprotected_lifetimes) {
            assert!(p >= u);
        }
    }
}
