//! Property tests of the Monte Carlo engine itself: conservation laws of
//! the wear-leveling integration, criterion monotonicity, and the
//! statistics of sampled timelines.

use pcm_sim::montecarlo::{evaluate_block, half_lifetime, survival_curve, FailureCriterion};
use pcm_sim::policy::RecoveryPolicy;
use pcm_sim::timeline::TimelineSampler;
use pcm_sim::{Fault, LifetimeModel, WearModel};
use sim_rng::prop::{shrink, Runner};
use sim_rng::{prop_assert, prop_assert_eq, Rng, SmallRng};

/// Generator: a page-lifetime vector with lengths in `lo..hi`, values in
/// `1.0..1e6` block writes.
fn lifetimes_vec(lo: usize, hi: usize) -> impl Fn(&mut SmallRng) -> Vec<f64> {
    move |rng| {
        let n = rng.random_range(lo..hi);
        (0..n).map(|_| rng.random_range(1.0f64..1e6)).collect()
    }
}

/// Shrinker: thin the vector (respecting the minimum length) and pull
/// individual lifetimes toward the 1.0 floor.
fn shrink_lifetimes(min_len: usize) -> impl Fn(&Vec<f64>) -> Vec<Vec<f64>> {
    move |values| {
        shrink::vec(values, |&x| shrink::f64_toward(x, 1.0))
            .into_iter()
            .filter(|v| v.len() >= min_len)
            .collect()
    }
}

/// Conservation: under perfect wear leveling the chip absorbs exactly
/// the sum of per-page lifetimes — the curve's final global write
/// count must equal `Σ Tᵢ` (telescoping of the order-statistics
/// integration).
#[test]
fn survival_curve_conserves_total_writes() {
    Runner::new("survival_curve_conserves_total_writes").run(
        lifetimes_vec(1, 50),
        shrink_lifetimes(1),
        |lifetimes| {
            let curve = survival_curve(lifetimes);
            let total: f64 = lifetimes.iter().sum();
            let final_global = curve.last().unwrap().0;
            prop_assert!((final_global - total).abs() < total * 1e-9);
            // Alive fraction is non-increasing and global writes non-decreasing.
            for w in curve.windows(2) {
                prop_assert!(w[1].0 >= w[0].0);
                prop_assert!(w[1].1 <= w[0].1);
            }
            prop_assert_eq!(curve.last().unwrap().1, 0.0);
            Ok(())
        },
    );
}

/// The half-lifetime is bracketed by the weakest and strongest page's
/// contribution.
#[test]
fn half_lifetime_is_bracketed() {
    Runner::new("half_lifetime_is_bracketed").run(
        lifetimes_vec(2, 40),
        shrink_lifetimes(2),
        |lifetimes| {
            let n = lifetimes.len() as f64;
            let min = lifetimes.iter().cloned().fold(f64::INFINITY, f64::min);
            let total: f64 = lifetimes.iter().sum();
            let half = half_lifetime(lifetimes);
            prop_assert!(half >= min * n / 2.0 - 1e-9, "{half} vs {min}*{n}/2");
            prop_assert!(half <= total + 1e-9);
            Ok(())
        },
    );
}

/// A policy that tolerates `cap` faults (data-independent), for engine
/// tests.
struct Cap(usize);

impl RecoveryPolicy for Cap {
    fn name(&self) -> String {
        format!("cap{}", self.0)
    }
    fn overhead_bits(&self) -> usize {
        0
    }
    fn block_bits(&self) -> usize {
        512
    }
    fn recoverable(&self, faults: &[Fault], _wrong: &[bool]) -> bool {
        faults.len() <= self.0
    }
    fn guaranteed(&self, faults: &[Fault]) -> bool {
        faults.len() <= self.0
    }
}

/// A policy that accepts a split iff at most `cap` faults are
/// stuck-at-Wrong — data-dependent, for criterion-monotonicity tests.
struct WrongCap(usize);

impl RecoveryPolicy for WrongCap {
    fn name(&self) -> String {
        format!("wrongcap{}", self.0)
    }
    fn overhead_bits(&self) -> usize {
        0
    }
    fn block_bits(&self) -> usize {
        512
    }
    fn recoverable(&self, _faults: &[Fault], wrong: &[bool]) -> bool {
        wrong.iter().filter(|&&w| w).count() <= self.0
    }
}

#[test]
fn stricter_criteria_never_extend_block_life() {
    let sampler = TimelineSampler::paper_default(512);
    let policy = WrongCap(6);
    for seed in 0..40u64 {
        let mut rng = TimelineSampler::page_rng(3, seed);
        let timeline = sampler.sample_block(&mut rng);
        let one = evaluate_block(
            &policy,
            &timeline,
            FailureCriterion::PerEventSplit { samples: 1 },
        );
        let many = evaluate_block(
            &policy,
            &timeline,
            FailureCriterion::PerEventSplit { samples: 16 },
        );
        let guaranteed = evaluate_block(&policy, &timeline, FailureCriterion::GuaranteedAllData);
        assert!(one.events_survived >= many.events_survived, "seed {seed}");
        assert!(
            many.events_survived >= guaranteed.events_survived,
            "seed {seed}"
        );
        // The data-independent bound: guaranteed accepts exactly cap faults.
        assert_eq!(guaranteed.events_survived, 6.min(timeline.events.len()));
    }
}

#[test]
fn fault_arrival_times_match_the_lifetime_model() {
    // The first fault time of a sampled block must track the minimum of
    // 512 lifetimes drawn straight from the model, scaled by the wear
    // participation — a wiring check that would catch a wrong wear factor,
    // a bad sort, or a truncated tail in the sampler.
    use sim_rng::{SeedableRng, SmallRng};
    let lifetime = LifetimeModel::paper_default();
    let wear = WearModel::paper_default();
    let sampler = TimelineSampler::new(512, lifetime, wear, 8);
    let mut sampled = Vec::new();
    for seed in 0..400u64 {
        let mut rng = TimelineSampler::page_rng(11, seed);
        sampled.push(sampler.sample_block(&mut rng).events[0].time);
    }
    let mut reference = Vec::new();
    let mut rng = SmallRng::seed_from_u64(77);
    for _ in 0..400 {
        let min = (0..512)
            .map(|_| lifetime.sample(&mut rng))
            .fold(f64::INFINITY, f64::min);
        reference.push(wear.fault_time(min));
    }
    let ratio = pcm_sim::stats::mean(&sampled) / pcm_sim::stats::mean(&reference);
    assert!(
        (0.95..1.05).contains(&ratio),
        "sampler {:.3e} vs direct reference {:.3e}",
        pcm_sim::stats::mean(&sampled),
        pcm_sim::stats::mean(&reference)
    );
}

#[test]
fn deterministic_block_evaluation_is_pure() {
    let sampler = TimelineSampler::paper_default(512);
    let policy = Cap(9);
    let mut rng_a = TimelineSampler::page_rng(5, 0);
    let mut rng_b = TimelineSampler::page_rng(5, 0);
    let tl_a = sampler.sample_block(&mut rng_a);
    let tl_b = sampler.sample_block(&mut rng_b);
    let a = evaluate_block(&policy, &tl_a, FailureCriterion::default());
    let b = evaluate_block(&policy, &tl_b, FailureCriterion::default());
    assert_eq!(a.events_survived, b.events_survived);
    assert_eq!(a.death_time, b.death_time);
}
