#!/usr/bin/env bash
# Full verification gate for the hermetic workspace. Everything runs with
# --offline: a clean checkout must build with no network and no registry
# cache, or the hermetic-build guarantee is broken.
#
# Usage: scripts/verify.sh [--fast]
#   --fast   smoke-run the bench targets too (SIM_BENCH_FAST=1); skipped
#            entirely by default because full benches take minutes.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Tier-1 gate: release build + the whole test suite, fully offline.
run cargo build --release --offline --workspace
run cargo test -q --offline --workspace

# The same suite once more with the simulation pool forced to two
# workers, so every test exercises the work-stealing path (the default
# above resolves to the machine's parallelism, which can be 1 in CI).
SIM_THREADS=2 run cargo test -q --offline --workspace

# And once more with the SIMD dispatch pinned to the portable scalar
# fallback, so the whole suite — including the batched-kernel
# differential properties — also passes on the path machines without
# AVX2/AVX-512/NEON will take (PR 9).
SIM_FORCE_SCALAR=1 run cargo test -q --offline --workspace

# Style and lint gates.
run cargo fmt --all --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Telemetry smoke: a tiny instrumented fig5 run (with tracing on) must
# emit a parseable event stream, a manifest sidecar and a trace sidecar;
# the report and the profiler must read them back, and the profiler must
# leave its exporter artifacts (collapsed stack, Chrome trace, analysis
# JSON) behind. Uses a scratch directory so the tracked CSVs in results/
# are not overwritten with reduced-scale data.
smoke_out="${TMPDIR:-/tmp}/aegis-verify-smoke"
rm -rf "$smoke_out"
run cargo run --release --offline -p aegis-experiments -- \
    fig5 --pages 2 --trace --run-id verify-smoke --quiet --out "$smoke_out"
for f in "$smoke_out"/telemetry/verify-smoke.jsonl \
         "$smoke_out"/telemetry/verify-smoke.manifest.json \
         "$smoke_out"/telemetry/verify-smoke.trace.jsonl; do
    [[ -s "$f" ]] || { echo "missing telemetry output: $f" >&2; exit 1; }
done
echo "==> experiments telemetry-report verify-smoke"
cargo run --release --offline -p aegis-experiments -- \
    telemetry-report verify-smoke --out "$smoke_out" >/dev/null
echo "==> experiments telemetry-analyze verify-smoke"
cargo run --release --offline -p aegis-experiments -- \
    telemetry-analyze verify-smoke --out "$smoke_out" >/dev/null
for f in "$smoke_out"/telemetry/verify-smoke.collapsed.txt \
         "$smoke_out"/telemetry/verify-smoke.chrome.json \
         "$smoke_out"/telemetry/verify-smoke.analysis.json; do
    [[ -s "$f" ]] || { echo "missing profiler artifact: $f" >&2; exit 1; }
done
# Block-death forensics smoke: the replayed per-block trace must be
# byte-identical across two invocations of the same seed.
echo "==> experiments fig5 --trace-block 1,12 (determinism)"
cargo run --release --offline -p aegis-experiments -- \
    fig5 --pages 2 --trace-block 1,12 >"$smoke_out/trace-block.a"
cargo run --release --offline -p aegis-experiments -- \
    fig5 --pages 2 --trace-block 1,12 >"$smoke_out/trace-block.b"
cmp "$smoke_out/trace-block.a" "$smoke_out/trace-block.b" \
    || { echo "--trace-block output is not deterministic" >&2; exit 1; }
rm -rf "$smoke_out"

# Shard/merge smoke: a fig5 campaign split into two seed-disjoint shards
# and merged back must reproduce the unsharded run byte-for-byte — same
# report, same CSVs, same telemetry stream modulo volatile lines.
shard_out="${TMPDIR:-/tmp}/aegis-verify-shard"
rm -rf "$shard_out"
mkdir -p "$shard_out/ref" "$shard_out/sh"
echo "==> experiments shard/merge smoke (2 shards vs unsharded)"
cargo run --release --offline -p aegis-experiments -- \
    fig5 --pages 8 --seed 7 --telemetry --quiet --out "$shard_out/ref" \
    >"$shard_out/ref-report.txt"
for i in 0 1; do
    cargo run --release --offline -p aegis-experiments -- \
        shard fig5 --pages 8 --seed 7 --shards 2 --shard-id "$i" \
        --quiet --out "$shard_out/sh" >/dev/null
done
cargo run --release --offline -p aegis-experiments -- \
    merge fig5-s7-shard1of2 fig5-s7-shard0of2 --quiet --out "$shard_out/sh" \
    >"$shard_out/sh-report.txt"
cmp "$shard_out/ref-report.txt" "$shard_out/sh-report.txt" \
    || { echo "merged report differs from the unsharded run" >&2; exit 1; }
# The CSVs carry the PR 10 uncertainty columns, so these byte-level
# comparisons also pin "merge pools moment accumulators exactly": the
# merged ci95_half_width/rse must equal the unsharded run's.
head -1 "$shard_out/ref/fig5.csv" | grep -q "ci95_half_width,rse" \
    || { echo "fig5.csv is missing the CI columns" >&2; exit 1; }
for csv in fig5.csv fig6.csv fig7.csv; do
    cmp "$shard_out/ref/$csv" "$shard_out/sh/$csv" \
        || { echo "merged $csv differs from the unsharded run" >&2; exit 1; }
done
grep -v '"event": "volatile"' "$shard_out/ref/telemetry/fig5-s7.jsonl" \
    >"$shard_out/ref-stream.jsonl"
grep -v '"event": "volatile"' "$shard_out/sh/telemetry/fig5-s7.jsonl" \
    >"$shard_out/sh-stream.jsonl"
cmp "$shard_out/ref-stream.jsonl" "$shard_out/sh-stream.jsonl" \
    || { echo "merged telemetry stream differs from the unsharded run" >&2; exit 1; }
rm -rf "$shard_out"

# fig8 smoke (PR 8): the matched-overhead masking sweep split into two
# page shards and merged back must reproduce the unsharded run — same
# report, same fig8.csv — and the sweep must cover all three
# partially-stuck fractions.
fig8_out="${TMPDIR:-/tmp}/aegis-verify-fig8"
rm -rf "$fig8_out"
mkdir -p "$fig8_out/ref" "$fig8_out/sh"
echo "==> experiments fig8 shard/merge smoke (2 shards vs unsharded)"
cargo run --release --offline -p aegis-experiments -- \
    fig8 --pages 4 --seed 7 --quiet --out "$fig8_out/ref" \
    >"$fig8_out/ref-report.txt"
for pct in 0 25 50; do
    grep -q "^$pct," "$fig8_out/ref/fig8.csv" \
        || { echo "fig8.csv missing the $pct% partially-stuck fraction" >&2; exit 1; }
done
for i in 0 1; do
    cargo run --release --offline -p aegis-experiments -- \
        shard fig8 --pages 4 --seed 7 --shards 2 --shard-id "$i" \
        --quiet --out "$fig8_out/sh" >/dev/null
done
cargo run --release --offline -p aegis-experiments -- \
    merge fig8-s7-shard1of2 fig8-s7-shard0of2 --quiet --out "$fig8_out/sh" \
    >"$fig8_out/sh-report.txt"
cmp "$fig8_out/ref-report.txt" "$fig8_out/sh-report.txt" \
    || { echo "merged fig8 report differs from the unsharded run" >&2; exit 1; }
cmp "$fig8_out/ref/fig8.csv" "$fig8_out/sh/fig8.csv" \
    || { echo "merged fig8.csv differs from the unsharded run" >&2; exit 1; }
rm -rf "$fig8_out"

# Observability smoke: runs recorded with --series --status must leave a
# series sidecar and a status heartbeat; `monitor --once --json` must
# report the finished campaign all_done; `telemetry-diff` must find a
# run clean against its own seed (exit 0) and drifted against a
# different seed (exit 1) — the self-check that makes the diff tool
# trustworthy as a regression gate.
obs_out="${TMPDIR:-/tmp}/aegis-verify-obs"
rm -rf "$obs_out"
echo "==> observability smoke (series/status/monitor/telemetry-diff)"
for run in "obs-a 5" "obs-b 5" "obs-c 6"; do
    set -- $run
    cargo run --release --offline -p aegis-experiments -- \
        fig5 --pages 2 --seed "$2" --series --status --run-id "$1" \
        --quiet --out "$obs_out" >/dev/null
    for f in "$obs_out/telemetry/$1.series.jsonl" "$obs_out/telemetry/$1.status.json"; do
        [[ -s "$f" ]] || { echo "missing observability output: $f" >&2; exit 1; }
    done
done
cargo run --release --offline -p aegis-experiments -- \
    monitor --once --json --out "$obs_out" | grep -q '"all_done": true' \
    || { echo "monitor did not report the finished campaign all_done" >&2; exit 1; }
cargo run --release --offline -p aegis-experiments -- \
    telemetry-diff obs-a obs-b --out "$obs_out" >/dev/null \
    || { echo "telemetry-diff flagged drift between identical seeds" >&2; exit 1; }
if cargo run --release --offline -p aegis-experiments -- \
    telemetry-diff obs-a obs-c --out "$obs_out" >/dev/null 2>&1; then
    echo "telemetry-diff missed drift between different seeds" >&2; exit 1
fi
rm -rf "$obs_out"

# Convergence smoke (PR 10): `--target-rse` must stop a fig5 campaign
# early, and the stop decision must be a pure function of pages
# processed — the stopped stream is byte-identical at two worker
# threads and across SIGINT + --resume. Larger memory blocks slow the
# per-page step so the SIGINT below has a wide window of checkpoint
# barriers to land between.
conv_out="${TMPDIR:-/tmp}/aegis-verify-conv"
rm -rf "$conv_out"
mkdir -p "$conv_out"
bin=./target/release/experiments
conv_strip() {
    grep -v -e '"event": "volatile"' -e '"event": "series_volatile"' "$1"
}
echo "==> convergence smoke (--target-rse early stop, threads, SIGINT/--resume)"
run_conv() { # run_conv OUT_DIR THREADS EXTRA...
    local out_dir="$1" threads="$2"; shift 2
    "$bin" fig5 --pages 8 --seed 9 --page-bytes 32768 --series --status \
        --target-rse 0.5 --threads "$threads" --checkpoint-every 1 \
        --run-id conv --quiet --out "$out_dir" "$@" >/dev/null
}
run_conv "$conv_out/ref" 1
pages_done=$(sed -n 's/.*"pages_done": \([0-9]*\).*/\1/p' \
    "$conv_out/ref/telemetry/conv.status.json")
pages_total=$(sed -n 's/.*"pages_total": \([0-9]*\).*/\1/p' \
    "$conv_out/ref/telemetry/conv.status.json")
[[ "$pages_done" -lt "$pages_total" ]] \
    || { echo "--target-rse did not stop early ($pages_done of $pages_total pages)" >&2; exit 1; }
run_conv "$conv_out/t2" 2
for f in conv.jsonl conv.series.jsonl; do
    conv_strip "$conv_out/ref/telemetry/$f" >"$conv_out/a.strip"
    conv_strip "$conv_out/t2/telemetry/$f" >"$conv_out/b.strip"
    cmp "$conv_out/a.strip" "$conv_out/b.strip" \
        || { echo "stopped $f differs between --threads 1 and --threads 2" >&2; exit 1; }
done
# SIGINT mid-run, then --resume: the finished stream must still match.
# The binary is backgrounded as a direct simple command — backgrounding
# the run_conv *function* wraps it in a subshell whose non-interactive
# SIGINT disposition can swallow the signal before it reaches the
# binary. The leg may rarely finish before the signal lands (exit 0
# instead of 130); retry with a fresh directory in that case.
for attempt in 1 2 3; do
    rm -rf "$conv_out/int"
    "$bin" fig5 --pages 8 --seed 9 --page-bytes 32768 --series --status \
        --target-rse 0.5 --threads 1 --checkpoint-every 1 \
        --run-id conv --quiet --out "$conv_out/int" >/dev/null &
    conv_pid=$!
    for _ in $(seq 1 200); do
        [[ -s "$conv_out/int/telemetry/conv.ckpt.json" ]] && break
        sleep 0.02
    done
    kill -INT "$conv_pid" 2>/dev/null || true
    conv_rc=0; wait "$conv_pid" || conv_rc=$?
    if [[ "$conv_rc" -eq 130 ]]; then
        break
    fi
    [[ "$attempt" -lt 3 ]] \
        || { echo "could not interrupt the convergence leg (exit $conv_rc)" >&2; exit 1; }
done
"$bin" fig5 --resume conv --quiet --out "$conv_out/int" >/dev/null
for f in conv.jsonl conv.series.jsonl; do
    conv_strip "$conv_out/ref/telemetry/$f" >"$conv_out/a.strip"
    conv_strip "$conv_out/int/telemetry/$f" >"$conv_out/b.strip"
    cmp "$conv_out/a.strip" "$conv_out/b.strip" \
        || { echo "stopped $f differs after SIGINT + --resume" >&2; exit 1; }
done
rm -rf "$conv_out"

# Repo hygiene: every PR's bench record AND its regression baseline must
# be committed — the PR 4 pair was once missing for two releases because
# the gate only printed a skip notice when a baseline was absent.
for pr in pr3 pr4 pr5 pr7 pr9 pr10; do
    for f in "results/bench/BENCH_$pr.json" "results/bench/BENCH_$pr.baseline.json"; do
        [[ -s "$f" ]] || { echo "missing committed bench record: $f" >&2; exit 1; }
    done
done

# Differential kernel suite at CI depth: 10^4 random cases per codec
# variant, word-level kernels vs the retained scalar references (see
# tests/differential_kernels.rs). The default `cargo test` above already
# ran it at reduced depth; this is the zero-divergence gate.
SIM_PROP_CASES=10000 run cargo test -q --offline --release --test differential_kernels

# Differential policy suite at CI depth: 10^4 random cases per property,
# warm incremental scratches vs cold recomputes vs the stateless
# reference across all policy families — including the masking/PLBC
# predicates with partially-stuck arrivals (see
# tests/incremental_policies.rs).
SIM_PROP_CASES=10000 run cargo test -q --offline --release --test incremental_policies

# Theorem/guarantee suite at CI depth: the paper's theorems over random
# rectangle formations plus the PR 8 masking invariants — the Mask
# t ⊆ t+1 subspace chain at random partially-stuck fractions and the
# weak-write-strength monotonicity of the split sampler (see
# tests/theorem_invariants.rs).
SIM_PROP_CASES=10000 run cargo test -q --offline --release --test theorem_invariants

# Dominance suite at CI depth: the cross-scheme partial orders,
# Mask6 ⊋ ECP6 at matched overhead, PLBC pointer-budget monotonicity
# and the exhaustive Mask2/PLC1+1 crossover (see tests/dominance.rs).
SIM_PROP_CASES=10000 run cargo test -q --offline --release --test dominance

# Batched-kernel suite at CI depth: 10^4 random cases per property,
# lane-major batched kernels vs single-block kernels vs the pair
# policies, and the batched engine path vs the sequential one across all
# policy families, lane widths and criteria (see
# tests/batched_kernels.rs).
SIM_PROP_CASES=10000 run cargo test -q --offline --release --test batched_kernels

# Estimate suite at CI depth: Wilson coverage on 10^4 Bernoulli streams
# per proportion and 10^4 shrinking merge-exactness cases (see
# tests/estimates.rs).
SIM_PROP_CASES=10000 run cargo test -q --offline --release --test estimates

# Bench gate: run the kernel (PR 3), engine (PR 4), tracing-overhead
# (PR 5), series/status-overhead (PR 7), batched-kernel (PR 9) and
# estimate-snapshot (PR 10) benchmarks into a scratch directory (so the tracked results/bench/
# records are not clobbered) and check the speedup and overhead ratios
# plus the recorded baselines (see EXPERIMENTS.md for regeneration).
bench_out="${TMPDIR:-/tmp}/aegis-verify-bench"
rm -rf "$bench_out"
SIM_BENCH_OUT="$bench_out" run cargo bench --offline -p aegis-bench --bench kernels
SIM_BENCH_OUT="$bench_out" run cargo bench --offline -p aegis-bench --bench engine
SIM_BENCH_OUT="$bench_out" run cargo bench --offline -p aegis-bench --bench tracing
SIM_BENCH_OUT="$bench_out" run cargo bench --offline -p aegis-bench --bench series
SIM_BENCH_OUT="$bench_out" run cargo bench --offline -p aegis-bench --bench batch
SIM_BENCH_OUT="$bench_out" run cargo bench --offline -p aegis-bench --bench estimates
run cargo run -q --release --offline -p aegis-bench --bin bench-gate \
    "$bench_out/BENCH_pr3.json" results/bench
rm -rf "$bench_out"

# Optional: compile + smoke-run every bench target.
if [[ "${1:-}" == "--fast" ]]; then
    SIM_BENCH_FAST=1 run cargo bench --offline --workspace
fi

echo "==> verify OK"
