#!/usr/bin/env bash
# Full verification gate for the hermetic workspace. Everything runs with
# --offline: a clean checkout must build with no network and no registry
# cache, or the hermetic-build guarantee is broken.
#
# Usage: scripts/verify.sh [--fast]
#   --fast   smoke-run the bench targets too (SIM_BENCH_FAST=1); skipped
#            entirely by default because full benches take minutes.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Tier-1 gate: release build + the whole test suite, fully offline.
run cargo build --release --offline --workspace
run cargo test -q --offline --workspace

# Style and lint gates.
run cargo fmt --all --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Optional: compile + smoke-run every bench target.
if [[ "${1:-}" == "--fast" ]]; then
    SIM_BENCH_FAST=1 run cargo bench --offline --workspace
fi

echo "==> verify OK"
