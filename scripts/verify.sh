#!/usr/bin/env bash
# Full verification gate for the hermetic workspace. Everything runs with
# --offline: a clean checkout must build with no network and no registry
# cache, or the hermetic-build guarantee is broken.
#
# Usage: scripts/verify.sh [--fast]
#   --fast   smoke-run the bench targets too (SIM_BENCH_FAST=1); skipped
#            entirely by default because full benches take minutes.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Tier-1 gate: release build + the whole test suite, fully offline.
run cargo build --release --offline --workspace
run cargo test -q --offline --workspace

# Style and lint gates.
run cargo fmt --all --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

# Telemetry smoke: a tiny instrumented fig5 run must emit a parseable
# event stream plus a manifest sidecar, and the report must read them
# back. Uses a scratch directory so the tracked CSVs in results/ are not
# overwritten with reduced-scale data.
smoke_out="${TMPDIR:-/tmp}/aegis-verify-smoke"
rm -rf "$smoke_out"
run cargo run --release --offline -p aegis-experiments -- \
    fig5 --pages 2 --telemetry --run-id verify-smoke --quiet --out "$smoke_out"
for f in "$smoke_out"/telemetry/verify-smoke.jsonl \
         "$smoke_out"/telemetry/verify-smoke.manifest.json; do
    [[ -s "$f" ]] || { echo "missing telemetry output: $f" >&2; exit 1; }
done
echo "==> experiments telemetry-report verify-smoke"
cargo run --release --offline -p aegis-experiments -- \
    telemetry-report verify-smoke --out "$smoke_out" >/dev/null
rm -rf "$smoke_out"

# Differential kernel suite at CI depth: 10^4 random cases per codec
# variant, word-level kernels vs the retained scalar references (see
# tests/differential_kernels.rs). The default `cargo test` above already
# ran it at reduced depth; this is the zero-divergence gate.
SIM_PROP_CASES=10000 run cargo test -q --offline --release --test differential_kernels

# PR 3 bench gate: run the kernel benchmarks into a scratch directory (so
# the tracked results/bench/BENCH_pr3.json is not clobbered) and check the
# kernel/scalar speedup ratios plus the recorded baseline (see
# EXPERIMENTS.md for regeneration).
bench_out="${TMPDIR:-/tmp}/aegis-verify-bench"
rm -rf "$bench_out"
SIM_BENCH_OUT="$bench_out" run cargo bench --offline -p aegis-bench --bench kernels
run cargo run -q --release --offline -p aegis-bench --bin bench-gate \
    "$bench_out/BENCH_pr3.json" results/bench/BENCH_pr3.baseline.json
rm -rf "$bench_out"

# Optional: compile + smoke-run every bench target.
if [[ "${1:-}" == "--fast" ]]; then
    SIM_BENCH_FAST=1 run cargo bench --offline --workspace
fi

echo "==> verify OK"
