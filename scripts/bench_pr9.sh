#!/usr/bin/env bash
# Regenerates the PR 9 batched-kernel record results/bench/BENCH_pr9.json
# (and, with --baseline, the regression baseline next to it): times
# `experiments fig5 --full` on the current tree, then runs the `batch`
# bench target with the measurement spliced in as the post-change wall
# clock (the pre-change measurement — the same figure timed immediately
# before the PR 9 timeline cache + batched engine landed — is recorded in
# crates/bench/benches/batch.rs), then runs the gate. The bench races the
# lane-major batched kernels against the single-block kernels doing the
# same total work; the gate requires >= 4x on the fused steady-state step
# and the predicate group (see crates/bench/benches/batch.rs).
#
# Usage: scripts/bench_pr9.sh [--baseline]
#   --baseline   also copy the fresh record over BENCH_pr9.baseline.json
#                (do this when re-recording on a new reference machine).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline -p aegis-experiments -p aegis-bench

out="${TMPDIR:-/tmp}/aegis-bench-pr9-fig5"
rm -rf "$out"
TIMEFORMAT='%R'
echo "==> timing experiments fig5 --full (this takes minutes)"
full=$( { time ./target/release/experiments fig5 --full \
    --quiet --out "$out" >/dev/null; } 2>&1 )
rm -rf "$out"
echo "==> fig5 --full wall clock: ${full}s"

echo "==> cargo bench -p aegis-bench --bench batch"
SIM_FIG5_FULL_SECONDS="$full" \
    cargo bench --offline -p aegis-bench --bench batch

if [[ "${1:-}" == "--baseline" ]]; then
    cp results/bench/BENCH_pr9.json results/bench/BENCH_pr9.baseline.json
    echo "==> baseline re-recorded"
fi

echo "==> bench-gate"
cargo run -q --release --offline -p aegis-bench --bin bench-gate
