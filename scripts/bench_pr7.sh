#!/usr/bin/env bash
# Regenerates the PR 7 series/status-overhead record
# results/bench/BENCH_pr7.json (and, with --baseline, the regression
# baseline next to it): times `experiments fig5 --full` twice back to
# back — bare, then with `--series --status` — so the wall-clock pair
# shares one machine regime, then runs the `series` bench target with
# both measurements spliced into the document (pre = bare plus the
# tolerated 2%, post = instrumented; the gate's `post < pre` check
# enforces "sidecars within 2% of a bare run end to end"), then runs
# the gate. The bench itself gates the recurring per-unit overhead as a
# fraction of the unit it rides on — see crates/bench/benches/series.rs
# for why the fraction, not a race of two like-sized legs, is what a
# noisy shared runner can verify.
#
# Usage: scripts/bench_pr7.sh [--baseline]
#   --baseline   also copy the fresh record over BENCH_pr7.baseline.json
#                (do this when re-recording on a new reference machine).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline -p aegis-experiments -p aegis-bench

out="${TMPDIR:-/tmp}/aegis-bench-pr7-fig5"
rm -rf "$out"
TIMEFORMAT='%R'
echo "==> timing experiments fig5 --full, bare (this takes minutes)"
bare=$( { time ./target/release/experiments fig5 --full \
    --quiet --out "$out" >/dev/null; } 2>&1 )
echo "==> bare fig5 --full wall clock: ${bare}s"

echo "==> timing experiments fig5 --full --series --status (this takes minutes)"
instrumented=$( { time ./target/release/experiments fig5 --full --series --status \
    --run-id bench-pr7 --quiet --out "$out" >/dev/null; } 2>&1 )
rm -rf "$out"
echo "==> instrumented fig5 --full wall clock: ${instrumented}s"

echo "==> cargo bench -p aegis-bench --bench series"
SIM_FIG5_BARE_SECONDS="$bare" SIM_FIG5_FULL_SECONDS="$instrumented" \
    cargo bench --offline -p aegis-bench --bench series

if [[ "${1:-}" == "--baseline" ]]; then
    cp results/bench/BENCH_pr7.json results/bench/BENCH_pr7.baseline.json
    echo "==> baseline re-recorded"
fi

echo "==> bench-gate"
cargo run -q --release --offline -p aegis-bench --bin bench-gate
