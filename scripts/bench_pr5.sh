#!/usr/bin/env bash
# Regenerates the PR 5 tracing-overhead record results/bench/BENCH_pr5.json
# (and, with --baseline, the regression baseline next to it): times an
# untraced `experiments fig5 --full` run — the end-to-end cost of carrying
# the tracer hooks with tracing off — then runs the `tracing` bench target
# with the measured wall clock spliced into the document (next to the
# off/disabled/enabled overhead ratios and a per-worker utilization
# summary from one traced run), then runs the gate.
#
# Usage: scripts/bench_pr5.sh [--baseline]
#   --baseline   also copy the fresh record over BENCH_pr5.baseline.json
#                (do this when re-recording on a new reference machine).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline -p aegis-experiments -p aegis-bench

out="${TMPDIR:-/tmp}/aegis-bench-pr5-fig5"
rm -rf "$out"
echo "==> timing experiments fig5 --full (this takes minutes)"
TIMEFORMAT='%R'
seconds=$( { time ./target/release/experiments fig5 --full --quiet --out "$out" >/dev/null; } 2>&1 )
rm -rf "$out"
echo "==> fig5 --full wall clock: ${seconds}s"

echo "==> cargo bench -p aegis-bench --bench tracing"
SIM_FIG5_FULL_SECONDS="$seconds" cargo bench --offline -p aegis-bench --bench tracing

if [[ "${1:-}" == "--baseline" ]]; then
    cp results/bench/BENCH_pr5.json results/bench/BENCH_pr5.baseline.json
    echo "==> baseline re-recorded"
fi

echo "==> bench-gate"
cargo run -q --release --offline -p aegis-bench --bin bench-gate
