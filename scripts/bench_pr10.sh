#!/usr/bin/env bash
# Regenerates the PR 10 estimate-snapshot overhead record
# results/bench/BENCH_pr10.json (and, with --baseline, the regression
# baseline next to it): times `experiments fig5 --full` twice back to
# back — bare, then with `--series --status` so every unit barrier
# folds moment accumulators and writes estimate snapshots — so the
# wall-clock pair shares one machine regime, then runs the `estimates`
# bench target with both measurements spliced into the document (pre =
# bare plus the tolerated 2%, post = instrumented; the gate's
# `post < pre` check enforces "uncertainty quantification within 2% of
# a bare run end to end"), then runs the gate. The bench itself gates
# the recurring per-barrier estimate work as a fraction of the unit it
# rides on — see crates/bench/benches/estimates.rs for why the
# fraction, not a race of two like-sized legs, is what a noisy shared
# runner can verify.
#
# Usage: scripts/bench_pr10.sh [--baseline]
#   --baseline   also copy the fresh record over BENCH_pr10.baseline.json
#                (do this when re-recording on a new reference machine).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --offline -p aegis-experiments -p aegis-bench

out="${TMPDIR:-/tmp}/aegis-bench-pr10-fig5"
rm -rf "$out"
TIMEFORMAT='%R'
# Shared-runner throughput drifts by >10% on minute timescales, far
# above the 2% budget under test, so a single ordered bare-then-
# instrumented pair is systematically biased toward whichever leg ran
# during the faster regime. Alternate the legs over three pairs and
# keep the per-leg minima: the minimum is the least-contended sample of
# each leg, and interleaving means both legs sample the same regimes.
bare="" instrumented=""
min_s() { awk -v a="$1" -v b="$2" 'BEGIN { print (a == "" || b < a+0) ? b : a }'; }
for pair in 1 2 3; do
    echo "==> pair $pair/3: timing experiments fig5 --full, bare (this takes minutes)"
    t=$( { time ./target/release/experiments fig5 --full \
        --quiet --out "$out" >/dev/null; } 2>&1 )
    bare=$(min_s "$bare" "$t")
    echo "==> bare fig5 --full wall clock: ${t}s (min so far ${bare}s)"

    echo "==> pair $pair/3: timing experiments fig5 --full --series --status"
    t=$( { time ./target/release/experiments fig5 --full --series --status \
        --run-id bench-pr10 --quiet --out "$out" >/dev/null; } 2>&1 )
    instrumented=$(min_s "$instrumented" "$t")
    echo "==> instrumented fig5 --full wall clock: ${t}s (min so far ${instrumented}s)"
done
rm -rf "$out"
echo "==> keeping minima: bare ${bare}s, instrumented ${instrumented}s"

echo "==> cargo bench -p aegis-bench --bench estimates"
SIM_FIG5_BARE_SECONDS="$bare" SIM_FIG5_FULL_SECONDS="$instrumented" \
    cargo bench --offline -p aegis-bench --bench estimates

if [[ "${1:-}" == "--baseline" ]]; then
    cp results/bench/BENCH_pr10.json results/bench/BENCH_pr10.baseline.json
    echo "==> baseline re-recorded"
fi

echo "==> bench-gate"
cargo run -q --release --offline -p aegis-bench --bin bench-gate
