//! # aegis-pcm
//!
//! Umbrella crate for the reproduction of *Aegis: Partitioning Data Block for
//! Efficient Recovery of Stuck-at-Faults in Phase Change Memory* (Fan, Jiang,
//! Shu, Zhang, Zheng — MICRO-46, 2013).
//!
//! This crate re-exports the workspace members so downstream users can depend
//! on a single crate:
//!
//! - [`bitblock`] — fixed-width bit vectors (data words, inversion masks).
//! - [`pcm`] — the PCM device simulator and Monte Carlo lifetime engine.
//! - [`aegis`] — the paper's contribution: the A×B partition scheme and the
//!   Aegis / Aegis-rw / Aegis-rw-p codecs.
//! - [`baselines`] — ECP, SAFER (with/without fail cache), RDIS, Hamming
//!   SEC-DED and the unprotected baseline the paper compares against.
//! - [`payg`] — the Pay-As-You-Go global-correction framework the paper's
//!   related work slots Aegis into.
//! - [`os_assist`] — the OS layer above in-block recovery: FREE-p block
//!   remapping and Dynamic Pairing page recycling (§4 of the paper).
//! - [`telemetry`] — hermetic observability: named counters/histograms,
//!   spans, JSONL event sinks and run manifests (see DESIGN.md
//!   § Observability).
//!
//! ## Quickstart
//!
//! ```
//! use aegis_pcm::aegis::{AegisCodec, Rectangle};
//! use aegis_pcm::pcm::PcmBlock;
//! use aegis_pcm::bitblock::BitBlock;
//! use aegis_pcm::codec::StuckAtCodec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 512-bit PCM data block protected by the Aegis 17×31 scheme.
//! let rect = Rectangle::new(17, 31, 512)?;
//! let mut codec = AegisCodec::new(rect);
//! let mut block = PcmBlock::pristine(512);
//!
//! // Inject a stuck-at fault, then write and read back through the codec.
//! block.force_stuck(42, true);
//! let data = BitBlock::zeros(512);
//! codec.write(&mut block, &data)?;
//! assert_eq!(codec.read(&block), data);
//! # Ok(())
//! # }
//! ```

pub use aegis_baselines as baselines;
pub use aegis_core as aegis;
pub use aegis_os_assist as os_assist;
pub use aegis_payg as payg;
pub use bitblock;
pub use pcm_sim as pcm;
pub use sim_telemetry as telemetry;

/// Re-export of the codec abstraction shared by every recovery scheme.
pub mod codec {
    pub use pcm_sim::codec::*;
}
