//! Quickstart: protect one 512-bit PCM block with Aegis and watch it
//! survive stuck-at faults that would corrupt unprotected storage.
//!
//! Run with: `cargo run --example quickstart`

use aegis_pcm::aegis::{AegisCodec, Rectangle};
use aegis_pcm::bitblock::BitBlock;
use aegis_pcm::codec::StuckAtCodec;
use aegis_pcm::pcm::PcmBlock;
use sim_rng::SmallRng;
use sim_rng::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(2013);

    // The paper's Aegis 17x31 formation for 512-bit data blocks:
    // 31 candidate slopes, 31 groups, 36 metadata bits.
    let rect = Rectangle::new(17, 31, 512)?;
    let mut codec = AegisCodec::new(rect);
    println!(
        "scheme: {} — {} slopes, {} groups, {} overhead bits, hard FTC {}",
        codec.name(),
        codec.rect().slopes(),
        codec.rect().groups(),
        codec.overhead_bits(),
        codec.rect().hard_ftc(),
    );

    let mut block = PcmBlock::pristine(512);

    // Inject stuck-at faults one by one, writing random data after each —
    // the pattern a wearing PCM row actually sees.
    loop {
        // A new cell gets permanently stuck at a random value.
        let offset = rng.random_range(0..512);
        let stuck = rng.random();
        block.force_stuck(offset, stuck);
        let injected = block.fault_count();

        let data = BitBlock::random(&mut rng, 512);
        match codec.write(&mut block, &data) {
            Ok(report) => {
                assert_eq!(codec.read(&block), data, "read-back must match");
                println!(
                    "{injected:>2} fault(s): write OK \
                     (slope {}, {} re-partitions, {} inversion writes)",
                    codec.slope(),
                    report.repartitions,
                    report.inversion_writes,
                );
            }
            Err(err) => {
                println!("{injected:>2} fault(s): block exhausted — {err}");
                println!(
                    "\nAegis 17x31 absorbed {} faults in this run; its hard guarantee is {}. \
                     Every fault beyond the guarantee was recovered opportunistically \
                     (soft FTC), the effect the paper's Figure 5 measures.",
                    injected - 1,
                    codec.rect().hard_ftc(),
                );
                break;
            }
        }
    }
    Ok(())
}
