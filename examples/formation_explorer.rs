//! Formation explorer: size an Aegis scheme analytically, then check the
//! choice against the Monte Carlo — the workflow a memory architect would
//! actually use this library for.
//!
//! Run with: `cargo run --release --example formation_explorer [BITS] [BUDGET_BITS]`

use aegis_pcm::aegis::analysis::{
    candidate_formations, recommend_formation, simulated_survival_probability, survival_probability,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bits: usize = args.next().map_or(Ok(512), |s| s.parse())?;
    let budget: usize = args.next().map_or(Ok(80), |s| s.parse())?;

    println!("Admissible Aegis formations for {bits}-bit blocks within {budget} overhead bits:\n");
    println!(
        "{:<10} {:>9} {:>9} {:>11}  survival@f (analytic | simulated)",
        "formation", "overhead", "hard FTC", "soft knee"
    );
    for choice in candidate_formations(bits, budget) {
        let probe = choice.soft_knee; // evaluate right at the knee
        let analytic = survival_probability(&choice.rect, probe);
        let simulated = simulated_survival_probability(&choice.rect, probe, 400, 7);
        println!(
            "{:<10} {:>6} b {:>9} {:>11}  @{probe}: {analytic:>5.2} | {simulated:>5.2}",
            choice.rect.formation(),
            choice.overhead_bits,
            choice.hard_ftc,
            choice.soft_knee,
        );
    }

    // A concrete sizing question: "I need blocks to survive 24 faults more
    // often than not — what is the cheapest formation?"
    let target = 24usize.min(bits / 8);
    match recommend_formation(bits, target, budget) {
        Some(choice) => println!(
            "\ncheapest formation with soft knee ≥ {target}: Aegis {} \
             ({} bits, hard FTC {})",
            choice.rect.formation(),
            choice.overhead_bits,
            choice.hard_ftc,
        ),
        None => println!("\nno formation reaches a soft knee of {target} within {budget} bits"),
    }
    Ok(())
}
