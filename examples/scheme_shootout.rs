//! Scheme shoot-out: wear out identical 512-bit PCM blocks under every
//! recovery scheme the paper compares — ECP, SAFER, RDIS, Aegis and its
//! variants — driving the *functional codecs* (real simulated cells, real
//! verification reads), not the Monte Carlo predicates.
//!
//! Prints how many stuck-at faults each scheme absorbed before its first
//! uncorrectable write: a single-block preview of the paper's Figure 5.
//!
//! Run with: `cargo run --release --example scheme_shootout [SEED]`

use aegis_pcm::aegis::{AegisCodec, AegisRwCodec, AegisRwPCodec, Rectangle};
use aegis_pcm::baselines::{EcpCodec, HammingCodec, PartitionSearch, RdisCodec, SaferCodec};
use aegis_pcm::bitblock::BitBlock;
use aegis_pcm::codec::StuckAtCodec;
use aegis_pcm::pcm::PcmBlock;
use sim_rng::SmallRng;
use sim_rng::{Rng, SeedableRng};

/// Drives one codec over a block accumulating the given fault sequence,
/// returning the number of faults absorbed before the first failed write.
fn drive(codec: &mut dyn StuckAtCodec, faults: &[(usize, bool)], seed: u64) -> (usize, usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut block = PcmBlock::pristine(512);
    let mut pulses = 0;
    for (absorbed, &(offset, stuck)) in faults.iter().enumerate() {
        block.force_stuck(offset, stuck);
        // A few random writes between fault arrivals.
        for _ in 0..4 {
            let data = BitBlock::random(&mut rng, 512);
            match codec.write(&mut block, &data) {
                Ok(report) => {
                    assert_eq!(codec.read(&block), data, "{}", codec.name());
                    pulses += report.cell_pulses;
                }
                Err(_) => return (absorbed, pulses),
            }
        }
    }
    (faults.len(), pulses)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).map_or(Ok(7), |s| s.parse())?;
    let mut rng = SmallRng::seed_from_u64(seed);

    // One shared fault arrival sequence: every scheme faces the same wear.
    let mut order: Vec<usize> = (0..512).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    let faults: Vec<(usize, bool)> = order
        .into_iter()
        .take(64)
        .map(|offset| (offset, rng.random()))
        .collect();

    let r = |a, b| Rectangle::new(a, b, 512).expect("valid formation");
    let mut codecs: Vec<Box<dyn StuckAtCodec>> = vec![
        Box::new(HammingCodec::new(512)),
        Box::new(EcpCodec::new(6, 512)),
        Box::new(SaferCodec::new(5, 512, PartitionSearch::Incremental)),
        Box::new(SaferCodec::new(6, 512, PartitionSearch::Incremental)),
        Box::new(SaferCodec::new(6, 512, PartitionSearch::Exhaustive)),
        Box::new(RdisCodec::rdis3(512)),
        Box::new(AegisCodec::new(r(23, 23))),
        Box::new(AegisCodec::new(r(17, 31))),
        Box::new(AegisCodec::new(r(9, 61))),
        Box::new(AegisRwCodec::new(r(9, 61))),
        Box::new(AegisRwPCodec::new(r(9, 61), 9)),
    ];

    println!(
        "{:<18} {:>9} {:>16} {:>13}\n{}",
        "scheme",
        "overhead",
        "faults absorbed",
        "cell pulses",
        "-".repeat(60)
    );
    for codec in &mut codecs {
        let name = codec.name();
        let overhead = codec.overhead_bits();
        let (absorbed, pulses) = drive(codec.as_mut(), &faults, seed ^ 0xabcd);
        println!("{name:<18} {overhead:>6} b {absorbed:>16} {pulses:>13}");
    }
    println!(
        "\n(identical fault sequence for every scheme; seed {seed} — vary it to \
         see the spread the paper averages over)"
    );
    Ok(())
}
