//! The full functional stack, end to end: a miniature PCM chip whose every
//! block is protected by a real Aegis codec, behind real Start-Gap wear
//! leveling, written until the OS has retired every page.
//!
//! This is the paper's whole system in one runnable binary — cells wear
//! out, codecs invert groups and re-partition, the Start-Gap spare rotates
//! (wearing cells of its own), failed pages drop out of the allocation
//! pool.
//!
//! Run with: `cargo run --release --example mini_chip [SEED]`

use aegis_pcm::aegis::{AegisCodec, Rectangle};
use aegis_pcm::bitblock::BitBlock;
use aegis_pcm::pcm::chip::{ChipConfig, PcmChip};
use aegis_pcm::pcm::LifetimeModel;
use sim_rng::SeedableRng;
use sim_rng::SmallRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).map_or(Ok(42), |s| s.parse())?;
    let config = ChipConfig {
        pages: 16,
        blocks_per_page: 8,
        block_bits: 96,
        lifetime: LifetimeModel::new(3_000.0, 0.25), // fast-wearing cells
        gap_interval: 32,
    };
    let rect = Rectangle::new(8, 13, config.block_bits)?;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chip = PcmChip::new(config, &mut rng, || Box::new(AegisCodec::new(rect.clone())));

    println!(
        "chip: {} pages × {} blocks × {} bits, Aegis {} per block, Start-Gap ψ = {}\n",
        config.pages,
        config.blocks_per_page,
        config.block_bits,
        rect.formation(),
        config.gap_interval
    );

    let mut data_rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    let mut round = 0u64;
    let mut next_report = 1u64;
    while chip.live_pages() > 0 {
        round += 1;
        for page in 0..config.pages {
            if chip.is_retired(page) {
                continue;
            }
            let data: Vec<BitBlock> = (0..config.blocks_per_page)
                .map(|_| BitBlock::random(&mut data_rng, config.block_bits))
                .collect();
            match chip.write_page(page, &data) {
                Ok(()) => {
                    debug_assert_eq!(chip.read_page(page).unwrap(), data);
                }
                Err(_) => {
                    let stats = chip.stats();
                    println!(
                        "round {round:>6}: page {page:>2} retired \
                         ({} pages live, {} gap copies, {:.2e} cell pulses)",
                        chip.live_pages(),
                        stats.gap_copies,
                        stats.cell_pulses as f64,
                    );
                }
            }
        }
        if round == next_report && chip.live_pages() == config.pages {
            println!("round {round:>6}: all pages healthy");
            next_report *= 4;
        }
    }

    let stats = chip.stats();
    println!(
        "\nchip exhausted after {} page writes: {} Start-Gap copies \
         (write amplification {:.2}%), {:.3e} cell pulses total",
        stats.page_writes,
        stats.gap_copies,
        100.0 * stats.gap_copies as f64 / stats.page_writes as f64,
        stats.cell_pulses as f64,
    );
    Ok(())
}
