//! Reproduces the paper's Figure 2 in ASCII: how a 32-bit block maps onto
//! the 5×7 rectangle and how the groups move when the slope changes —
//! plus a demonstration of Theorem 2 (two co-grouped bits are separated by
//! every re-partition).
//!
//! Run with: `cargo run --example partition_visualizer [A B BITS]`

use aegis_pcm::aegis::Rectangle;

fn draw(rect: &Rectangle, slope: usize) {
    println!("slope k = {slope} (group id = anchor row of each line):");
    // Draw from the top row down, like the paper's figure.
    for b in (0..rect.b()).rev() {
        print!("  ");
        for a in 0..rect.a() {
            match rect.offset(aegis_pcm::aegis::Point { a, b }) {
                Some(offset) => {
                    let group = rect.group_of(offset, slope);
                    // Group ids rendered base-36 so wide rectangles stay
                    // aligned.
                    print!(" {}", char::from_digit(group as u32 % 36, 36).unwrap());
                }
                None => print!(" ·"), // unmapped corner (dotted in Fig 2)
            }
        }
        println!();
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse())
        .collect::<Result<_, _>>()?;
    let (a, b, bits) = match args.as_slice() {
        [] => (5, 7, 32), // the paper's Figure 2
        [a, b, bits] => (*a, *b, *bits),
        _ => return Err("usage: partition_visualizer [A B BITS]".into()),
    };
    let rect = Rectangle::new(a, b, bits)?;
    println!(
        "Aegis {} for a {}-bit block: {} configurations × {} groups, hard FTC {}\n",
        rect.formation(),
        rect.bits(),
        rect.slopes(),
        rect.groups(),
        rect.hard_ftc()
    );

    // The paper's Figure 2 shows slopes 0 and 1; draw the first three.
    for slope in 0..rect.slopes().min(3) {
        draw(&rect, slope);
    }

    // Theorem 2, live: pick the first two co-grouped bits under slope 0 and
    // show they never meet again.
    let (o1, o2) = (0, 1);
    let together: Vec<usize> = (0..rect.slopes())
        .filter(|&k| rect.group_of(o1, k) == rect.group_of(o2, k))
        .collect();
    println!(
        "Theorem 2: bits {o1} and {o2} share a group only under slope(s) {together:?} \
         — collision_slope() agrees: {:?}",
        rect.collision_slope(o1, o2)
    );
    Ok(())
}
