//! Chip-lifetime estimation through the Monte Carlo API: a miniature of
//! the paper's Figures 6 and 9 built directly on the public library
//! (no experiment harness involved).
//!
//! Run with: `cargo run --release --example chip_lifetime [PAGES]`

use aegis_pcm::aegis::{AegisPolicy, Rectangle};
use aegis_pcm::baselines::EcpPolicy;
use aegis_pcm::pcm::montecarlo::{half_lifetime, run_memory, survival_curve, SimConfig};
use aegis_pcm::pcm::policy::RecoveryPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pages: usize = std::env::args().nth(1).map_or(Ok(128), |s| s.parse())?;
    let cfg = SimConfig::scaled(pages, 512, 1);

    let policies: Vec<Box<dyn RecoveryPolicy>> = vec![
        Box::new(EcpPolicy::new(6, 512)),
        Box::new(AegisPolicy::new(Rectangle::new(23, 23, 512)?)),
        Box::new(AegisPolicy::new(Rectangle::new(9, 61, 512)?)),
    ];

    println!(
        "simulating a {}-page chip of 4KB pages, 512-bit data blocks…\n",
        cfg.pages
    );
    println!(
        "{:<14} {:>9} {:>14} {:>12} {:>14}",
        "scheme", "overhead", "faults/page", "lifetime ×", "half-life"
    );
    for policy in &policies {
        let run = run_memory(policy.as_ref(), &cfg);
        println!(
            "{:<14} {:>6} b {:>14.1} {:>11.2}x {:>14.3e}",
            policy.name(),
            policy.overhead_bits(),
            run.mean_faults_recovered(),
            run.lifetime_improvement(),
            half_lifetime(&run.page_lifetimes),
        );
    }

    // A few points of the strongest scheme's survival curve (Figure 9).
    let aegis = policies.last().expect("non-empty");
    let run = run_memory(aegis.as_ref(), &cfg);
    let curve = survival_curve(&run.page_lifetimes);
    println!(
        "\nsurvival curve of {} (global page writes → alive):",
        aegis.name()
    );
    for idx in [
        0,
        curve.len() / 4,
        curve.len() / 2,
        3 * curve.len() / 4,
        curve.len() - 1,
    ] {
        let (writes, alive) = curve[idx];
        println!("  {writes:>12.3e} → {:>5.1}%", alive * 100.0);
    }
    Ok(())
}
