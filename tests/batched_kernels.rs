//! Differential property suite for the PR 9 cross-block batched kernels
//! and the batched Monte Carlo engine path: on random geometries, lane
//! counts, lane occupancies and fault populations,
//!
//! 1. [`predicate_batch`] must agree lane for lane with
//!    [`predicate_single`] *and* with the `O(f²)` pair policies
//!    ([`AegisPolicy`] under [`PairRule::AnyWrong`], [`AegisRwPolicy`]
//!    under [`PairRule::Mixed`]) — three independent formulations of the
//!    same recoverability question;
//! 2. [`encode_batch`] must produce, lane for lane, the codeword of
//!    [`encode_single`] and of a naive scalar reference that XORs the
//!    selected [`ShiftRom`] group masks one at a time;
//! 3. `evaluate_page_batched_with_scratch` must reproduce the sequential
//!    `evaluate_page_with_scratch` outcome bit for bit across all six
//!    policy families, both failure criteria, Full/Partial stuckness
//!    mixes, and random lane widths (driving partial final batches and
//!    mid-batch divergence/compaction).
//!
//! Failures shrink toward fewer lanes, fewer faults and fewer blocks via
//! the in-tree `sim_rng::prop` harness; CI runs the suite with
//! `SIM_PROP_CASES=10000` (see `scripts/verify.sh`). Byte-identity of
//! *telemetry* across lane widths rides on top as a fixed-workload test,
//! and the cross-process twins (`SIM_EVAL_LANES`, `SIM_FORCE_SCALAR`
//! through the experiments CLI) live in `crates/experiments/tests/`.

use aegis_experiments::schemes;
use aegis_pcm::aegis::batch::{
    encode_batch, encode_single, fault_masks, predicate_batch, predicate_single, FaultBatch,
    PairRule,
};
use aegis_pcm::aegis::rom::ShiftRom;
use aegis_pcm::aegis::{AegisPolicy, AegisRwPolicy, Rectangle};
use aegis_pcm::bitblock::{BatchBitBlock, BitBlock};
use aegis_pcm::pcm::montecarlo::{
    evaluate_page_batched_with_scratch, evaluate_page_with_scratch, BatchScratch, FailureCriterion,
    McTelemetry,
};
use aegis_pcm::pcm::policy::{PolicyScratch, RecoveryPolicy};
use aegis_pcm::pcm::timeline::TimelineSampler;
use aegis_pcm::pcm::Fault;
use aegis_pcm::telemetry::{strip_volatile, RunTelemetry, SharedBuf};
use sim_rng::prop::{shrink, Runner};
use sim_rng::{prop_assert_eq, Rng, SeedableRng, SmallRng};

/// Valid `(A, B, bits)` formations the kernel generators draw from —
/// small enough to shrink well, wide enough to cross word boundaries,
/// up through the 512-bit paper formation that the batch bench gates.
const GEOMETRIES: &[(usize, usize, usize)] = &[
    (1, 3, 3),
    (2, 3, 5),
    (3, 5, 13),
    (4, 5, 17),
    (5, 7, 32),
    (5, 7, 35),
    (7, 11, 71),
    (9, 13, 112),
    (9, 61, 512),
];

/// One per-lane fault population: distinct offsets plus a W/R split.
#[derive(Debug, Clone)]
struct LanePopulation {
    faults: Vec<Fault>,
    wrong: Vec<bool>,
}

/// One batched-predicate trial: a formation and one population per lane
/// (possibly empty — random lane occupancy is part of the contract).
#[derive(Debug, Clone)]
struct PredicateCase {
    geometry: usize,
    lanes: Vec<LanePopulation>,
}

fn gen_lane(rng: &mut SmallRng, bits: usize) -> LanePopulation {
    let n = rng.random_range(0..=8usize.min(bits));
    let mut offsets: Vec<usize> = Vec::with_capacity(n);
    while offsets.len() < n {
        let offset = rng.random_range(0..bits);
        if !offsets.contains(&offset) {
            offsets.push(offset);
        }
    }
    let faults: Vec<Fault> = offsets
        .into_iter()
        .map(|offset| Fault::new(offset, rng.random_bool(0.5)))
        .collect();
    let wrong = (0..faults.len()).map(|_| rng.random()).collect();
    LanePopulation { faults, wrong }
}

fn gen_predicate_case(rng: &mut SmallRng) -> PredicateCase {
    let geometry = rng.random_range(0..GEOMETRIES.len());
    let bits = GEOMETRIES[geometry].2;
    // 1..=17 crosses every chunk width (8/4/2) with ragged remainders.
    let lanes = (0..rng.random_range(1..=17usize))
        .map(|_| gen_lane(rng, bits))
        .collect();
    PredicateCase { geometry, lanes }
}

fn shrink_predicate_case(case: &PredicateCase) -> Vec<PredicateCase> {
    let mut out = Vec::new();
    // Fewer lanes first, then fewer faults within each lane.
    for lanes in shrink::vec(&case.lanes, shrink::none) {
        if !lanes.is_empty() {
            out.push(PredicateCase {
                geometry: case.geometry,
                lanes,
            });
        }
    }
    for (l, lane) in case.lanes.iter().enumerate() {
        for keep in (0..lane.faults.len()).rev() {
            let mut lanes = case.lanes.clone();
            lanes[l] = LanePopulation {
                faults: lane.faults[..keep].to_vec(),
                wrong: lane.wrong[..keep].to_vec(),
            };
            out.push(PredicateCase {
                geometry: case.geometry,
                lanes,
            });
        }
    }
    out
}

#[test]
fn batched_predicate_matches_single_and_the_pair_policies() {
    Runner::new("batched_predicate_matches_single_and_the_pair_policies")
        .cases(1_000)
        .run(gen_predicate_case, shrink_predicate_case, |case| {
            let (a, b, bits) = GEOMETRIES[case.geometry];
            let rect = Rectangle::new(a, b, bits).expect("valid formation");
            let shift = ShiftRom::new(&rect);
            let aegis = AegisPolicy::new(rect.clone());
            let aegis_rw = AegisRwPolicy::new(rect);

            let mut batch = FaultBatch::zeros(bits, case.lanes.len());
            for (l, lane) in case.lanes.iter().enumerate() {
                batch.set_lane(l, &lane.faults, &lane.wrong);
            }
            let mut verdicts = vec![false; case.lanes.len()];
            for rule in [PairRule::AnyWrong, PairRule::Mixed] {
                predicate_batch(&shift, &batch, rule, &mut verdicts);
                for (l, lane) in case.lanes.iter().enumerate() {
                    let (f, w) = fault_masks(bits, &lane.faults, &lane.wrong);
                    prop_assert_eq!(
                        verdicts[l],
                        predicate_single(&shift, &f, &w, rule),
                        "lane {} diverged from the single-block kernel under {:?}",
                        l,
                        rule
                    );
                    let policy_verdict = match rule {
                        PairRule::AnyWrong => aegis.recoverable(&lane.faults, &lane.wrong),
                        PairRule::Mixed => aegis_rw.recoverable(&lane.faults, &lane.wrong),
                    };
                    prop_assert_eq!(
                        verdicts[l],
                        policy_verdict,
                        "lane {} diverged from the pair policy under {:?}",
                        l,
                        rule
                    );
                }
            }
            Ok(())
        });
}

/// One batched-encode trial: a formation, a slope, and per-lane
/// inversion vectors plus data words.
#[derive(Debug, Clone)]
struct EncodeCase {
    geometry: usize,
    slope: usize,
    lane_seeds: Vec<u64>,
}

fn gen_encode_case(rng: &mut SmallRng) -> EncodeCase {
    let geometry = rng.random_range(0..GEOMETRIES.len());
    let slopes = GEOMETRIES[geometry].0;
    EncodeCase {
        geometry,
        slope: rng.random_range(0..slopes),
        lane_seeds: (0..rng.random_range(1..=17usize))
            .map(|_| rng.random())
            .collect(),
    }
}

fn shrink_encode_case(case: &EncodeCase) -> Vec<EncodeCase> {
    shrink::vec(&case.lane_seeds, shrink::none)
        .into_iter()
        .filter(|seeds| !seeds.is_empty())
        .map(|lane_seeds| EncodeCase {
            lane_seeds,
            ..case.clone()
        })
        .collect()
}

#[test]
fn batched_encode_matches_single_and_a_naive_rom_reference() {
    Runner::new("batched_encode_matches_single_and_a_naive_rom_reference")
        .cases(1_000)
        .run(gen_encode_case, shrink_encode_case, |case| {
            let (a, b, bits) = GEOMETRIES[case.geometry];
            let rect = Rectangle::new(a, b, bits).expect("valid formation");
            let shift = ShiftRom::new(&rect);
            let lanes = case.lane_seeds.len();

            let mut inversions = BatchBitBlock::zeros(shift.groups(), lanes);
            let mut data = BatchBitBlock::zeros(bits, lanes);
            let mut lane_inversions = Vec::with_capacity(lanes);
            let mut lane_data = Vec::with_capacity(lanes);
            for (l, &seed) in case.lane_seeds.iter().enumerate() {
                let mut rng = SmallRng::seed_from_u64(seed);
                let v = BitBlock::random_with_density(&mut rng, shift.groups(), 0.3);
                let d = BitBlock::random(&mut rng, bits);
                inversions.load_lane(l, &v);
                data.load_lane(l, &d);
                lane_inversions.push(v);
                lane_data.push(d);
            }

            let mut out = BatchBitBlock::zeros(bits, lanes);
            encode_batch(&shift, case.slope, &inversions, &data, &mut out);

            let mut single = BitBlock::zeros(bits);
            for l in 0..lanes {
                encode_single(
                    &shift,
                    case.slope,
                    &lane_inversions[l],
                    &lane_data[l],
                    &mut single,
                );
                let got = out.lane(l);
                prop_assert_eq!(
                    got.as_words(),
                    single.as_words(),
                    "lane {} diverged from the single-block kernel",
                    l
                );
                // Naive scalar reference: XOR the selected group masks
                // one at a time.
                let mut naive = lane_data[l].clone();
                for g in lane_inversions[l].ones() {
                    naive.xor_words(shift.mask_words(case.slope, g));
                }
                prop_assert_eq!(
                    got.as_words(),
                    naive.as_words(),
                    "lane {} diverged from the naive ROM reference",
                    l
                );
            }
            Ok(())
        });
}

/// The six policy families the Monte Carlo engine ships, built at a
/// property-sized block width.
fn policy_family(index: usize, block_bits: usize) -> (schemes::Policy, &'static str) {
    // 512-bit formations shrink to (a, b) pairs valid at 128 bits.
    match index {
        0 => (schemes::aegis(4, 37, block_bits), "aegis"),
        1 => (schemes::aegis_rw(4, 37, block_bits), "aegis-rw"),
        2 => (schemes::aegis_rw_p(4, 37, block_bits, 2), "aegis-rw-p"),
        3 => (schemes::ecp(4, block_bits), "ecp"),
        4 => (schemes::safer(5, block_bits, false), "safer"),
        _ => (schemes::rdis3(block_bits), "rdis"),
    }
}

/// One engine trial: a policy family, a page shape, a stuckness mix, a
/// criterion, a lane width and a timeline seed.
#[derive(Debug, Clone)]
struct EngineCase {
    family: usize,
    blocks: usize,
    lanes: usize,
    partial: bool,
    guarantee: bool,
    seed: u64,
}

fn gen_engine_case(rng: &mut SmallRng) -> EngineCase {
    EngineCase {
        family: rng.random_range(0..6usize),
        // 1..=9 blocks over 1..=9 lanes covers full batches, partial
        // final batches, and the lone-survivor tail.
        blocks: rng.random_range(1..=9usize),
        lanes: rng.random_range(1..=9usize),
        partial: rng.random_bool(0.4),
        guarantee: rng.random_bool(0.3),
        seed: rng.random(),
    }
}

fn shrink_engine_case(case: &EngineCase) -> Vec<EngineCase> {
    let mut out = Vec::new();
    for blocks in shrink::usize_toward(case.blocks, 1) {
        out.push(EngineCase {
            blocks,
            ..case.clone()
        });
    }
    for lanes in shrink::usize_toward(case.lanes, 1) {
        out.push(EngineCase {
            lanes,
            ..case.clone()
        });
    }
    out
}

#[test]
fn batched_engine_matches_sequential_across_policies_and_lane_widths() {
    Runner::new("batched_engine_matches_sequential_across_policies_and_lane_widths")
        .cases(200)
        .run(gen_engine_case, shrink_engine_case, |case| {
            const BITS: usize = 128;
            let (policy, name) = policy_family(case.family, BITS);
            let mut sampler = TimelineSampler::paper_default(BITS);
            if case.partial {
                sampler = sampler.with_partial_mix(0.3, 128);
            }
            let mut rng = SmallRng::seed_from_u64(case.seed);
            let page = sampler.sample_page(&mut rng, case.blocks);
            let criterion = if case.guarantee {
                FailureCriterion::GuaranteedAllData
            } else {
                FailureCriterion::PerEventSplit { samples: 1 }
            };

            let sequential = evaluate_page_with_scratch(
                policy.as_ref(),
                &page,
                criterion,
                None,
                &mut PolicyScratch::new(),
            );
            let mut batch = BatchScratch::new(case.lanes);
            let batched = evaluate_page_batched_with_scratch(
                policy.as_ref(),
                &page,
                criterion,
                None,
                &mut batch,
            );

            prop_assert_eq!(
                batched.death_time.to_bits(),
                sequential.death_time.to_bits(),
                "{}: death time diverged at {} lanes",
                name,
                case.lanes
            );
            prop_assert_eq!(batched.faults_recovered, sequential.faults_recovered);
            prop_assert_eq!(batched.capped, sequential.capped);
            Ok(())
        });
}

/// Telemetry is part of the determinism contract: the batched engine
/// path must feed the registry the *byte-identical* stream the
/// sequential path feeds, for every lane width and every policy family.
#[test]
fn batched_engine_telemetry_is_byte_identical_across_lane_widths() {
    const BITS: usize = 128;
    let stream = |family: usize, lanes: Option<usize>| -> String {
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("batch-prop", buf.clone()).expect("buffer sink");
        let (policy, name) = policy_family(family, BITS);
        let telemetry = McTelemetry::for_scheme(run.registry(), name);
        let sampler = TimelineSampler::paper_default(BITS).with_partial_mix(0.25, 128);
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(seed * 977 + family as u64);
            let page = sampler.sample_page(&mut rng, 7);
            let criterion = FailureCriterion::PerEventSplit { samples: 1 };
            match lanes {
                Some(lanes) => {
                    let mut batch = BatchScratch::new(lanes);
                    evaluate_page_batched_with_scratch(
                        policy.as_ref(),
                        &page,
                        criterion,
                        Some(&telemetry),
                        &mut batch,
                    );
                }
                None => {
                    evaluate_page_with_scratch(
                        policy.as_ref(),
                        &page,
                        criterion,
                        Some(&telemetry),
                        &mut PolicyScratch::new(),
                    );
                }
            }
        }
        run.finish().expect("finish");
        strip_volatile(&buf.text())
    };
    for family in 0..6usize {
        let sequential = stream(family, None);
        assert!(
            sequential.contains("fault_events"),
            "sequential stream must carry engine counters"
        );
        for lanes in [1usize, 2, 3, 5, 8, 16] {
            assert_eq!(
                stream(family, Some(lanes)),
                sequential,
                "family {family} at {lanes} lanes must replay the sequential stream"
            );
        }
    }
}

/// Mid-batch divergence pinned explicitly: a batch where one lane dies
/// on its first event, one outlives a truncated timeline, and the rest
/// keep marching must still agree with the sequential path.
#[test]
fn forced_divergence_and_empty_lanes_agree_with_sequential() {
    const BITS: usize = 64;
    let (policy, _) = policy_family(0, BITS);
    let sampler = TimelineSampler::paper_default(BITS);
    let mut rng = SmallRng::seed_from_u64(41);
    let mut page = sampler.sample_page(&mut rng, 6);
    // Lane 1: no events at all (outlives immediately).
    page.blocks[1].events.clear();
    // Lane 3: truncated after its first event.
    page.blocks[3].events.truncate(1);
    for criterion in [
        FailureCriterion::PerEventSplit { samples: 1 },
        FailureCriterion::GuaranteedAllData,
    ] {
        let sequential = evaluate_page_with_scratch(
            policy.as_ref(),
            &page,
            criterion,
            None,
            &mut PolicyScratch::new(),
        );
        for lanes in [1usize, 2, 4, 6, 8] {
            let mut batch = BatchScratch::new(lanes);
            let batched = evaluate_page_batched_with_scratch(
                policy.as_ref(),
                &page,
                criterion,
                None,
                &mut batch,
            );
            assert_eq!(
                batched.death_time.to_bits(),
                sequential.death_time.to_bits(),
                "lanes={lanes}"
            );
            assert_eq!(batched.faults_recovered, sequential.faults_recovered);
            assert_eq!(batched.capped, sequential.capped);
        }
    }
    // Scratch reuse across pages must not leak state between batches.
    let mut batch = BatchScratch::new(4);
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..3 {
        let page = sampler.sample_page(&mut rng, 5);
        let criterion = FailureCriterion::PerEventSplit { samples: 1 };
        let sequential = evaluate_page_with_scratch(
            policy.as_ref(),
            &page,
            criterion,
            None,
            &mut PolicyScratch::new(),
        );
        let batched =
            evaluate_page_batched_with_scratch(policy.as_ref(), &page, criterion, None, &mut batch);
        assert_eq!(
            batched.death_time.to_bits(),
            sequential.death_time.to_bits()
        );
    }
}
