//! Equivalence between each scheme's two faces:
//!
//! - the *functional codec*, which physically writes simulated PCM cells,
//!   issues verification reads, re-partitions, inverts groups;
//! - the *Monte Carlo policy*, the `O(f²)` predicate the lifetime
//!   simulations use.
//!
//! The whole event-driven methodology (DESIGN.md §3) rests on these being
//! the same function; here they are checked against each other on
//! thousands of random fault populations and data words.

use aegis_pcm::aegis::{
    AegisCodec, AegisPolicy, AegisRwCodec, AegisRwPCodec, AegisRwPPolicy, AegisRwPolicy, Rectangle,
};
use aegis_pcm::baselines::{
    EcpCodec, EcpPolicy, PartitionSearch, RdisCodec, RdisPolicy, SaferCodec, SaferPolicy,
};
use aegis_pcm::bitblock::BitBlock;
use aegis_pcm::codec::StuckAtCodec;
use aegis_pcm::pcm::policy::RecoveryPolicy;
use aegis_pcm::pcm::{classify_split, Fault, PcmBlock};
use sim_rng::prop::{shrink, CaseResult, Runner};
use sim_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng, SmallRng};
use std::collections::BTreeMap;

/// Generator: a random fault population — up to `max_faults` distinct
/// offsets with random stuck values — plus a data-word seed.
fn faults_and_seed(
    block_bits: usize,
    max_faults: usize,
) -> impl Fn(&mut SmallRng) -> (Vec<Fault>, u64) {
    move |rng| {
        let count = rng.random_range(0..=max_faults);
        let mut map = BTreeMap::new();
        while map.len() < count {
            map.insert(rng.random_range(0..block_bits), rng.random::<bool>());
        }
        let faults = map.into_iter().map(|(o, s)| Fault::new(o, s)).collect();
        (faults, rng.random())
    }
}

/// Shrinker: thin the fault population (offsets stay distinct and
/// sorted); the data seed is left alone — any seed is a valid input.
fn shrink_faults(input: &(Vec<Fault>, u64)) -> Vec<(Vec<Fault>, u64)> {
    let (faults, seed) = input;
    shrink::vec(faults, |_| Vec::new())
        .into_iter()
        .map(|f| (f, *seed))
        .collect()
}

/// Builds the faulty block for a population.
fn block_with(faults: &[Fault], block_bits: usize) -> PcmBlock {
    let mut block = PcmBlock::pristine(block_bits);
    for f in faults {
        block.force_stuck(f.offset, f.stuck);
    }
    block
}

/// Checks `codec.write == policy.recoverable` for one (faults, data) pair,
/// including read-back correctness on success.
fn check_equivalence(
    mut codec: Box<dyn StuckAtCodec>,
    policy: &dyn RecoveryPolicy,
    faults: &[Fault],
    data: &BitBlock,
) -> CaseResult {
    let mut block = block_with(faults, policy.block_bits());
    let wrong = classify_split(faults, data);
    let predicted = policy.recoverable(faults, &wrong);
    let actual = codec.write(&mut block, data).is_ok();
    prop_assert_eq!(
        actual,
        predicted,
        "codec {} disagrees with policy {} on {:?} (wrong: {:?})",
        codec.name(),
        policy.name(),
        faults,
        wrong
    );
    if actual {
        prop_assert_eq!(codec.read(&block), data.clone(), "read-back mismatch");
    }
    Ok(())
}

#[test]
fn aegis_codec_matches_policy() {
    Runner::new("aegis_codec_matches_policy").cases(192).run(
        faults_and_seed(96, 12),
        shrink_faults,
        |(faults, seed)| {
            let rect = Rectangle::new(8, 13, 96).unwrap();
            let data = BitBlock::random(&mut SmallRng::seed_from_u64(*seed), 96);
            check_equivalence(
                Box::new(AegisCodec::new(rect.clone())),
                &AegisPolicy::new(rect),
                faults,
                &data,
            )
        },
    );
}

#[test]
fn aegis_rw_codec_matches_policy() {
    Runner::new("aegis_rw_codec_matches_policy").cases(192).run(
        faults_and_seed(96, 14),
        shrink_faults,
        |(faults, seed)| {
            let rect = Rectangle::new(8, 13, 96).unwrap();
            let data = BitBlock::random(&mut SmallRng::seed_from_u64(*seed), 96);
            check_equivalence(
                Box::new(AegisRwCodec::new(rect.clone())),
                &AegisRwPolicy::new(rect),
                faults,
                &data,
            )
        },
    );
}

#[test]
fn aegis_rw_p_codec_matches_policy() {
    Runner::new("aegis_rw_p_codec_matches_policy")
        .cases(192)
        .run(
            |rng| {
                let input = faults_and_seed(96, 12)(rng);
                (input, rng.random_range(1..6usize))
            },
            |(input, pointers)| {
                shrink_faults(input)
                    .into_iter()
                    .map(|i| (i, *pointers))
                    .collect()
            },
            |((faults, seed), pointers)| {
                let rect = Rectangle::new(8, 13, 96).unwrap();
                let data = BitBlock::random(&mut SmallRng::seed_from_u64(*seed), 96);
                check_equivalence(
                    Box::new(AegisRwPCodec::new(rect.clone(), *pointers)),
                    &AegisRwPPolicy::new(rect, *pointers),
                    faults,
                    &data,
                )
            },
        );
}

#[test]
fn safer_exhaustive_codec_matches_policy() {
    Runner::new("safer_exhaustive_codec_matches_policy")
        .cases(192)
        .run(faults_and_seed(64, 8), shrink_faults, |(faults, seed)| {
            let data = BitBlock::random(&mut SmallRng::seed_from_u64(*seed), 64);
            check_equivalence(
                Box::new(SaferCodec::new(3, 64, PartitionSearch::Exhaustive)),
                &SaferPolicy::new(3, 64, false),
                faults,
                &data,
            )
        });
}

#[test]
fn rdis_codec_matches_policy() {
    Runner::new("rdis_codec_matches_policy").cases(192).run(
        faults_and_seed(64, 10),
        shrink_faults,
        |(faults, seed)| {
            let data = BitBlock::random(&mut SmallRng::seed_from_u64(*seed), 64);
            check_equivalence(
                Box::new(RdisCodec::rdis3(64)),
                &RdisPolicy::rdis3(64),
                faults,
                &data,
            )
        },
    );
}

/// ECP allocates entries lazily (only faults that have manifested as
/// stuck-at-Wrong), so per-write equivalence needs a burn-in: after
/// enough random writes, the codec survives exactly the populations the
/// policy accepts.
#[test]
fn ecp_codec_matches_policy_after_burn_in() {
    Runner::new("ecp_codec_matches_policy_after_burn_in")
        .cases(192)
        .run(faults_and_seed(64, 9), shrink_faults, |(faults, seed)| {
            let mut rng = SmallRng::seed_from_u64(*seed);
            let policy = EcpPolicy::new(6, 64);
            let mut codec = EcpCodec::new(6, 64);
            let mut block = block_with(faults, 64);
            let mut survived_all = true;
            for _ in 0..40 {
                let data = BitBlock::random(&mut rng, 64);
                match codec.write(&mut block, &data) {
                    Ok(_) => prop_assert_eq!(codec.read(&block), data),
                    Err(_) => {
                        survived_all = false;
                        break;
                    }
                }
            }
            // The policy is data-independent; 40 random words make each fault
            // manifest as W at least once with probability 1 - 2^-40.
            prop_assert_eq!(survived_all, policy.guaranteed(faults));
            Ok(())
        });
}

/// The incremental SAFER codec is history-dependent, so no pointwise
/// equivalence — but it must never beat the exhaustive search, and the
/// greedy policy must never beat the exhaustive policy.
#[test]
fn safer_incremental_is_bounded_by_exhaustive() {
    Runner::new("safer_incremental_is_bounded_by_exhaustive")
        .cases(192)
        .run(faults_and_seed(64, 8), shrink_faults, |(faults, seed)| {
            let data = BitBlock::random(&mut SmallRng::seed_from_u64(*seed), 64);
            let wrong = classify_split(faults, &data);
            let incr = SaferPolicy::with_search(3, 64, false, PartitionSearch::Incremental);
            let exh = SaferPolicy::new(3, 64, false);
            if incr.recoverable(faults, &wrong) {
                prop_assert!(exh.recoverable(faults, &wrong));
            }
            let mut codec = SaferCodec::new(3, 64, PartitionSearch::Incremental);
            let mut block = block_with(faults, 64);
            if codec.write(&mut block, &data).is_ok() {
                prop_assert_eq!(codec.read(&block), data.clone());
                prop_assert!(
                    exh.recoverable(faults, &wrong),
                    "incremental codec succeeded where the exhaustive ideal cannot"
                );
            }
            Ok(())
        });
}
