//! Differential property suite for the PR 3 hot-path kernels: on random
//! geometries, data words, fault populations and known-fault truncations,
//! the word-level (ROM + mask) write paths must be observably identical to
//! the retained scalar references — same `Result`, same [`WriteReport`]
//! pulse/verify/inversion/re-partition counts, same slope evolution, same
//! physical codeword, same decode.
//!
//! Every case drives a *sequence* of writes through one codec pair so the
//! comparison covers state carried between writes (the sticky slope
//! counter, the stored inversion vector / pointer set), not just a single
//! encode. Failures shrink toward fewer faults and fewer/simpler writes
//! via the in-tree `sim_rng::prop` harness; CI runs the suite with
//! `SIM_PROP_CASES=10000` per codec variant (see `scripts/verify.sh`).

use aegis_pcm::aegis::{
    AegisCodec, AegisPolicy, AegisRwCodec, AegisRwPCodec, AegisRwPPolicy, AegisRwPolicy, Rectangle,
};
use aegis_pcm::bitblock::BitBlock;
use aegis_pcm::codec::StuckAtCodec;
use aegis_pcm::pcm::policy::{PolicyScratch, RecoveryPolicy};
use aegis_pcm::pcm::{Fault, PcmBlock};
use sim_rng::prop::{shrink, Runner};
use sim_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng, SmallRng};

/// Valid `(A, B, bits)` formations the generator draws from: `B` prime,
/// `A ≤ B`, `bits ≤ A·B`, spanning full and ragged rectangles from the
/// trivial 1×3 up through a 512-bit paper formation.
const GEOMETRIES: &[(usize, usize, usize)] = &[
    (1, 3, 3),
    (2, 3, 5),
    (2, 3, 6),
    (3, 5, 13),
    (3, 5, 15),
    (4, 5, 17),
    (5, 7, 32),
    (5, 7, 35),
    (4, 7, 26),
    (7, 11, 71),
    (9, 13, 112),
    (9, 61, 512),
];

/// One differential trial: a formation, a fault population to install
/// before any write, a sequence of data seeds (one write each), and how
/// many of the faults the controller is told about up front (rw/rw-p).
#[derive(Debug, Clone)]
struct Case {
    geometry: usize,
    faults: Vec<Fault>,
    writes: Vec<u64>,
    known: usize,
    pointers: usize,
}

impl Case {
    fn rect(&self) -> Rectangle {
        let (a, b, bits) = GEOMETRIES[self.geometry];
        Rectangle::new(a, b, bits).expect("generator only draws valid formations")
    }

    /// The known-fault prefix handed to `write_with_known`, clamped so
    /// shrinking the fault list can never desynchronize the two fields.
    fn known_faults(&self) -> &[Fault] {
        &self.faults[..self.known.min(self.faults.len())]
    }
}

/// Generator: geometry index, up to six distinct stuck cells, one to four
/// writes, a random known-prefix length, and a 1–4 pointer budget.
fn gen_case(rng: &mut SmallRng) -> Case {
    let geometry = rng.random_range(0..GEOMETRIES.len());
    let bits = GEOMETRIES[geometry].2;
    let n = rng.random_range(0..=6usize.min(bits));
    let mut offsets: Vec<usize> = Vec::with_capacity(n);
    while offsets.len() < n {
        let offset = rng.random_range(0..bits);
        if !offsets.contains(&offset) {
            offsets.push(offset);
        }
    }
    let faults = offsets
        .into_iter()
        .map(|offset| Fault::new(offset, rng.random_bool(0.5)))
        .collect::<Vec<_>>();
    let writes = (0..rng.random_range(1..=4usize))
        .map(|_| rng.random::<u64>())
        .collect();
    let known = rng.random_range(0..=faults.len());
    let pointers = rng.random_range(1..=4usize);
    Case {
        geometry,
        faults,
        writes,
        known,
        pointers,
    }
}

/// Shrinker: drop faults, then drop/simplify writes (keeping at least
/// one), then pull the pointer budget down.
fn shrink_case(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    for faults in shrink::vec(&case.faults, shrink::none) {
        out.push(Case {
            faults,
            ..case.clone()
        });
    }
    for writes in shrink::vec(&case.writes, |&s| shrink::u64_down(s)) {
        if !writes.is_empty() {
            out.push(Case {
                writes,
                ..case.clone()
            });
        }
    }
    for pointers in shrink::usize_toward(case.pointers, 1) {
        out.push(Case {
            pointers,
            ..case.clone()
        });
    }
    out
}

/// Builds the twin fault-identical blocks for one case.
fn twin_blocks(case: &Case, bits: usize) -> (PcmBlock, PcmBlock) {
    let mut kernel = PcmBlock::pristine(bits);
    let mut scalar = PcmBlock::pristine(bits);
    for fault in &case.faults {
        kernel.force_stuck(fault.offset, fault.stuck);
        scalar.force_stuck(fault.offset, fault.stuck);
    }
    (kernel, scalar)
}

fn data_word(seed: u64, bits: usize) -> BitBlock {
    BitBlock::random(&mut SmallRng::seed_from_u64(seed), bits)
}

#[test]
fn aegis_kernel_write_is_bit_identical_to_the_scalar_reference() {
    Runner::new("aegis_kernel_write_is_bit_identical_to_the_scalar_reference")
        .cases(2_000)
        .run(gen_case, shrink_case, |case| {
            let rect = case.rect();
            let bits = rect.bits();
            let mut kernel = AegisCodec::new(rect.clone());
            let mut scalar = AegisCodec::new(rect);
            let (mut kb, mut sb) = twin_blocks(case, bits);
            for &seed in &case.writes {
                let data = data_word(seed, bits);
                let kr = kernel.write(&mut kb, &data);
                let sr = scalar.write_scalar(&mut sb, &data);
                prop_assert_eq!(&kr, &sr);
                prop_assert_eq!(kernel.slope(), scalar.slope());
                prop_assert_eq!(kernel.inversion_vector(), scalar.inversion_vector());
                prop_assert_eq!(kb.read_raw(), sb.read_raw());
                prop_assert_eq!(kernel.read(&kb), scalar.read(&sb));
                if kr.is_ok() {
                    prop_assert_eq!(kernel.read(&kb), data.clone());
                }
            }
            Ok(())
        });
}

#[test]
fn aegis_rw_kernel_write_is_bit_identical_to_the_scalar_reference() {
    Runner::new("aegis_rw_kernel_write_is_bit_identical_to_the_scalar_reference")
        .cases(2_000)
        .run(gen_case, shrink_case, |case| {
            let rect = case.rect();
            let bits = rect.bits();
            let mut kernel = AegisRwCodec::new(rect.clone());
            let mut scalar = AegisRwCodec::new(rect);
            let (mut kb, mut sb) = twin_blocks(case, bits);
            let known = case.known_faults();
            for &seed in &case.writes {
                let data = data_word(seed, bits);
                let kr = kernel.write_with_known(&mut kb, &data, known);
                let sr = scalar.write_with_known_scalar(&mut sb, &data, known);
                prop_assert_eq!(&kr, &sr);
                prop_assert_eq!(kernel.slope(), scalar.slope());
                prop_assert_eq!(kb.read_raw(), sb.read_raw());
                prop_assert_eq!(kernel.read(&kb), scalar.read(&sb));
                if kr.is_ok() {
                    prop_assert_eq!(kernel.read(&kb), data.clone());
                }
            }
            Ok(())
        });
}

#[test]
fn aegis_rw_p_kernel_write_is_bit_identical_to_the_scalar_reference() {
    Runner::new("aegis_rw_p_kernel_write_is_bit_identical_to_the_scalar_reference")
        .cases(2_000)
        .run(gen_case, shrink_case, |case| {
            let rect = case.rect();
            let bits = rect.bits();
            let mut kernel = AegisRwPCodec::new(rect.clone(), case.pointers);
            let mut scalar = AegisRwPCodec::new(rect, case.pointers);
            prop_assert_eq!(kernel.pointers(), scalar.pointers());
            let (mut kb, mut sb) = twin_blocks(case, bits);
            let known = case.known_faults();
            for &seed in &case.writes {
                let data = data_word(seed, bits);
                let kr = kernel.write_with_known(&mut kb, &data, known);
                let sr = scalar.write_with_known_scalar(&mut sb, &data, known);
                prop_assert_eq!(&kr, &sr);
                prop_assert_eq!(kernel.slope(), scalar.slope());
                prop_assert_eq!(kb.read_raw(), sb.read_raw());
                prop_assert_eq!(kernel.read(&kb), scalar.read(&sb));
                if kr.is_ok() {
                    prop_assert_eq!(kernel.read(&kb), data.clone());
                }
            }
            Ok(())
        });
}

/// The full-cache entry points (`write`/`write_scalar`, which look the
/// block's entire fault population up themselves) agree too — this is the
/// path the Monte Carlo engine's codec-level experiments exercise.
#[test]
fn full_cache_write_paths_agree_for_the_rw_variants() {
    Runner::new("full_cache_write_paths_agree_for_the_rw_variants")
        .cases(1_000)
        .run(gen_case, shrink_case, |case| {
            let rect = case.rect();
            let bits = rect.bits();

            let mut kernel = AegisRwCodec::new(rect.clone());
            let mut scalar = AegisRwCodec::new(rect.clone());
            let (mut kb, mut sb) = twin_blocks(case, bits);
            for &seed in &case.writes {
                let data = data_word(seed, bits);
                prop_assert_eq!(
                    &kernel.write(&mut kb, &data),
                    &scalar.write_scalar(&mut sb, &data)
                );
                prop_assert_eq!(kb.read_raw(), sb.read_raw());
            }

            let mut kernel = AegisRwPCodec::new(rect.clone(), case.pointers);
            let mut scalar = AegisRwPCodec::new(rect, case.pointers);
            let (mut kb, mut sb) = twin_blocks(case, bits);
            for &seed in &case.writes {
                let data = data_word(seed, bits);
                prop_assert_eq!(
                    &kernel.write(&mut kb, &data),
                    &scalar.write_scalar(&mut sb, &data)
                );
                prop_assert_eq!(kb.read_raw(), sb.read_raw());
            }
            Ok(())
        });
}

/// The Monte Carlo predicates agree too: on random fault populations and
/// W/R splits (one split per write seed), the ROM-backed `recoverable` /
/// `recoverable_with` verdicts of all three Aegis policies equal the
/// scalar-mode policies' verdicts — the block-lifetime decision the fig5–7
/// sweeps are built on.
#[test]
fn policy_verdicts_agree_between_kernel_and_scalar_modes() {
    Runner::new("policy_verdicts_agree_between_kernel_and_scalar_modes")
        .cases(1_000)
        .run(gen_case, shrink_case, |case| {
            let rect = case.rect();
            let kernel: Vec<Box<dyn RecoveryPolicy>> = vec![
                Box::new(AegisPolicy::new(rect.clone())),
                Box::new(AegisRwPolicy::new(rect.clone())),
                Box::new(AegisRwPPolicy::new(rect.clone(), case.pointers)),
            ];
            let scalar: Vec<Box<dyn RecoveryPolicy>> = vec![
                Box::new(AegisPolicy::scalar(rect.clone())),
                Box::new(AegisRwPolicy::scalar(rect.clone())),
                Box::new(AegisRwPPolicy::scalar(rect, case.pointers)),
            ];
            let mut scratch = PolicyScratch::new();
            for &seed in &case.writes {
                let mut split_rng = SmallRng::seed_from_u64(seed);
                let wrong: Vec<bool> = case
                    .faults
                    .iter()
                    .map(|_| split_rng.random_bool(0.5))
                    .collect();
                for (k, s) in kernel.iter().zip(&scalar) {
                    let want = s.recoverable(&case.faults, &wrong);
                    prop_assert_eq!(k.recoverable(&case.faults, &wrong), want);
                    prop_assert_eq!(k.recoverable_with(&case.faults, &wrong, &mut scratch), want);
                    prop_assert_eq!(s.recoverable_with(&case.faults, &wrong, &mut scratch), want);
                }
            }
            Ok(())
        });
}

/// Fault-identical twins stay fault-identical: a sanity pin that the
/// differential harness itself cannot diverge through block state.
#[test]
fn twin_blocks_report_identical_fault_populations() {
    Runner::new("twin_blocks_report_identical_fault_populations")
        .cases(200)
        .run(gen_case, shrink_case, |case| {
            let bits = case.rect().bits();
            let (kb, sb) = twin_blocks(case, bits);
            prop_assert_eq!(kb.faults(), sb.faults());
            prop_assert!(kb.fault_count() <= case.faults.len());
            Ok(())
        });
}
