//! Exhaustive verification on small geometries: for every rectangle with
//! `B ≤ 7`, every fault placement up to 3 faults, every stuck-value
//! assignment and every data word… is too much — but every *fault/split
//! combination* is not. This file checks the three Aegis predicates
//! against an independently written brute-force oracle (straight from the
//! paper's §2.2/§2.4 prose), and the codecs against the predicates, with
//! no sampling anywhere.

use aegis_pcm::aegis::{
    AegisCodec, AegisPolicy, AegisRwCodec, AegisRwPPolicy, AegisRwPolicy, Rectangle,
};
use aegis_pcm::baselines::{combinations, MaskingCodec, PlbcCodec};
use aegis_pcm::bitblock::BitBlock;
use aegis_pcm::codec::StuckAtCodec;
use aegis_pcm::pcm::policy::RecoveryPolicy;
use aegis_pcm::pcm::{Fault, PcmBlock};

/// Brute-force oracle for base Aegis (§2.2): some slope has ≤ 1 W fault
/// per group and no W/R mix; groups computed straight from the definition
/// `y = (b − a·k) mod B`.
fn oracle_base(rect: &Rectangle, faults: &[Fault], wrong: &[bool]) -> bool {
    (0..rect.slopes()).any(|k| {
        let mut w_in = vec![0usize; rect.groups()];
        let mut r_in = vec![0usize; rect.groups()];
        for (fault, &is_wrong) in faults.iter().zip(wrong) {
            let group = rect.group_of(fault.offset, k);
            if is_wrong {
                w_in[group] += 1;
            } else {
                r_in[group] += 1;
            }
        }
        (0..rect.groups()).all(|g| w_in[g] <= 1 && !(w_in[g] >= 1 && r_in[g] >= 1))
    })
}

/// Brute-force oracle for Aegis-rw (§2.4): some slope mixes no group.
fn oracle_rw(rect: &Rectangle, faults: &[Fault], wrong: &[bool]) -> bool {
    (0..rect.slopes()).any(|k| {
        let mut w_in = vec![false; rect.groups()];
        let mut r_in = vec![false; rect.groups()];
        for (fault, &is_wrong) in faults.iter().zip(wrong) {
            let group = rect.group_of(fault.offset, k);
            if is_wrong {
                w_in[group] = true;
            } else {
                r_in[group] = true;
            }
        }
        (0..rect.groups()).all(|g| !(w_in[g] && r_in[g]))
    })
}

/// Brute-force oracle for Aegis-rw-p: a mix-free slope whose W-groups or
/// R-groups fit in `p` pointers.
fn oracle_rw_p(rect: &Rectangle, faults: &[Fault], wrong: &[bool], pointers: usize) -> bool {
    (0..rect.slopes()).any(|k| {
        let mut w_in = vec![false; rect.groups()];
        let mut r_in = vec![false; rect.groups()];
        for (fault, &is_wrong) in faults.iter().zip(wrong) {
            let group = rect.group_of(fault.offset, k);
            if is_wrong {
                w_in[group] = true;
            } else {
                r_in[group] = true;
            }
        }
        if (0..rect.groups()).any(|g| w_in[g] && r_in[g]) {
            return false;
        }
        let w_groups = w_in.iter().filter(|&&x| x).count();
        let r_groups = r_in.iter().filter(|&&x| x).count();
        w_groups.min(r_groups) <= pointers
    })
}

fn small_rectangles() -> Vec<Rectangle> {
    let mut out = Vec::new();
    for b in [3usize, 5, 7] {
        for a in 2..=b {
            for bits in [a * b - 1, a * b] {
                if let Ok(rect) = Rectangle::new(a, b, bits) {
                    out.push(rect);
                }
            }
        }
    }
    out
}

/// Every (offsets ≤ 3, split) combination, exhaustively.
fn for_all_populations<F: FnMut(&Rectangle, &[Fault], &[bool])>(rect: &Rectangle, mut f: F) {
    let n = rect.bits();
    // 1, 2 and 3 faults; stuck values folded into the split choice (the
    // predicates never read `stuck`, and the codec check derives data from
    // the split, so stuck = false loses no generality for them).
    for o1 in 0..n {
        for split in 0..2u8 {
            let faults = [Fault::new(o1, false)];
            let wrong = [split & 1 == 1];
            f(rect, &faults, &wrong);
        }
        for o2 in (o1 + 1)..n {
            for split in 0..4u8 {
                let faults = [Fault::new(o1, false), Fault::new(o2, false)];
                let wrong = [split & 1 == 1, split & 2 == 2];
                f(rect, &faults, &wrong);
            }
            for o3 in (o2 + 1)..n.min(o2 + 6) {
                // Third fault from a window keeps the count tractable
                // while still covering same-group and cross-group trios.
                for split in 0..8u8 {
                    let faults = [
                        Fault::new(o1, false),
                        Fault::new(o2, false),
                        Fault::new(o3, false),
                    ];
                    let wrong = [split & 1 == 1, split & 2 == 2, split & 4 == 4];
                    f(rect, &faults, &wrong);
                }
            }
        }
    }
}

#[test]
fn predicates_match_brute_force_oracles_exhaustively() {
    for rect in small_rectangles() {
        let base = AegisPolicy::new(rect.clone());
        let rw = AegisRwPolicy::new(rect.clone());
        let rw_p: Vec<AegisRwPPolicy> = (1..=3)
            .map(|p| AegisRwPPolicy::new(rect.clone(), p))
            .collect();
        for_all_populations(&rect, |rect, faults, wrong| {
            assert_eq!(
                base.recoverable(faults, wrong),
                oracle_base(rect, faults, wrong),
                "base mismatch on {} {faults:?} {wrong:?}",
                rect.formation()
            );
            assert_eq!(
                rw.recoverable(faults, wrong),
                oracle_rw(rect, faults, wrong),
                "rw mismatch on {} {faults:?} {wrong:?}",
                rect.formation()
            );
            for (p, policy) in rw_p.iter().enumerate() {
                assert_eq!(
                    policy.recoverable(faults, wrong),
                    oracle_rw_p(rect, faults, wrong, p + 1),
                    "rw-p({}) mismatch on {} {faults:?} {wrong:?}",
                    p + 1,
                    rect.formation()
                );
            }
        });
    }
}

#[test]
fn codecs_match_predicates_exhaustively_on_one_geometry() {
    // Physical round-trips are slower; exhaust one representative
    // rectangle. Stuck values and data are derived from the split
    // (stuck = 0; data bit = wrong at fault offsets, 0 elsewhere).
    let rect = Rectangle::new(4, 5, 20).unwrap();
    let base_policy = AegisPolicy::new(rect.clone());
    let rw_policy = AegisRwPolicy::new(rect.clone());
    for_all_populations(&rect, |rect, faults, wrong| {
        let mut data = BitBlock::zeros(rect.bits());
        let mut block = PcmBlock::pristine(rect.bits());
        for (fault, &is_wrong) in faults.iter().zip(wrong) {
            block.force_stuck(fault.offset, false);
            data.set(fault.offset, is_wrong); // stuck 0: wrong ⇔ data 1
        }
        let mut base = AegisCodec::new(rect.clone());
        assert_eq!(
            base.write(&mut block.clone(), &data).is_ok(),
            base_policy.recoverable(faults, wrong),
            "base codec mismatch {faults:?} {wrong:?}"
        );
        let mut rw = AegisRwCodec::new(rect.clone());
        let mut rw_block = block.clone();
        let rw_ok = rw.write(&mut rw_block, &data).is_ok();
        assert_eq!(
            rw_ok,
            rw_policy.recoverable(faults, wrong),
            "rw codec mismatch {faults:?} {wrong:?}"
        );
        if rw_ok {
            assert_eq!(rw.read(&rw_block), data);
        }
    });
}

/// Injects `offsets` as stuck-at faults: stuck value = bit `i` of
/// `values`, fully stuck when bit `i` of `partial` is clear and partially
/// stuck (weak-write probability 1/2) when set. The functional worst-case
/// model treats both kinds identically, so the codecs must too.
fn inject(block: &mut PcmBlock, offsets: &[usize], values: u32, partial: u32) {
    for (i, &offset) in offsets.iter().enumerate() {
        let value = values >> i & 1 == 1;
        if partial >> i & 1 == 1 {
            block.force_partially_stuck(offset, value, 128);
        } else {
            block.force_stuck(offset, value);
        }
    }
}

/// The additive-masking guarantee, exhaustively: on every block width
/// `n ≤ 8` with `t ∈ {1, 2}` row-blocks, every placement of `u ≤ 2t`
/// stuck cells, every stuck-value assignment, both stuckness kinds and
/// **every** `2^n` data word round-trips through [`MaskingCodec`] — the
/// `u ≤ d − 1 = 2t` capability bound of the BCH construction, with no
/// sampling anywhere.
#[test]
fn masking_codec_round_trips_every_message_under_the_distance_bound() {
    for (n, t) in [(7usize, 1usize), (8, 1), (8, 2)] {
        for u in 0..=(2 * t) {
            for offsets in combinations(n, u) {
                for values in 0..1u32 << u {
                    // All-full and alternating-partial stuckness: partial
                    // cells must be indistinguishable from full ones to
                    // the codec (the worst-case functional model).
                    for partial in [0u32, 0b0101_0101 & ((1 << u) - 1)] {
                        let mut template = PcmBlock::pristine(n);
                        inject(&mut template, &offsets, values, partial);
                        for message in 0..1u32 << n {
                            let data = BitBlock::from_fn(n, |i| message >> i & 1 == 1);
                            let mut block = template.clone();
                            let mut codec = MaskingCodec::new(t, n);
                            codec.write(&mut block, &data).unwrap_or_else(|e| {
                                panic!(
                                    "Mask{t}/{n}: u={u} {offsets:?} v={values:#b} \
                                         p={partial:#b} msg={message:#b} must mask: {e}"
                                )
                            });
                            assert_eq!(
                                codec.read(&block),
                                data,
                                "Mask{t}/{n}: {offsets:?} v={values:#b} msg={message:#b}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The bound is *tight*: at `n = 15` (one full GF(2^4) field, `d = 2t+1`)
/// a placement of `d = 2t + 1` stuck cells and a message exist that
/// Mask-t cannot store. Exhibits a concrete witness for t = 1 and t = 2
/// by exhaustive search over placements and stuck values.
#[test]
fn masking_distance_bound_is_tight_at_one_full_field() {
    let n = 15;
    for t in [1usize, 2] {
        let u = 2 * t + 1;
        let witness = combinations(n, u).into_iter().any(|offsets| {
            (0..1u32 << u).any(|values| {
                let mut block = PcmBlock::pristine(n);
                inject(&mut block, &offsets, values, 0);
                // The all-zeros message suffices: failure only depends on
                // the wrong-cell pattern, and the stuck values sweep it.
                let data = BitBlock::zeros(n);
                let mut codec = MaskingCodec::new(t, n);
                codec.write(&mut block, &data).is_err()
            })
        });
        assert!(witness, "Mask{t}/{n} must fail somewhere at u = {u} = d");
    }
}

/// The partitioned linear code's pointer budget is real capability: on
/// every width `n ≤ 8`, PLC(t, e) round-trips every message under every
/// placement of `u ≤ 2t + e` stuck cells — each pointer repairs one cell
/// outright, the mask guarantees the remaining `2t`. Writes that succeed
/// must also read back exactly, and never spend more than `e` pointers.
#[test]
fn plbc_codec_round_trips_every_message_with_pointer_extension() {
    for (n, t, e) in [(7usize, 1usize, 1usize), (8, 1, 2)] {
        for u in 0..=(2 * t + e) {
            for offsets in combinations(n, u) {
                for values in 0..1u32 << u {
                    for partial in [0u32, 0b0101_0101 & ((1 << u) - 1)] {
                        let mut template = PcmBlock::pristine(n);
                        inject(&mut template, &offsets, values, partial);
                        for message in 0..1u32 << n {
                            let data = BitBlock::from_fn(n, |i| message >> i & 1 == 1);
                            let mut block = template.clone();
                            let mut codec = PlbcCodec::new(t, e, n);
                            codec.write(&mut block, &data).unwrap_or_else(|err| {
                                panic!(
                                    "PLC{t}+{e}/{n}: u={u} {offsets:?} v={values:#b} \
                                         msg={message:#b} must store: {err}"
                                )
                            });
                            assert!(codec.entries_used() <= e);
                            assert_eq!(
                                codec.read(&block),
                                data,
                                "PLC{t}+{e}/{n}: {offsets:?} v={values:#b} msg={message:#b}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Every valid formation whose block fits in one machine word, full and
/// ragged: for each prime `B ≤ 61` and each `A ≤ B`, the complete
/// `A·B`-bit block, the one-bit-ragged block, and — when `A·B > 64` — the
/// 64-bit block (the paper-style truncated rectangle, e.g. 9×61/512's
/// word-sized cousin).
fn single_word_rectangles() -> Vec<Rectangle> {
    let primes = [
        3usize, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    ];
    let mut out = Vec::new();
    for b in primes {
        for a in 1..=b {
            let mut sizes = vec![64];
            if a * b >= 1 {
                sizes.push(a * b);
                sizes.push(a * b - 1);
            }
            sizes.retain(|&bits| (1..=64).contains(&bits) && bits <= a * b);
            sizes.sort_unstable();
            sizes.dedup();
            for bits in sizes {
                if let Ok(rect) = Rectangle::new(a, b, bits) {
                    out.push(rect);
                }
            }
        }
    }
    out
}

/// The precomputed mask ROMs agree with [`Rectangle::group_members`] on
/// every `(slope, group)` of every single-word geometry — the word-level
/// kernels' entire view of the partition, checked against the arithmetic
/// definition with no sampling.
#[test]
fn shift_rom_masks_equal_group_members_on_every_single_word_geometry() {
    use aegis_pcm::aegis::rom::{InversionRom, ShiftRom};
    let rects = single_word_rectangles();
    assert!(rects.len() > 500, "enumeration collapsed: {}", rects.len());
    for rect in &rects {
        let shift = ShiftRom::new(rect);
        let inv_rom = InversionRom::new(rect);
        assert_eq!(shift.bits(), rect.bits());
        assert_eq!(shift.words_per_mask(), 1, "{rect:?} fits one word");
        for slope in 0..rect.slopes() {
            for group in 0..rect.groups() {
                let expect = BitBlock::from_indices(rect.bits(), rect.group_members(slope, group));
                assert_eq!(
                    shift.mask_words(slope, group),
                    expect.as_words(),
                    "ShiftRom mask {}x{}/{} slope {slope} group {group}",
                    rect.a(),
                    rect.b(),
                    rect.bits()
                );
                assert_eq!(
                    inv_rom.group_mask(slope, group),
                    &expect,
                    "InversionRom mask {}x{}/{} slope {slope} group {group}",
                    rect.a(),
                    rect.b(),
                    rect.bits()
                );
            }
        }
    }
}

/// [`ShiftRom::inversion_mask`] round-trips against per-point
/// [`Rectangle::group_of`]: for a set of structured inversion vectors on
/// every single-word geometry (and *all* `2^B` vectors when `B ≤ 7`), the
/// expanded mask selects exactly the offsets whose group bit is set, and
/// the `GroupRom` table agrees with the arithmetic at every offset.
#[test]
fn shift_rom_inversion_masks_round_trip_through_group_of() {
    use aegis_pcm::aegis::rom::{GroupRom, ShiftRom};
    for rect in single_word_rectangles() {
        let shift = ShiftRom::new(&rect);
        let groups_rom = GroupRom::new(&rect);
        let groups = rect.groups();
        let mut vectors: Vec<BitBlock> = vec![
            BitBlock::zeros(groups),
            BitBlock::ones_block(groups),
            BitBlock::from_fn(groups, |g| g % 2 == 0),
            BitBlock::from_fn(groups, |g| g % 3 == 1),
        ];
        if groups <= 7 {
            vectors = (0..1u32 << groups)
                .map(|v| BitBlock::from_fn(groups, |g| (v >> g) & 1 == 1))
                .collect();
        }
        let mut out = BitBlock::zeros(rect.bits());
        for slope in 0..rect.slopes() {
            for inversion in &vectors {
                shift.inversion_mask_into(slope, inversion, &mut out);
                for offset in 0..rect.bits() {
                    let group = rect.group_of(offset, slope);
                    assert_eq!(groups_rom.group_of(offset, slope), group);
                    assert_eq!(
                        out.get(offset),
                        inversion.get(group),
                        "{}x{}/{} slope {slope} offset {offset}",
                        rect.a(),
                        rect.b(),
                        rect.bits()
                    );
                }
                assert_eq!(&shift.inversion_mask(slope, inversion), &out);
            }
        }
    }
}
