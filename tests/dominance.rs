//! Cross-scheme dominance properties: partial orders that must hold
//! between schemes and their variants on *every* fault population and
//! split. These pin down the structural relationships the paper argues
//! informally (a cache never hurts, pointers never hurt, deeper recursion
//! never hurts, more ECP entries never hurt).

use aegis_pcm::aegis::{AegisPolicy, AegisRwPPolicy, AegisRwPolicy, Rectangle};
use aegis_pcm::baselines::{
    EcpPolicy, MaskingPolicy, PlbcPolicy, RdisPolicy, RdisScheme, SaferPolicy,
};
use aegis_pcm::pcm::policy::RecoveryPolicy;
use aegis_pcm::pcm::Fault;
use sim_rng::prop::{shrink, Runner};
use sim_rng::{prop_assert, prop_assert_eq, Rng, SmallRng};
use std::collections::BTreeMap;

/// Generator: a random fault population + split over a 512-bit block —
/// up to `max_faults` distinct offsets with random stuck values and W/R
/// classifications, offset-sorted like the arrival bookkeeping produces.
fn population(max_faults: usize) -> impl Fn(&mut SmallRng) -> (Vec<Fault>, Vec<bool>) {
    move |rng| {
        let count = rng.random_range(0..=max_faults);
        let mut map = BTreeMap::new();
        while map.len() < count {
            map.insert(
                rng.random_range(0..512usize),
                (rng.random::<bool>(), rng.random::<bool>()),
            );
        }
        let mut faults = Vec::with_capacity(map.len());
        let mut wrong = Vec::with_capacity(map.len());
        for (offset, (stuck, w)) in map {
            faults.push(Fault::new(offset, stuck));
            wrong.push(w);
        }
        (faults, wrong)
    }
}

/// Shrinker: drop (fault, wrong) pairs in tandem — offsets stay distinct
/// and sorted, so every candidate is a valid smaller population.
fn shrink_population(input: &(Vec<Fault>, Vec<bool>)) -> Vec<(Vec<Fault>, Vec<bool>)> {
    let pairs: Vec<(Fault, bool)> = input
        .0
        .iter()
        .copied()
        .zip(input.1.iter().copied())
        .collect();
    shrink::vec(&pairs, |_| Vec::new())
        .into_iter()
        .map(|p| p.into_iter().unzip())
        .collect()
}

/// Base Aegis acceptance implies Aegis-rw acceptance (the rw variant
/// strictly relaxes the per-group condition).
#[test]
fn rw_dominates_base_aegis() {
    Runner::new("rw_dominates_base_aegis").cases(256).run(
        population(16),
        shrink_population,
        |(faults, wrong)| {
            let rect = Rectangle::new(17, 31, 512).unwrap();
            let base = AegisPolicy::new(rect.clone());
            let rw = AegisRwPolicy::new(rect);
            if base.recoverable(faults, wrong) {
                prop_assert!(rw.recoverable(faults, wrong));
            }
            Ok(())
        },
    );
}

/// More pointers never hurt, and a full pointer budget equals Aegis-rw.
#[test]
fn rw_p_is_monotone_and_saturates() {
    Runner::new("rw_p_is_monotone_and_saturates")
        .cases(256)
        .run(population(14), shrink_population, |(faults, wrong)| {
            let rect = Rectangle::new(17, 31, 512).unwrap();
            let rw = AegisRwPolicy::new(rect.clone());
            let mut previous = false;
            for pointers in [1usize, 2, 4, 8, 31] {
                let policy = AegisRwPPolicy::new(rect.clone(), pointers);
                let now = policy.recoverable(faults, wrong);
                prop_assert!(!previous || now, "losing acceptance when adding pointers");
                previous = now;
            }
            // p = B pointers: some case always fits the budget on a good slope.
            let saturated = AegisRwPPolicy::new(rect, 31);
            prop_assert_eq!(
                saturated.recoverable(faults, wrong),
                rw.recoverable(faults, wrong)
            );
            Ok(())
        });
}

/// ECP with more entries accepts a superset.
#[test]
fn ecp_is_monotone_in_entries() {
    Runner::new("ecp_is_monotone_in_entries").cases(256).run(
        population(12),
        shrink_population,
        |(faults, wrong)| {
            let mut previous = false;
            for n in [2usize, 4, 6, 8, 12] {
                let now = EcpPolicy::new(n, 512).recoverable(faults, wrong);
                prop_assert!(!previous || now);
                previous = now;
            }
            Ok(())
        },
    );
}

/// The fail cache strictly relaxes SAFER's per-group condition.
#[test]
fn safer_cache_dominates_plain() {
    Runner::new("safer_cache_dominates_plain").cases(256).run(
        population(12),
        shrink_population,
        |(faults, wrong)| {
            for m in [4usize, 6] {
                let plain = SaferPolicy::new(m, 512, false);
                let cached = SaferPolicy::new(m, 512, true);
                if plain.recoverable(faults, wrong) {
                    prop_assert!(cached.recoverable(faults, wrong), "m={m}");
                }
            }
            Ok(())
        },
    );
}

/// More SAFER groups (a longer vector) never hurt, under the
/// exhaustive search: any m-position partition refines into an
/// (m+1)-position one, and refinement preserves group feasibility.
#[test]
fn safer_is_monotone_in_vector_length() {
    Runner::new("safer_is_monotone_in_vector_length")
        .cases(256)
        .run(population(10), shrink_population, |(faults, wrong)| {
            let mut previous = false;
            for m in [3usize, 4, 5, 6] {
                let now = SaferPolicy::new(m, 512, false).recoverable(faults, wrong);
                prop_assert!(!previous || now, "m={m}");
                previous = now;
            }
            Ok(())
        });
}

/// Deeper RDIS recursion accepts a superset.
#[test]
fn rdis_is_monotone_in_depth() {
    Runner::new("rdis_is_monotone_in_depth").cases(256).run(
        population(12),
        shrink_population,
        |(faults, wrong)| {
            let mut previous = false;
            for depth in [1usize, 2, 3, 4] {
                let scheme = RdisScheme::new(16, 32, depth);
                let now = RdisPolicy::new(scheme).recoverable(faults, wrong);
                prop_assert!(!previous || now, "depth={depth}");
                previous = now;
            }
            Ok(())
        },
    );
}

/// At matched overhead the masking family strictly dominates ECP: Mask6
/// spends 60 bits to ECP6's 61 and accepts a strict superset of
/// populations. ECP6's acceptance (`u ≤ 6`) sits inside Mask6's distance
/// bound (`u ≤ 12`), and every all-W population with 7..=12 faults is a
/// strict separation witness.
#[test]
fn mask6_strictly_dominates_ecp6_at_matched_overhead() {
    let mask = MaskingPolicy::new(6, 512);
    let ecp = EcpPolicy::new(6, 512);
    assert!(mask.overhead_bits() < ecp.overhead_bits());
    Runner::new("mask6_strictly_dominates_ecp6_at_matched_overhead")
        .cases(256)
        .run(population(16), shrink_population, |(faults, wrong)| {
            let mask = MaskingPolicy::new(6, 512);
            let ecp = EcpPolicy::new(6, 512);
            if ecp.recoverable(faults, wrong) {
                prop_assert!(
                    mask.recoverable(faults, wrong),
                    "ECP6 accepted a population Mask6 rejects"
                );
            }
            Ok(())
        });
    // Strict separation at every fault count between the two guarantees,
    // on the adversarial all-W split.
    for f in 7..=12usize {
        let faults: Vec<Fault> = (0..f).map(|i| Fault::new(i * 37, false)).collect();
        let wrong = vec![true; f];
        assert!(
            !ecp.recoverable(&faults, &wrong),
            "ECP6 accepted {f} faults"
        );
        assert!(
            mask.recoverable(&faults, &wrong),
            "Mask6 rejected {f} faults"
        );
    }
}

/// A larger pointer budget accepts a superset, and any pointer budget
/// accepts at least what the bare mask accepts — per split, not merely in
/// the mean.
#[test]
fn plbc_is_monotone_in_pointer_budget() {
    Runner::new("plbc_is_monotone_in_pointer_budget")
        .cases(256)
        .run(population(14), shrink_population, |(faults, wrong)| {
            if MaskingPolicy::new(4, 512).recoverable(faults, wrong) {
                prop_assert!(PlbcPolicy::new(4, 1, 512).recoverable(faults, wrong));
            }
            let mut previous = false;
            for pointers in [1usize, 2, 3] {
                let now = PlbcPolicy::new(4, pointers, 512).recoverable(faults, wrong);
                prop_assert!(!previous || now, "losing acceptance when adding pointers");
                previous = now;
            }
            Ok(())
        });
}

/// Neither information-theoretic family dominates the other at
/// near-matched overhead: on one full GF(2^4) field (15 bits), Mask2
/// (8 overhead bits) and PLC1+1 (9 bits) cross over. The witnesses are
/// found by exhaustive search over fault placements and splits, so this
/// pins the exact boundary rather than a sampled one.
#[test]
fn mask_and_pointer_extension_cross_over_at_one_full_field() {
    let mask2 = MaskingPolicy::new(2, 15);
    let plbc = PlbcPolicy::new(1, 1, 15);
    let mut mask_only = None; // Mask2 accepts, PLC1+1 rejects
    let mut plbc_only = None; // PLC1+1 accepts, Mask2 rejects
    for u in 4..=6usize {
        if mask_only.is_some() && plbc_only.is_some() {
            break;
        }
        for offsets in aegis_pcm::baselines::combinations(15, u) {
            let faults: Vec<Fault> = offsets.iter().map(|&o| Fault::new(o, false)).collect();
            for pattern in 0..1u32 << u {
                let wrong: Vec<bool> = (0..u).map(|i| pattern >> i & 1 == 1).collect();
                let m = mask2.recoverable(&faults, &wrong);
                let p = plbc.recoverable(&faults, &wrong);
                if m && !p && mask_only.is_none() {
                    mask_only = Some((offsets.clone(), pattern));
                }
                if p && !m && plbc_only.is_none() {
                    plbc_only = Some((offsets.clone(), pattern));
                }
            }
            if mask_only.is_some() && plbc_only.is_some() {
                break;
            }
        }
    }
    assert!(
        mask_only.is_some(),
        "expected a split Mask2 accepts but PLC1+1 rejects"
    );
    assert!(
        plbc_only.is_some(),
        "expected a split PLC1+1 accepts but Mask2 rejects"
    );
}

/// `guaranteed` is never more permissive than any single split.
#[test]
fn guaranteed_implies_every_sampled_split() {
    Runner::new("guaranteed_implies_every_sampled_split")
        .cases(256)
        .run(population(10), shrink_population, |(faults, wrong)| {
            let rect = Rectangle::new(17, 31, 512).unwrap();
            let policies: Vec<Box<dyn RecoveryPolicy>> = vec![
                Box::new(AegisPolicy::new(rect.clone())),
                Box::new(EcpPolicy::new(6, 512)),
                Box::new(SaferPolicy::new(5, 512, false)),
                Box::new(RdisPolicy::rdis3(512)),
            ];
            for policy in &policies {
                if policy.guaranteed(faults) {
                    prop_assert!(
                        policy.recoverable(faults, wrong),
                        "{} guarantees but rejects a split",
                        policy.name()
                    );
                }
            }
            Ok(())
        });
}
