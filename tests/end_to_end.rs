//! End-to-end scenarios across crates: whole pages of wearing PCM driven
//! through the functional codecs, fail-cache integration, and agreement
//! between the functional path and the Monte Carlo engine.

use aegis_pcm::aegis::{AegisCodec, AegisRwCodec, Rectangle};
use aegis_pcm::baselines::{EcpCodec, UnprotectedCodec};
use aegis_pcm::bitblock::BitBlock;
use aegis_pcm::codec::StuckAtCodec;
use aegis_pcm::pcm::failcache::{DirectMappedFailCache, FaultOracle, IdealFailCache};
use aegis_pcm::pcm::montecarlo::{evaluate_block, FailureCriterion};
use aegis_pcm::pcm::timeline::TimelineSampler;
use aegis_pcm::pcm::{LifetimeModel, PcmBlock, WearModel};
use sim_rng::SmallRng;
use sim_rng::{Rng, SeedableRng};

/// Writes random pages into a small "page" of codec-protected blocks until
/// the first uncorrectable write; returns total faults accumulated at
/// death.
fn wear_out_page<F>(mut make_codec: F, blocks: usize, bits: usize, seed: u64) -> usize
where
    F: FnMut() -> Box<dyn StuckAtCodec>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let lifetimes = LifetimeModel::new(400.0, 0.25); // fast-wearing cells
    let mut codecs: Vec<Box<dyn StuckAtCodec>> = (0..blocks).map(|_| make_codec()).collect();
    let mut cells: Vec<PcmBlock> = (0..blocks)
        .map(|_| PcmBlock::with_lifetimes(bits, |_| lifetimes.sample(&mut rng) as u64))
        .collect();
    loop {
        for (codec, block) in codecs.iter_mut().zip(&mut cells) {
            let data = BitBlock::random(&mut rng, bits);
            match codec.write(block, &data) {
                Ok(_) => assert_eq!(codec.read(block), data, "{}", codec.name()),
                Err(_) => {
                    return cells.iter().map(PcmBlock::fault_count).sum();
                }
            }
        }
    }
}

#[test]
fn protected_pages_die_with_more_faults_than_unprotected() {
    let bits = 64;
    let rect = Rectangle::new(8, 13, bits).unwrap();
    let unprotected = wear_out_page(|| Box::new(UnprotectedCodec::new(bits)), 4, bits, 9);
    let ecp = wear_out_page(|| Box::new(EcpCodec::new(4, bits)), 4, bits, 9);
    let aegis = wear_out_page(
        {
            let rect = rect.clone();
            move || Box::new(AegisCodec::new(rect.clone()))
        },
        4,
        bits,
        9,
    );
    let aegis_rw = wear_out_page(
        move || Box::new(AegisRwCodec::new(rect.clone())),
        4,
        bits,
        9,
    );
    assert!(unprotected <= 1, "unprotected dies at its first fault");
    assert!(ecp > unprotected, "ECP4 must absorb faults ({ecp})");
    assert!(
        aegis > ecp,
        "Aegis should beat ECP4 here ({aegis} vs {ecp})"
    );
    assert!(
        aegis_rw >= aegis,
        "the cache-assisted variant cannot do worse ({aegis_rw} vs {aegis})"
    );
}

#[test]
fn real_wear_converts_to_fault_times_as_modeled() {
    // Drive a block with genuinely wearing cells and verify the observed
    // fault-arrival time tracks the WearModel conversion.
    let mut rng = SmallRng::seed_from_u64(4);
    let lifetime = 600u64;
    let bits = 64;
    let mut block = PcmBlock::with_lifetimes(bits, |_| lifetime);
    let mut writes = 0u64;
    while block.fault_count() == 0 {
        let data = BitBlock::random(&mut rng, bits);
        block.write_raw(&data);
        writes += 1;
        assert!(writes < 10 * lifetime, "cells never wear out");
    }
    let expected = WearModel::paper_default().fault_time(lifetime as f64);
    let ratio = writes as f64 / expected;
    assert!(
        (0.8..1.2).contains(&ratio),
        "first fault after {writes} writes; model predicts {expected}"
    );
}

#[test]
fn aegis_rw_with_bounded_cache_still_roundtrips() {
    // A tiny direct-mapped fail cache misses often; the codec must fall
    // back to verification-read discovery and stay correct.
    let rect = Rectangle::new(8, 13, 96).unwrap();
    let mut codec = AegisRwCodec::new(rect);
    let mut cache = DirectMappedFailCache::new(4);
    let mut ideal = IdealFailCache::new();
    let mut block = PcmBlock::pristine(96);
    let mut rng = SmallRng::seed_from_u64(12);
    for step in 0..40 {
        if step % 5 == 0 {
            let o = rng.random_range(0..96);
            block.force_stuck(o, rng.random());
        }
        let known = cache.known_faults(1, &block);
        let data = BitBlock::random(&mut rng, 96);
        match codec.write_with_known(&mut block, &data, &known) {
            Ok(_) => assert_eq!(codec.read(&block), data, "step {step}"),
            Err(_) => break, // block exhausted: acceptable, later steps moot
        }
        // The write's verification reads discovered the real faults;
        // record them as the controller would.
        for fault in ideal.known_faults(1, &block) {
            cache.record(1, fault);
        }
    }
    assert!(cache.hits() > 0, "cache never hit — the model is inert");
}

#[test]
fn functional_codec_agrees_with_monte_carlo_on_one_timeline() {
    // Sample one fault timeline, then live it twice: once through the
    // Monte Carlo evaluator, once by physically injecting the same faults
    // into cells and driving the real codec with the split-deciding data.
    let bits = 96;
    let rect = Rectangle::new(8, 13, bits).unwrap();
    let sampler = TimelineSampler::new(
        bits,
        LifetimeModel::paper_default(),
        WearModel::paper_default(),
        24,
    );
    for seed in 0..20u64 {
        let mut rng = TimelineSampler::page_rng(99, seed);
        let tl = sampler.sample_block(&mut rng);
        let policy = aegis_pcm::aegis::AegisPolicy::new(rect.clone());
        let outcome = evaluate_block(&policy, &tl, FailureCriterion::PerEventSplit { samples: 1 });

        let mut codec = AegisCodec::new(rect.clone());
        let mut block = PcmBlock::pristine(bits);
        let mut arrived: Vec<aegis_pcm::pcm::Fault> = Vec::new();
        let mut survived = 0usize;
        for event in &tl.events {
            block.force_stuck(event.fault.offset, event.fault.stuck);
            arrived.push(event.fault);
            // Reconstruct the exact data word whose split the evaluator
            // sampled: the split is aligned to faults in *arrival* order.
            let mut split_rng = SmallRng::seed_from_u64(event.split_seed);
            let wrong = aegis_pcm::pcm::sample_split(&mut split_rng, arrived.len());
            let mut data = BitBlock::zeros(bits);
            for (fault, w) in arrived.iter().zip(&wrong) {
                // W fault ⇔ the data bit differs from the stuck value.
                data.set(fault.offset, fault.stuck != *w);
            }
            if codec.write(&mut block, &data).is_err() {
                break;
            }
            survived += 1;
        }
        assert_eq!(
            survived, outcome.events_survived,
            "seed {seed}: functional replay diverged from the Monte Carlo engine"
        );
    }
}
