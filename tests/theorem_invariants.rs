//! The paper's theorems and guarantees as executable properties, checked
//! over randomly drawn rectangle formations (not just the ones the paper
//! uses).

use aegis_pcm::aegis::primes::{is_prime, next_prime_at_least};
use aegis_pcm::aegis::rom::{CollisionRom, GroupRom, InversionRom};
use aegis_pcm::aegis::{AegisCodec, AegisRwPolicy, Rectangle};
use aegis_pcm::baselines::{MaskingPolicy, PlbcPolicy};
use aegis_pcm::bitblock::BitBlock;
use aegis_pcm::codec::StuckAtCodec;
use aegis_pcm::pcm::policy::RecoveryPolicy;
use aegis_pcm::pcm::{sample_split_for, Fault, PcmBlock, Stuckness};
use sim_rng::prop::{shrink, Runner};
use sim_rng::{prop_assert, prop_assert_eq, Rng, SeedableRng, SmallRng};

/// Generator: a random valid rectangle — prime B in [5, 61], A in [2, B],
/// bits filling most of it — retrying draws the constructor rejects
/// (mirrors the old `prop_filter_map`).
fn rectangle(rng: &mut SmallRng) -> Rectangle {
    loop {
        let b = next_prime_at_least(rng.random_range(5..62usize));
        let a = 2 + rng.random_range(2..62usize) % (b - 1);
        let slack = rng.random_range(1..30usize);
        let bits = (a * b).saturating_sub(slack % (a * b / 2 + 1)).max(a + 1);
        if let Ok(rect) = Rectangle::new(a, b, bits) {
            return rect;
        }
    }
}

/// Generator: a rectangle plus a data/fault seed for the tests that also
/// draw random offsets and words.
fn rectangle_and_seed(rng: &mut SmallRng) -> (Rectangle, u64) {
    (rectangle(rng), rng.random())
}

/// Theorem 1: under every slope, every bit belongs to exactly one
/// group, and `group_of` agrees with `group_members`.
#[test]
fn theorem1_partition_is_total_and_disjoint() {
    Runner::new("theorem1_partition_is_total_and_disjoint")
        .cases(64)
        .run(rectangle, shrink::none, |rect| {
            for slope in 0..rect.slopes() {
                let mut seen = vec![false; rect.bits()];
                for group in 0..rect.groups() {
                    for offset in rect.group_members(slope, group) {
                        prop_assert!(!seen[offset]);
                        seen[offset] = true;
                        prop_assert_eq!(rect.group_of(offset, slope), group);
                    }
                }
                prop_assert!(seen.into_iter().all(|s| s));
            }
            Ok(())
        });
}

/// Theorem 2: any two bits share a group under at most one slope, and
/// `collision_slope` names exactly that slope.
#[test]
fn theorem2_at_most_one_shared_slope() {
    Runner::new("theorem2_at_most_one_shared_slope")
        .cases(64)
        .run(rectangle_and_seed, shrink::none, |(rect, seed)| {
            let mut rng = SmallRng::seed_from_u64(*seed);
            for _ in 0..64 {
                let o1 = rng.random_range(0..rect.bits());
                let o2 = rng.random_range(0..rect.bits());
                if o1 == o2 {
                    continue;
                }
                let shared: Vec<usize> = (0..rect.slopes())
                    .filter(|&k| rect.group_of(o1, k) == rect.group_of(o2, k))
                    .collect();
                prop_assert!(shared.len() <= 1);
                prop_assert_eq!(rect.collision_slope(o1, o2), shared.first().copied());
            }
            Ok(())
        });
}

/// §2.2: with `f ≤ hard FTC` faults, at most `C(f,2)` slopes can be
/// poisoned, so a collision-free configuration always exists and the
/// codec must accept *any* data word.
#[test]
fn hard_ftc_writes_never_fail() {
    Runner::new("hard_ftc_writes_never_fail").cases(64).run(
        rectangle_and_seed,
        shrink::none,
        |(rect, seed)| {
            let mut rng = SmallRng::seed_from_u64(*seed);
            let f = rect.hard_ftc().min(rect.bits() / 2);
            let mut block = PcmBlock::pristine(rect.bits());
            let mut placed = Vec::new();
            while placed.len() < f {
                let o = rng.random_range(0..rect.bits());
                if !placed.contains(&o) {
                    placed.push(o);
                    block.force_stuck(o, rng.random());
                }
            }
            let mut codec = AegisCodec::new(rect.clone());
            for _ in 0..4 {
                let data = BitBlock::random(&mut rng, rect.bits());
                let report = codec.write(&mut block, &data);
                prop_assert!(
                    report.is_ok(),
                    "hard FTC violated: {f} faults on {}",
                    rect.formation()
                );
                prop_assert_eq!(codec.read(&block), data);
            }
            Ok(())
        },
    );
}

/// §2.4: Aegis-rw needs at most `f_W·f_R + 1` candidate slopes, so any
/// split with `f_W·f_R < B` is recoverable.
#[test]
fn rw_slope_budget_guarantee() {
    Runner::new("rw_slope_budget_guarantee").cases(64).run(
        rectangle_and_seed,
        shrink::none,
        |(rect, seed)| {
            let mut rng = SmallRng::seed_from_u64(*seed);
            let policy = AegisRwPolicy::new(rect.clone());
            // Pick f_W and f_R with product < B.
            let fw = 1 + rng.random_range(0..3usize);
            let max_fr = (rect.b() - 1) / fw;
            let fr = 1 + rng.random_range(0..max_fr.min(4));
            let total = (fw + fr).min(rect.bits());
            let mut offsets = Vec::new();
            while offsets.len() < total {
                let o = rng.random_range(0..rect.bits());
                if !offsets.contains(&o) {
                    offsets.push(o);
                }
            }
            let faults: Vec<Fault> = offsets.iter().map(|&o| Fault::new(o, false)).collect();
            let wrong: Vec<bool> = (0..total).map(|i| i < fw.min(total)).collect();
            prop_assert!(
                policy.recoverable(&faults, &wrong),
                "fw={fw} fr={fr} must be within {}'s rw budget",
                rect.formation()
            );
            Ok(())
        },
    );
}

/// The ROM structures are pure tabulations of the geometry.
#[test]
fn roms_agree_with_geometry() {
    Runner::new("roms_agree_with_geometry")
        .cases(64)
        .run(rectangle, shrink::none, |rect| {
            let group_rom = GroupRom::new(rect);
            let inv_rom = InversionRom::new(rect);
            let coll_rom = CollisionRom::new(rect);
            for slope in 0..rect.slopes() {
                for offset in (0..rect.bits()).step_by(7) {
                    prop_assert_eq!(
                        group_rom.group_of(offset, slope),
                        rect.group_of(offset, slope)
                    );
                }
                // Masks must partition the block.
                let mut union = BitBlock::zeros(rect.bits());
                for group in 0..rect.groups() {
                    union |= inv_rom.group_mask(slope, group);
                }
                prop_assert_eq!(union.count_ones(), rect.bits());
            }
            for o1 in (0..rect.bits()).step_by(5) {
                for o2 in (1..rect.bits()).step_by(11) {
                    if o1 != o2 {
                        prop_assert_eq!(
                            coll_rom.collision_slope(o1, o2),
                            rect.collision_slope(o1, o2)
                        );
                    }
                }
            }
            Ok(())
        });
}

/// Generator: a mixed fully/partially stuck population on a 512-bit block
/// plus a W/R split. The partially-stuck fraction is itself drawn at
/// random (0–100%) so the masking invariants are exercised across the
/// whole fig8 sweep range, not just the endpoints.
fn mixed_population(rng: &mut SmallRng) -> (Vec<Fault>, Vec<bool>) {
    let count = rng.random_range(0..=14usize);
    let partial_percent = rng.random_range(0..=100u32);
    let mut offsets: Vec<usize> = Vec::with_capacity(count);
    while offsets.len() < count {
        let offset = rng.random_range(0..512usize);
        if !offsets.contains(&offset) {
            offsets.push(offset);
        }
    }
    let faults = offsets
        .into_iter()
        .map(|offset| {
            let stuck = rng.random();
            if rng.random_range(0..100u32) < partial_percent {
                Fault::partial(offset, stuck, rng.random())
            } else {
                Fault::new(offset, stuck)
            }
        })
        .collect();
    let wrong = (0..count).map(|_| rng.random()).collect();
    (faults, wrong)
}

/// Generator: a mixed population plus a sampling seed for the tests that
/// replay `sample_split_for` under common random numbers.
fn mixed_population_and_seed(rng: &mut SmallRng) -> (Vec<Fault>, u64) {
    (mixed_population(rng).0, rng.random())
}

/// Masking-redundancy monotonicity: `Mask t ⊆ Mask t+1` on every fault
/// population and split — at any partially-stuck fraction — because the
/// t-row-block mask space is a subspace of the (t+1)-row one. The distance
/// guarantee (`u ≤ 2t` is always accepted) and the pointer extension
/// (`PLC t+e ⊇ Mask t`) are pinned on the same populations.
#[test]
fn masking_redundancy_is_monotone_at_any_partially_stuck_fraction() {
    Runner::new("masking_redundancy_is_monotone_at_any_partially_stuck_fraction")
        .cases(128)
        .run(mixed_population, shrink::none, |(faults, wrong)| {
            let mut previous = false;
            for t in 1..=6usize {
                let now = MaskingPolicy::new(t, 512).recoverable(faults, wrong);
                prop_assert!(
                    !previous || now,
                    "Mask{} accepted a split Mask{t} rejects",
                    t - 1
                );
                if faults.len() <= 2 * t {
                    prop_assert!(now, "distance bound violated at t={t}");
                }
                // A pointer budget only ever widens the accepted set.
                if now {
                    prop_assert!(
                        PlbcPolicy::new(t, 1, 512).recoverable(faults, wrong),
                        "PLC{t}+1 rejected a split Mask{t} accepts"
                    );
                }
                previous = now;
            }
            Ok(())
        });
}

/// The partially-stuck refinement is deterministic under a fixed seed:
/// strengthening the weak write (raising `weak_success_q8`) can only turn
/// W verdicts into R, never the reverse, and fully stuck verdicts are
/// untouched. This is the handle that makes fig8's lifetime ordering
/// monotone in the weak-write strength under common random numbers.
#[test]
fn partial_split_verdicts_are_monotone_in_weak_write_strength() {
    Runner::new("partial_split_verdicts_are_monotone_in_weak_write_strength")
        .cases(128)
        .run(mixed_population_and_seed, shrink::none, |(faults, seed)| {
            let mut deltas = SmallRng::seed_from_u64(seed ^ 0x00D3_17A5);
            let raised: Vec<Fault> = faults
                .iter()
                .map(|f| match f.kind {
                    Stuckness::Full => *f,
                    Stuckness::Partial { weak_success_q8 } => Fault::partial(
                        f.offset,
                        f.stuck,
                        weak_success_q8.saturating_add(deltas.random::<u8>()),
                    ),
                })
                .collect();
            let before = sample_split_for(&mut SmallRng::seed_from_u64(*seed), faults);
            let after = sample_split_for(&mut SmallRng::seed_from_u64(*seed), &raised);
            for (i, (b, a)) in before.iter().zip(&after).enumerate() {
                prop_assert!(*b || !*a, "raising q8 flipped fault {i} from R to W");
                if !faults[i].is_partial() {
                    prop_assert_eq!(*a, *b, "fully stuck verdict {i} drifted");
                }
            }
            Ok(())
        });
}

#[test]
fn primes_infrastructure_is_sound() {
    assert!(is_prime(2));
    assert!(!is_prime(49));
    for n in 0..200 {
        let p = next_prime_at_least(n);
        assert!(p >= n && is_prime(p));
    }
}
