//! Steady-state allocation gate (PR 9): once a worker's arenas are warm,
//! evaluating further pages must not touch the allocator at all — every
//! per-block temporary lives in [`PolicyScratch`] / [`BatchScratch`] and
//! is reused block after block.
//!
//! The test wraps the global allocator in a counting shim, replays the
//! *same* pages once to warm every arena (first-touch growth is expected
//! and amortized), then replays them again and asserts the allocation
//! count did not move — for every policy family the Monte Carlo engine
//! ships, on both the sequential and the batched evaluation paths.
//!
//! The file holds exactly one `#[test]` so no concurrent test can bleed
//! allocations into the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use aegis_experiments::schemes;
use aegis_pcm::pcm::montecarlo::{
    evaluate_page_batched_with_scratch, evaluate_page_with_scratch, BatchScratch, FailureCriterion,
};
use aegis_pcm::pcm::policy::PolicyScratch;
use aegis_pcm::pcm::timeline::{PageTimeline, TimelineSampler};
use sim_rng::{SeedableRng, SmallRng};

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter is the only addition.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn sample_pages(block_bits: usize, partial: bool) -> Vec<PageTimeline> {
    let mut sampler = TimelineSampler::paper_default(block_bits);
    if partial {
        sampler = sampler.with_partial_mix(0.25, 128);
    }
    (0..8u64)
        .map(|seed| {
            let mut rng = SmallRng::seed_from_u64(seed * 131 + 7);
            sampler.sample_page(&mut rng, 8)
        })
        .collect()
}

#[test]
fn steady_state_evaluation_is_allocation_free() {
    const BITS: usize = 128;
    let families: Vec<(schemes::Policy, &str)> = vec![
        (schemes::aegis(4, 37, BITS), "aegis"),
        (schemes::aegis_rw(4, 37, BITS), "aegis-rw"),
        (schemes::aegis_rw_p(4, 37, BITS, 2), "aegis-rw-p"),
        (schemes::ecp(4, BITS), "ecp"),
        (schemes::safer(5, BITS, false), "safer"),
        (schemes::rdis3(BITS), "rdis"),
    ];
    let criteria = [
        FailureCriterion::PerEventSplit { samples: 1 },
        FailureCriterion::GuaranteedAllData,
    ];
    for partial in [false, true] {
        let pages = sample_pages(BITS, partial);
        for (policy, name) in &families {
            for criterion in criteria {
                // Sequential path.
                let mut scratch = PolicyScratch::new();
                for page in &pages {
                    evaluate_page_with_scratch(
                        policy.as_ref(),
                        page,
                        criterion,
                        None,
                        &mut scratch,
                    );
                }
                let warm = ALLOCATIONS.load(Ordering::Relaxed);
                for page in &pages {
                    evaluate_page_with_scratch(
                        policy.as_ref(),
                        page,
                        criterion,
                        None,
                        &mut scratch,
                    );
                }
                let after = ALLOCATIONS.load(Ordering::Relaxed);
                assert_eq!(
                    after - warm,
                    0,
                    "{name} (partial={partial}, {criterion:?}): sequential steady state \
                     allocated {} times",
                    after - warm
                );

                // Batched path, at a lane width that forces partial
                // batches and mid-batch compaction.
                let mut batch = BatchScratch::new(5);
                for page in &pages {
                    evaluate_page_batched_with_scratch(
                        policy.as_ref(),
                        page,
                        criterion,
                        None,
                        &mut batch,
                    );
                }
                let warm = ALLOCATIONS.load(Ordering::Relaxed);
                for page in &pages {
                    evaluate_page_batched_with_scratch(
                        policy.as_ref(),
                        page,
                        criterion,
                        None,
                        &mut batch,
                    );
                }
                let after = ALLOCATIONS.load(Ordering::Relaxed);
                assert_eq!(
                    after - warm,
                    0,
                    "{name} (partial={partial}, {criterion:?}): batched steady state \
                     allocated {} times",
                    after - warm
                );
            }
        }
    }
}
