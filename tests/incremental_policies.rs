//! Differential property suite for the PR 4 incremental predicates: for
//! every policy family (Aegis, Aegis-rw, Aegis-rw-p, SAFER in both search
//! and cache modes, RDIS, ECP), a warm [`PolicyScratch`] fed one fault at a
//! time through `observe_fault` must produce `recoverable_with` verdicts
//! identical to a cold-scratch recompute and to the stateless
//! `recoverable` reference — across random fault arrival orders, random
//! W/R splits, and deliberate cache abuse (skipped observations, stale
//! scratch reuse across policies).
//!
//! Failures shrink toward fewer faults and fewer splits via the in-tree
//! `sim_rng::prop` harness; CI runs the suite with `SIM_PROP_CASES=10000`
//! per property (see `scripts/verify.sh`).

use aegis_pcm::aegis::{AegisPolicy, AegisRwPPolicy, AegisRwPolicy, Rectangle};
use aegis_pcm::baselines::{
    EcpPolicy, MaskingPolicy, PartitionSearch, PlbcPolicy, RdisPolicy, SaferPolicy,
};
use aegis_pcm::pcm::policy::{PolicyScratch, RecoveryPolicy};
use aegis_pcm::pcm::Fault;
use sim_rng::prop::{shrink, Runner};
use sim_rng::{prop_assert_eq, Rng, SeedableRng, SmallRng};

/// `(label, block_bits)` of every policy configuration the generator draws
/// from; `build_policy` constructs the matching predicate.
const CONFIGS: &[(&str, usize)] = &[
    ("aegis-9x61", 512),
    ("aegis-rw-9x61", 512),
    ("aegis-rw-p-9x61", 512),
    ("aegis-5x7-ragged", 32),
    ("safer32-ideal", 512),
    ("safer32-cache-ideal", 512),
    ("safer32", 512),
    ("safer32-cache", 512),
    ("safer8-cache-ideal", 64),
    ("rdis3-512", 512),
    ("rdis3-64", 64),
    ("ecp6", 512),
    ("mask2-512", 512),
    ("mask2-scalar-512", 512),
    ("mask1-64", 64),
    ("plbc2+2-512", 512),
    ("plbc2+2-scalar-512", 512),
    ("plbc1+1-64", 64),
];

fn build_policy(config: usize, pointers: usize) -> Box<dyn RecoveryPolicy> {
    let r512 = || Rectangle::new(9, 61, 512).expect("valid formation");
    match config {
        0 => Box::new(AegisPolicy::new(r512())),
        1 => Box::new(AegisRwPolicy::new(r512())),
        2 => Box::new(AegisRwPPolicy::new(r512(), pointers)),
        3 => Box::new(AegisPolicy::new(
            Rectangle::new(5, 7, 32).expect("valid formation"),
        )),
        4 => Box::new(SaferPolicy::with_search(
            5,
            512,
            false,
            PartitionSearch::Exhaustive,
        )),
        5 => Box::new(SaferPolicy::with_search(
            5,
            512,
            true,
            PartitionSearch::Exhaustive,
        )),
        6 => Box::new(SaferPolicy::with_search(
            5,
            512,
            false,
            PartitionSearch::Incremental,
        )),
        7 => Box::new(SaferPolicy::with_search(
            5,
            512,
            true,
            PartitionSearch::Incremental,
        )),
        8 => Box::new(SaferPolicy::with_search(
            3,
            64,
            true,
            PartitionSearch::Exhaustive,
        )),
        9 => Box::new(RdisPolicy::rdis3(512)),
        10 => Box::new(RdisPolicy::rdis3(64)),
        11 => Box::new(EcpPolicy::new(6, 512)),
        12 => Box::new(MaskingPolicy::new(2, 512)),
        13 => Box::new(MaskingPolicy::scalar(2, 512)),
        14 => Box::new(MaskingPolicy::new(1, 64)),
        15 => Box::new(PlbcPolicy::new(2, 2, 512)),
        16 => Box::new(PlbcPolicy::scalar(2, 2, 512)),
        17 => Box::new(PlbcPolicy::new(1, 1, 64)),
        _ => unreachable!("generator stays within CONFIGS"),
    }
}

/// One differential trial: a policy configuration, a fault arrival order,
/// split seeds (one W/R split per seed per prefix), and a pointer budget
/// for the rw-p configuration.
#[derive(Debug, Clone)]
struct Case {
    config: usize,
    faults: Vec<Fault>,
    splits: Vec<u64>,
    pointers: usize,
}

fn gen_case(rng: &mut SmallRng) -> Case {
    let config = rng.random_range(0..CONFIGS.len());
    let bits = CONFIGS[config].1;
    let n = rng.random_range(0..=8usize.min(bits));
    let mut offsets: Vec<usize> = Vec::with_capacity(n);
    while offsets.len() < n {
        let offset = rng.random_range(0..bits);
        if !offsets.contains(&offset) {
            offsets.push(offset);
        }
    }
    let faults = offsets
        .into_iter()
        .map(|offset| {
            let stuck = rng.random_bool(0.5);
            // A quarter of arrivals are partially stuck: the differential
            // contract must hold for both Stuckness kinds (predicates may
            // only read the kind through the guarantee seeding).
            if rng.random_bool(0.25) {
                Fault::partial(offset, stuck, rng.random::<u8>())
            } else {
                Fault::new(offset, stuck)
            }
        })
        .collect();
    let splits = (0..rng.random_range(1..=3usize))
        .map(|_| rng.random::<u64>())
        .collect();
    let pointers = rng.random_range(1..=4usize);
    Case {
        config,
        faults,
        splits,
        pointers,
    }
}

/// Shrinker: drop faults (preserving arrival order), then drop/simplify
/// split seeds (keeping at least one), then pull the pointer budget down.
/// The configuration is pinned: changing it would invalidate the offsets.
fn shrink_case(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    for faults in shrink::vec(&case.faults, shrink::none) {
        out.push(Case {
            faults,
            ..case.clone()
        });
    }
    for splits in shrink::vec(&case.splits, |&s| shrink::u64_down(s)) {
        if !splits.is_empty() {
            out.push(Case {
                splits,
                ..case.clone()
            });
        }
    }
    for pointers in shrink::usize_toward(case.pointers, 1) {
        out.push(Case {
            pointers,
            ..case.clone()
        });
    }
    out
}

fn split_for(seed: u64, len: usize) -> Vec<bool> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_bool(0.5)).collect()
}

/// The tentpole contract: warm incremental scratch ≡ cold recompute ≡
/// stateless reference, at every prefix of the arrival order.
#[test]
fn incremental_verdicts_match_recompute_at_every_prefix() {
    Runner::new("incremental_verdicts_match_recompute_at_every_prefix")
        .cases(2_000)
        .run(gen_case, shrink_case, |case| {
            let policy = build_policy(case.config, case.pointers);
            let mut warm = PolicyScratch::new();
            policy.forget_block(&mut warm);
            let mut seen: Vec<Fault> = Vec::new();
            for &fault in &case.faults {
                seen.push(fault);
                policy.observe_fault(&seen, &mut warm);
                for &seed in &case.splits {
                    let wrong = split_for(seed, seen.len());
                    let want = policy.recoverable(&seen, &wrong);
                    prop_assert_eq!(
                        policy.recoverable_with(&seen, &wrong, &mut warm),
                        want,
                        "warm {} faults={:?} wrong={:?}",
                        CONFIGS[case.config].0,
                        &seen,
                        &wrong
                    );
                    prop_assert_eq!(
                        policy.recoverable_with(&seen, &wrong, &mut PolicyScratch::new()),
                        want,
                        "cold {} faults={:?} wrong={:?}",
                        CONFIGS[case.config].0,
                        &seen,
                        &wrong
                    );
                }
            }
            Ok(())
        });
}

/// Arrival-order robustness: feeding the same fault set in a different
/// order (observing each prefix) still matches the stateless reference on
/// the reordered slice — the cache is keyed by the exact arrival history,
/// never by assumptions about it.
#[test]
fn shuffled_arrival_orders_still_match_the_reference() {
    Runner::new("shuffled_arrival_orders_still_match_the_reference")
        .cases(1_000)
        .run(gen_case, shrink_case, |case| {
            let policy = build_policy(case.config, case.pointers);
            // Deterministic reorder driven by the first split seed.
            let mut order: Vec<Fault> = case.faults.clone();
            let mut rng = SmallRng::seed_from_u64(case.splits[0] ^ 0x5EED);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.random_range(0..=i));
            }
            let mut warm = PolicyScratch::new();
            policy.forget_block(&mut warm);
            let mut seen: Vec<Fault> = Vec::new();
            for &fault in &order {
                seen.push(fault);
                policy.observe_fault(&seen, &mut warm);
                let wrong = split_for(case.splits[0], seen.len());
                let want = policy.recoverable(&seen, &wrong);
                prop_assert_eq!(
                    policy.recoverable_with(&seen, &wrong, &mut warm),
                    want,
                    "{} order={:?} wrong={:?}",
                    CONFIGS[case.config].0,
                    &seen,
                    &wrong
                );
            }
            Ok(())
        });
}

/// Cache abuse: observations may be skipped entirely (a fault arrives that
/// the scratch never saw) or the scratch may be left warm from a different
/// policy. Both must self-heal — via the owner/prefix check — to the
/// reference verdict, never to a stale one.
#[test]
fn skipped_observations_and_foreign_scratch_self_heal() {
    Runner::new("skipped_observations_and_foreign_scratch_self_heal")
        .cases(1_000)
        .run(gen_case, shrink_case, |case| {
            let policy = build_policy(case.config, case.pointers);
            let foreign = build_policy((case.config + 1) % CONFIGS.len(), case.pointers);
            let mut warm = PolicyScratch::new();
            policy.forget_block(&mut warm);
            let mut seen: Vec<Fault> = Vec::new();
            for (i, &fault) in case.faults.iter().enumerate() {
                seen.push(fault);
                // Observe only every other arrival; in between, let the
                // *other* policy stomp the scratch with its own content
                // (bounded by its block width so offsets stay in range).
                if i % 2 == 0 {
                    policy.observe_fault(&seen, &mut warm);
                } else {
                    let bits = CONFIGS[(case.config + 1) % CONFIGS.len()].1;
                    let mut decoy: Vec<Fault> = Vec::new();
                    for f in &seen {
                        let offset = f.offset % bits;
                        if !decoy.iter().any(|d: &Fault| d.offset == offset) {
                            decoy.push(Fault::new(offset, f.stuck));
                        }
                    }
                    foreign.observe_fault(&decoy, &mut warm);
                }
                for &seed in &case.splits {
                    let wrong = split_for(seed, seen.len());
                    prop_assert_eq!(
                        policy.recoverable_with(&seen, &wrong, &mut warm),
                        policy.recoverable(&seen, &wrong),
                        "{} i={} faults={:?} wrong={:?}",
                        CONFIGS[case.config].0,
                        i,
                        &seen,
                        &wrong
                    );
                }
            }
            Ok(())
        });
}
