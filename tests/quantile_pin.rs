//! Pins [`HistogramSnapshot::quantile`] against the repo's reference
//! nearest-rank implementation, `pcm_sim::stats::percentile`.
//!
//! The telemetry histograms are log₂-bucketed, so a quantile read off the
//! buckets can only report bucket *lower bounds*. For sample sets whose
//! values are exactly those lower bounds (0, 1, 2, 4, 8, …) no precision
//! is lost, and the two implementations must agree exactly — for every
//! multiset and every quantile. This is what lets `telemetry-report`
//! print p50/p99 rows that mean the same thing as the figure modules'
//! percentile columns.

use aegis_pcm::pcm::stats::percentile;
use aegis_pcm::telemetry::{HistogramSnapshot, Registry};

/// Bucket lower bounds used as sample values: bucket 0 holds {0}, bucket
/// `b > 0` starts at `2^(b-1)`.
const LOWER_BOUNDS: [u64; 6] = [0, 1, 2, 4, 8, 16];

const QUANTILES: [f64; 8] = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let registry = Registry::new();
    let histogram = registry.histogram("pin.test.samples");
    for &sample in samples {
        histogram.record(sample);
    }
    let (_, snapshot) = registry
        .histograms()
        .into_iter()
        .find(|(name, _)| name == "pin.test.samples")
        .expect("recorded histogram is in the registry");
    snapshot
}

/// Exhaustive agreement over every multiset of bucket lower bounds up to
/// size 4 (1296 ordered tuples; order cannot matter and duplicates are
/// cheap), at every quantile.
#[test]
fn quantile_matches_reference_percentile_on_exhaustive_small_cases() {
    let mut checked = 0usize;
    for len in 1..=4usize {
        let mut indices = vec![0usize; len];
        loop {
            let samples: Vec<u64> = indices.iter().map(|&i| LOWER_BOUNDS[i]).collect();
            let snapshot = snapshot_of(&samples);
            #[allow(clippy::cast_precision_loss)]
            let values: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
            for q in QUANTILES {
                let from_buckets = snapshot.quantile(q);
                let reference = percentile(&values, q);
                assert_eq!(
                    from_buckets.to_bits(),
                    reference.to_bits(),
                    "samples {samples:?} at q={q}: buckets say {from_buckets}, \
                     reference says {reference}"
                );
            }
            checked += 1;
            // Odometer over LOWER_BOUNDS^len.
            let mut pos = 0;
            loop {
                indices[pos] += 1;
                if indices[pos] < LOWER_BOUNDS.len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
                if pos == len {
                    break;
                }
            }
            if pos == len {
                break;
            }
        }
    }
    assert_eq!(checked, 6 + 36 + 216 + 1296);
}

/// Both implementations agree that an empty sample set has no quantiles.
#[test]
fn empty_histograms_report_nan_like_the_reference() {
    let snapshot = snapshot_of(&[]);
    assert!(snapshot.quantile(0.5).is_nan());
    assert!(percentile(&[], 0.5).is_nan());
}

/// Values *between* lower bounds round down to their bucket's lower
/// bound — the documented precision loss of the log₂ encoding.
#[test]
fn interior_values_round_down_to_bucket_lower_bounds() {
    let snapshot = snapshot_of(&[5, 6, 7]);
    assert_eq!(snapshot.quantile(0.5), 4.0);
    assert_eq!(percentile(&[5.0, 6.0, 7.0], 0.5), 6.0);
}
