//! Smoke tests of the experiment harness at miniature scale: determinism,
//! CSV emission, and the paper's headline orderings.

use aegis_experiments::runner::RunOptions;
use aegis_experiments::{failcdf, fig10, fig567, fig8, fig9, table1, variants};
use pcm_sim::montecarlo::FailureCriterion;

fn tiny() -> RunOptions {
    RunOptions {
        pages: 6,
        trials: 150,
        seed: 2013,
        criterion: FailureCriterion::default(),
        page_bytes: 4096,
        threads: None,
    }
}

#[test]
fn table1_reproduces_all_printed_values_except_documented_rw_cells() {
    let table = table1::run(512);
    let notes = table1::diff_against_paper(&table);
    assert_eq!(notes.len(), 2, "{notes:?}");
}

#[test]
fn fig5_headline_orderings_hold_even_at_tiny_scale() {
    let results = fig567::run(&tiny());
    let (_, summaries) = &results.by_block[1]; // 512-bit
    let get = |name: &str| {
        summaries
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    // The paper's central claim: Aegis 9x61 tolerates far more faults than
    // SAFER64 at well under half the overhead bits.
    let aegis = get("Aegis 9x61");
    let safer = get("SAFER64");
    assert!(aegis.mean_faults_recovered > 1.5 * safer.mean_faults_recovered);
    assert!(aegis.overhead_bits < safer.overhead_bits);
    // Every inversion-based scheme beats the pointer-based ECP on faults.
    let ecp = get("ECP6");
    for name in ["SAFER32", "SAFER64", "Aegis 23x23", "RDIS-3"] {
        assert!(
            get(name).mean_faults_recovered > ecp.mean_faults_recovered,
            "{name} should beat ECP6"
        );
    }
    // Within Aegis, more slopes means more tolerated faults.
    assert!(get("Aegis 9x61").mean_faults_recovered > get("Aegis 17x31").mean_faults_recovered);
    assert!(get("Aegis 17x31").mean_faults_recovered > get("Aegis 23x23").mean_faults_recovered);
}

#[test]
fn failcdf_hard_ftc_boundaries_are_exact() {
    let results = failcdf::run(&tiny());
    let get = |name: &str| results.iter().find(|s| s.name == name).unwrap();
    // ECP6: a step function at 6 faults.
    let ecp = get("ECP6").cdf.clone();
    assert_eq!(ecp[6], 0.0);
    assert_eq!(ecp[7], 1.0);
    // Aegis 9x61 guarantees 11 faults (C(11,2)+1 = 56 <= 61).
    let aegis = get("Aegis 9x61").cdf.clone();
    assert_eq!(aegis[11], 0.0, "hard FTC violated");
    assert!(
        aegis[40] > 0.9,
        "soft capability should be exhausted by 40 faults"
    );
    // The cache makes SAFER strictly better, pointwise.
    let plain = get("SAFER64").cdf.clone();
    let cached = get("SAFER64-cache").cdf.clone();
    for (f, (p, c)) in plain.iter().zip(&cached).enumerate() {
        assert!(c <= p, "cache hurt SAFER64 at {f} faults");
    }
}

#[test]
fn fig8_sweep_orders_masking_against_the_pointer_schemes() {
    let results = fig8::run(&tiny());
    let classic = &results.by_fraction[0];
    assert_eq!(classic.0, 0);
    let get = |name: &str| {
        classic
            .1
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    // Mask6 guarantees any 12 faults on 60 bits; ECP6 guarantees 6 on 61.
    assert!(get("Mask6").mean_faults_recovered > get("ECP6").mean_faults_recovered);
    assert!(get("Mask6").overhead_bits < get("ECP6").overhead_bits);
    // The pointer budget never hurts: PLC4+2 accepts a superset of Mask4.
    assert!(get("PLC4+2").mean_faults_recovered >= get("Mask4").mean_faults_recovered);
}

#[test]
fn fig9_half_lifetimes_follow_fault_tolerance() {
    let results = fig9::run(&tiny());
    let get = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .unwrap()
            .half_lifetime
    };
    assert!(get("Aegis 9x61") > get("ECP6"));
    assert!(get("ECP6") > get("unprotected"));
}

#[test]
fn fig10_pointer_sweep_shapes() {
    let results = fig10::run(&tiny());
    for sweep in &results {
        // Monotone non-decreasing within noise: compare first and last.
        let first = sweep.series.first().unwrap().1;
        let last = sweep.series.last().unwrap().1;
        assert!(last >= first, "{}", sweep.formation);
        // The plateau equals the Aegis-rw capability: the final two points
        // should be close (within 5%).
        let prev = sweep.series[sweep.series.len() - 2].1;
        assert!(
            (last - prev).abs() / last < 0.05,
            "{} has no plateau",
            sweep.formation
        );
    }
}

#[test]
fn variants_report_paper_section_3_3_effects() {
    let results = variants::run(&tiny());
    let get = |name: &str| {
        results
            .summaries
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    // Aegis-rw boosts recoverable faults on every formation (§3.3 quotes
    // +52%/41%/33%/28%); allow wide slack at tiny scale.
    for (a, b) in aegis_experiments::schemes::variant_formations() {
        let plain = get(&format!("Aegis {a}x{b}")).mean_faults_recovered;
        let rw = get(&format!("Aegis-rw {a}x{b}")).mean_faults_recovered;
        assert!(rw > 1.1 * plain, "{a}x{b}: rw {rw} vs plain {plain}");
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let a = fig567::run(&tiny());
    let b = fig567::run(&tiny());
    for ((bits_a, sa), (bits_b, sb)) in a.by_block.iter().zip(&b.by_block) {
        assert_eq!(bits_a, bits_b);
        for (x, y) in sa.iter().zip(sb) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.mean_faults_recovered, y.mean_faults_recovered);
            assert_eq!(x.half_lifetime, y.half_lifetime);
        }
    }
}

#[test]
fn csv_files_are_written() {
    let dir = std::env::temp_dir().join("aegis-harness-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let opts = tiny();
    let t = table1::run(512);
    table1::write_csv(&t, &dir).unwrap();
    let f = fig567::run(&opts);
    fig567::write_csvs(&f, &dir).unwrap();
    let v = variants::run(&opts);
    variants::write_csvs(&v, &dir).unwrap();
    for file in [
        "table1.csv",
        "fig5.csv",
        "fig6.csv",
        "fig7.csv",
        "fig11.csv",
        "fig13.csv",
    ] {
        let path = dir.join(file);
        let content =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file} missing: {e}"));
        assert!(content.lines().count() > 1, "{file} has no data rows");
    }
    let _ = std::fs::remove_dir_all(dir);
}
