//! Property tests for the PR 10 estimate layer (`sim_telemetry::estimate`).
//!
//! Two families, both driven by the workspace property harness
//! (`sim_rng::prop`, shrinking, `SIM_PROP_CASES` scaling — CI runs 10⁴
//! cases):
//!
//! 1. **Merge exactness.** [`Moments`] carries exact integer power sums,
//!    so pooling shards must be *bitwise* order-independent: for every
//!    sample vector and every split point, `merge(a, b)`, `merge(b, a)`
//!    and the single-pass accumulator agree to the last ulp on every
//!    derived statistic. This is the property the shard/merge and
//!    `--resume` determinism contracts rest on.
//!
//! 2. **Wilson coverage.** The [`wilson_interval`] used for proportion
//!    CIs must keep near-nominal coverage on Bernoulli streams drawn
//!    from the workspace RNG, including the small-p regime fault-rate
//!    proportions live in: empirical 95% coverage stays at or above
//!    `0.95 − 0.02` for p ∈ {0.01, 0.1, 0.5}.

use sim_rng::prop::{shrink, Runner};
use sim_rng::{prop_assert, prop_assert_eq, substream_seed, Rng, SeedableRng, SmallRng};
use sim_telemetry::{wilson_interval, Moments, Z95};

/// Page lifetimes fit comfortably below 2⁶⁰; bounding the generated
/// samples keeps `n·Σx²` inside exact u128 arithmetic for every vector
/// the generator can produce, so the property exercises the exact path
/// (the f64 fallback is pinned separately in the unit tests).
const MAX_SAMPLE: u64 = 1 << 60;

fn moments_of(samples: &[u64]) -> Moments {
    Moments::from_samples(samples)
}

/// Every derived statistic, as raw bits, so "equal" means last-ulp equal.
fn stat_bits(m: &Moments) -> [u64; 5] {
    [
        m.mean().to_bits(),
        m.variance().to_bits(),
        m.stderr().to_bits(),
        m.ci95_half_width().to_bits(),
        m.rse().to_bits(),
    ]
}

#[test]
fn moments_merge_is_exactly_order_independent() {
    Runner::new("moments_merge_is_exactly_order_independent").run(
        |rng| {
            let len = rng.gen_range(0..=48usize);
            (0..len)
                .map(|_| rng.gen_range(0..=MAX_SAMPLE))
                .collect::<Vec<u64>>()
        },
        |samples| shrink::vec(samples, |&x| shrink::u64_down(x)),
        |samples| {
            let single = moments_of(samples);
            // Every two-way split: merge(a, b) == merge(b, a) == single-pass.
            for k in 0..=samples.len() {
                let a = moments_of(&samples[..k]);
                let b = moments_of(&samples[k..]);
                let mut ab = a;
                ab.merge(&b);
                let mut ba = b;
                ba.merge(&a);
                prop_assert_eq!(ab, single, "merge(a,b) != single-pass at split {}", k);
                prop_assert_eq!(ba, single, "merge(b,a) != single-pass at split {}", k);
                prop_assert_eq!(stat_bits(&ab), stat_bits(&single), "stats differ at {}", k);
                prop_assert_eq!(stat_bits(&ba), stat_bits(&single), "stats differ at {}", k);
            }
            // Three-way associativity: ((a·b)·c) == (a·(b·c)).
            let third = samples.len() / 3;
            let (a, b, c) = (
                moments_of(&samples[..third]),
                moments_of(&samples[third..2 * third]),
                moments_of(&samples[2 * third..]),
            );
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            prop_assert_eq!(left, right, "merge is not associative");
            prop_assert_eq!(left, single, "three-way merge != single-pass");
            prop_assert!(
                left.count() == samples.len() as u64,
                "merged count {} != {}",
                left.count(),
                samples.len()
            );
            Ok(())
        },
    );
}

/// Experiments per proportion for the coverage estimate. Scales with the
/// harness knob so CI (`SIM_PROP_CASES=10000`) measures coverage on 10⁴
/// independent streams per p, while local runs stay fast.
fn coverage_experiments() -> u64 {
    std::env::var("SIM_PROP_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(1000, |cases| cases.max(256))
}

#[test]
fn wilson_coverage_stays_near_nominal_on_bernoulli_streams() {
    // Draws per stream chosen so the expected success count stays ≥ 10
    // even at p = 0.01 — the regime where the Wald interval collapses
    // and Wilson is supposed to hold.
    for (p, draws) in [(0.01, 1000u64), (0.1, 200), (0.5, 100)] {
        let experiments = coverage_experiments();
        let mut covered = 0u64;
        for exp in 0..experiments {
            let mut rng =
                SmallRng::seed_from_u64(substream_seed(0xE571_0A7E_5EED_2010 ^ draws, exp));
            let successes = (0..draws).filter(|_| rng.gen_bool(p)).count() as u64;
            let (lo, hi) = wilson_interval(successes, draws, Z95);
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi);
            if (lo..=hi).contains(&p) {
                covered += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let coverage = covered as f64 / experiments as f64;
        assert!(
            coverage >= 0.95 - 0.02,
            "Wilson coverage {coverage:.4} below nominal-2% at p={p} \
             ({covered}/{experiments} intervals contained p)"
        );
    }
}

#[test]
fn wilson_degenerate_inputs_stay_bounded() {
    assert_eq!(wilson_interval(0, 0, Z95), (0.0, 1.0));
    let (lo, hi) = wilson_interval(0, 50, Z95);
    assert_eq!(lo, 0.0);
    assert!(
        hi > 0.0 && hi < 1.0,
        "all-failures upper bound must be open"
    );
    let (lo, hi) = wilson_interval(50, 50, Z95);
    assert!(
        lo > 0.0 && lo < 1.0,
        "all-successes lower bound must be open"
    );
    assert_eq!(hi, 1.0);
}
