//! Hermetic-build determinism guarantees: every simulation result is a
//! pure function of its seed. Two runs with the same seed must be
//! *bit-identical* — across processes, thread counts, and machines — and
//! different seeds must actually produce different randomness.
//!
//! These properties are what make the paper's figures reproducible from
//! the seeds recorded in `results/`, and they are exactly what the
//! in-tree `sim-rng` substrate was built to pin down (no platform RNG, no
//! external crate whose algorithm may change under us).

use aegis_experiments::runner::{summarize_schemes_with, RunObserver, RunOptions};
use aegis_experiments::schemes;
use aegis_pcm::aegis::{AegisPolicy, Rectangle};
use aegis_pcm::pcm::forensics::{derive_block_timeline, trace_block, BlockTraceConfig};
use aegis_pcm::pcm::montecarlo::{evaluate_block, run_memory, FailureCriterion, SimConfig};
use aegis_pcm::pcm::timeline::TimelineSampler;
use aegis_pcm::telemetry::{
    strip_volatile, Event, RunTelemetry, SeriesWriter, SharedBuf, StatusWriter, Tracer,
};
use sim_rng::{Rng, RngCore, SeedableRng, SmallRng};

/// The raw generator is reproducible from a seed and sensitive to it.
#[test]
fn small_rng_streams_are_seed_determined() {
    let a: Vec<u64> = SmallRng::seed_from_u64(0xA5A5).sample_iter();
    let b: Vec<u64> = SmallRng::seed_from_u64(0xA5A5).sample_iter();
    let c: Vec<u64> = SmallRng::seed_from_u64(0xA5A6).sample_iter();
    assert_eq!(a, b, "same seed must replay the identical stream");
    assert_ne!(a, c, "adjacent seeds must decorrelate");
}

trait SampleIter {
    fn sample_iter(self) -> Vec<u64>;
}

impl SampleIter for SmallRng {
    fn sample_iter(mut self) -> Vec<u64> {
        (0..64).map(|_| self.next_u64()).collect()
    }
}

/// Fault timelines (the simulator's "fault map": which cell dies when,
/// stuck at what) are bit-identical under a repeated seed.
#[test]
fn fault_timelines_replay_bit_identically() {
    let sampler = TimelineSampler::paper_default(512);
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        sampler.sample_page(&mut rng, 8)
    };
    let first = run(7);
    let second = run(7);
    let other = run(8);

    let flatten = |page: &aegis_pcm::pcm::timeline::PageTimeline| -> Vec<(u64, usize, bool, u64)> {
        page.blocks
            .iter()
            .flat_map(|b| &b.events)
            .map(|e| {
                (
                    e.time.to_bits(),
                    e.fault.offset,
                    e.fault.stuck,
                    e.split_seed,
                )
            })
            .collect()
    };
    assert_eq!(
        flatten(&first),
        flatten(&second),
        "same seed must reproduce every event time to the bit"
    );
    assert_ne!(flatten(&first), flatten(&other));
}

/// The per-page RNG derivation decorrelates pages and is itself
/// deterministic, so parallel page evaluation cannot perturb results.
#[test]
fn page_rng_derivation_is_stable_and_decorrelated() {
    let mut streams = Vec::new();
    for index in 0..16u64 {
        assert_eq!(
            TimelineSampler::page_rng(99, index).sample_iter(),
            TimelineSampler::page_rng(99, index).sample_iter()
        );
        streams.push(TimelineSampler::page_rng(99, index).sample_iter());
    }
    for i in 0..streams.len() {
        for j in (i + 1)..streams.len() {
            assert_ne!(streams[i], streams[j], "pages {i} and {j} share a stream");
        }
    }
}

/// A full Monte Carlo chip run — the top of the stack, including the
/// parallel page loop — is byte-identical under a repeated seed.
#[test]
fn monte_carlo_runs_replay_byte_identically() {
    let rect = Rectangle::new(17, 31, 512).unwrap();
    let policy = AegisPolicy::new(rect);
    let cfg = SimConfig::scaled(12, 512, 0xD06F00D);

    let first = run_memory(&policy, &cfg);
    let second = run_memory(&policy, &cfg);

    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&first.page_lifetimes), bits(&second.page_lifetimes));
    assert_eq!(
        bits(&first.unprotected_lifetimes),
        bits(&second.unprotected_lifetimes)
    );
    assert_eq!(first.faults_recovered, second.faults_recovered);
    assert_eq!(first.capped_pages, second.capped_pages);

    let reseeded = run_memory(&policy, &SimConfig::scaled(12, 512, 0xD06F00E));
    assert_ne!(
        bits(&first.page_lifetimes),
        bits(&reseeded.page_lifetimes),
        "a different master seed must produce different lifetimes"
    );
}

/// Runs fig5's 512-bit scheme sweep with telemetry attached and returns
/// the raw JSONL event stream.
fn telemetry_stream(seed: u64) -> String {
    telemetry_stream_mode(seed, false)
}

/// [`telemetry_stream`] selecting the kernel (default) or scalar scheme
/// set.
fn telemetry_stream_mode(seed: u64, scalar: bool) -> String {
    telemetry_stream_with(seed, scalar, None)
}

/// [`telemetry_stream_mode`] with an explicit worker-thread count.
fn telemetry_stream_with(seed: u64, scalar: bool, threads: Option<usize>) -> String {
    let buf = SharedBuf::new();
    let run = RunTelemetry::with_buffer("det-check", buf.clone()).expect("buffer sink");
    let opts = RunOptions {
        pages: 3,
        seed,
        threads,
        ..RunOptions::default()
    };
    let observer = RunObserver::with_registry(run.registry());
    let set = if scalar {
        schemes::fig5_schemes_scalar(512)
    } else {
        schemes::fig5_schemes(512)
    };
    let _ = summarize_schemes_with(&set, 512, &opts, &observer);
    run.finish().expect("finish");
    buf.text()
}

/// The ROM-kernel predicates and their scalar references are one
/// implementation as far as the determinism contract is concerned: the
/// whole fig5 sweep run through both must serialize byte-identical
/// telemetry (the cross-process twin of this check lives in the
/// experiments crate's CLI tests, driven by `--scalar`).
#[test]
fn kernel_and_scalar_paths_serialize_identical_telemetry() {
    let kernel = telemetry_stream_mode(11, false);
    let scalar = telemetry_stream_mode(11, true);
    assert_eq!(
        strip_volatile(&kernel),
        strip_volatile(&scalar),
        "scalar reference must replay the kernel path's stream byte for byte"
    );
}

/// The telemetry event stream is part of the determinism contract: it
/// carries no wall-clock data, so two same-seed runs — including the
/// parallel Monte Carlo page loop feeding counters from worker threads —
/// must serialize byte-identical JSONL. Different seeds must not.
#[test]
fn telemetry_event_streams_are_byte_identical_under_a_repeated_seed() {
    let first = telemetry_stream(11);
    let second = telemetry_stream(11);
    let other = telemetry_stream(12);
    // Pool scheduling counters are declared volatile; everything else in
    // the stream is covered by the byte-identity contract.
    assert_eq!(
        strip_volatile(&first),
        strip_volatile(&second),
        "same seed must replay the identical stream"
    );
    assert_ne!(
        strip_volatile(&first),
        strip_volatile(&other),
        "different seeds must change observed metrics"
    );
}

/// The stream round-trips through the parser that `telemetry-report`
/// uses, and the final snapshot reflects what the run actually did.
#[test]
fn telemetry_streams_round_trip_through_the_report_parser() {
    let stream = telemetry_stream(11);
    let events = Event::parse_stream(&stream).expect("stream parses with contiguous seq");
    assert!(matches!(&events[0], Event::RunStart { run_id } if run_id == "det-check"));
    assert!(matches!(events.last(), Some(Event::RunEnd { .. })));
    let pages = events
        .iter()
        .find_map(|e| match e {
            Event::Counter { name, value } if name == "mc.Aegis 9x61.pages" => Some(*value),
            _ => None,
        })
        .expect("per-scheme page counter present");
    assert_eq!(pages, 3, "counter snapshot must equal the simulated pages");
    assert!(
        events.iter().any(
            |e| matches!(e, Event::Histogram { name, .. } if name.ends_with(".page_fault_arrivals"))
        ),
        "fault-arrival histograms must be in the stream"
    );
}

/// The worker-thread count is a pure throughput knob: page RNGs derive
/// from `(seed, page_idx)` and outputs are keyed by index, so running the
/// pool with 1, 2, or 8 workers must produce identical results and (after
/// dropping the declared-volatile pool counters) identical telemetry.
#[test]
fn thread_count_does_not_perturb_results_or_telemetry() {
    let single = telemetry_stream_with(11, false, Some(1));
    for threads in [2usize, 8] {
        let pooled = telemetry_stream_with(11, false, Some(threads));
        assert_eq!(
            strip_volatile(&single),
            strip_volatile(&pooled),
            "threads={threads} must replay the single-thread stream"
        );
    }
    // The scheduling counters themselves are still observable in the raw
    // stream (as `volatile` events), just excluded from the contract.
    assert!(
        single.contains("\"event\": \"volatile\""),
        "pool counters must be present as volatile events"
    );

    let summaries = |threads: Option<usize>| {
        let opts = RunOptions {
            pages: 5,
            seed: 23,
            threads,
            ..RunOptions::default()
        };
        summarize_schemes_with(
            &schemes::fig5_schemes(512),
            512,
            &opts,
            &RunObserver::default(),
        )
    };
    let one = summaries(Some(1));
    let four = summaries(Some(4));
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.mean_faults_recovered.to_bits(),
            b.mean_faults_recovered.to_bits()
        );
        assert_eq!(a.mean_lifetime.to_bits(), b.mean_lifetime.to_bits());
        assert_eq!(a.half_lifetime.to_bits(), b.half_lifetime.to_bits());
    }
}

/// [`telemetry_stream_with`] with a live span tracer attached to the
/// observer, so the engine records per-page wall-clock spans while it
/// feeds the deterministic stream.
fn telemetry_stream_traced(seed: u64, threads: Option<usize>) -> String {
    let buf = SharedBuf::new();
    let run = RunTelemetry::with_buffer("det-check", buf.clone()).expect("buffer sink");
    let opts = RunOptions {
        pages: 3,
        seed,
        threads,
        ..RunOptions::default()
    };
    let tracer = Tracer::new(1024);
    let observer = RunObserver {
        registry: Some(run.registry()),
        tracer: Some(&tracer),
        ..RunObserver::default()
    };
    let _ = summarize_schemes_with(&schemes::fig5_schemes(512), 512, &opts, &observer);
    let log = tracer
        .finish("det-check")
        .expect("an enabled tracer yields a log");
    assert!(
        log.spans.iter().any(|s| s.name == "page"),
        "tracing must actually record engine spans"
    );
    run.finish().expect("finish");
    buf.text()
}

/// Wall-clock tracing is a pure observer: the stripped telemetry stream
/// must be byte-identical with tracing on or off, and — with tracing on —
/// across any worker-thread count. Span records live only in the separate
/// trace sidecar, never in the stream.
#[test]
fn tracing_does_not_perturb_the_deterministic_stream() {
    let plain = telemetry_stream_with(11, false, Some(2));
    let traced = telemetry_stream_traced(11, Some(2));
    assert_eq!(
        strip_volatile(&plain),
        strip_volatile(&traced),
        "enabling tracing must not change a single stream byte"
    );
    let single = telemetry_stream_traced(11, Some(1));
    let pooled = telemetry_stream_traced(11, Some(4));
    assert_eq!(
        strip_volatile(&single),
        strip_volatile(&pooled),
        "traced runs must stay thread-count independent"
    );
}

/// Runs the fig5 512-bit sweep with a series sidecar attached and returns
/// `(deterministic stream, series sidecar)` text. Optionally attaches a
/// tracer and a live status heartbeat, which must both be pure observers.
fn series_stream_with(
    seed: u64,
    threads: Option<usize>,
    traced: bool,
    status: Option<&StatusWriter>,
) -> (String, String) {
    let buf = SharedBuf::new();
    let series_buf = SharedBuf::new();
    let run = RunTelemetry::with_buffer("series-det", buf.clone()).expect("buffer sink");
    let series = SeriesWriter::with_buffer("series-det", series_buf.clone(), 0).expect("series");
    let opts = RunOptions {
        pages: 3,
        seed,
        threads,
        ..RunOptions::default()
    };
    let tracer = if traced {
        Tracer::new(1024)
    } else {
        Tracer::disabled()
    };
    let observer = RunObserver {
        registry: Some(run.registry()),
        tracer: tracer.is_enabled().then_some(&tracer),
        series: Some(&series),
        status,
        ..RunObserver::default()
    };
    let _ = summarize_schemes_with(&schemes::fig5_schemes(512), 512, &opts, &observer);
    series.finish().expect("series finish");
    run.finish().expect("finish");
    (buf.text(), series_buf.text())
}

/// The series sidecar is part of the determinism contract: samples are
/// taken at unit barriers keyed by pages evaluated (never wall clock), so
/// after stripping the declared-volatile pool samples the sidecar must be
/// byte-identical across worker-thread counts, with tracing on or off,
/// and with live status monitoring on or off — and attaching the sidecar
/// must not change a byte of the deterministic stream itself.
#[test]
fn series_sidecar_is_byte_identical_across_threads_tracing_and_monitoring() {
    let (plain_stream, _) = {
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("series-det", buf.clone()).expect("buffer sink");
        let opts = RunOptions {
            pages: 3,
            seed: 11,
            threads: Some(2),
            ..RunOptions::default()
        };
        let observer = RunObserver::with_registry(run.registry());
        let _ = summarize_schemes_with(&schemes::fig5_schemes(512), 512, &opts, &observer);
        run.finish().expect("finish");
        (buf.text(), ())
    };

    let status_dir = std::env::temp_dir().join("aegis-det-series-status");
    let _ = std::fs::remove_dir_all(&status_dir);
    let status = StatusWriter::create("series-det", &status_dir).expect("status");
    let (stream_1, series_1) = series_stream_with(11, Some(1), false, None);
    let (stream_4, series_4) = series_stream_with(11, Some(4), true, Some(&status));
    let (_, series_8) = series_stream_with(11, Some(8), false, None);
    let (_, series_other) = series_stream_with(12, Some(1), false, None);
    let _ = std::fs::remove_dir_all(&status_dir);

    assert_eq!(
        strip_volatile(&plain_stream),
        strip_volatile(&stream_1),
        "attaching a series sidecar must not change the deterministic stream"
    );
    assert_eq!(
        strip_volatile(&stream_1),
        strip_volatile(&stream_4),
        "stream identity must hold with series + tracing + status attached"
    );
    assert_eq!(
        strip_volatile(&series_1),
        strip_volatile(&series_4),
        "series sidecars must be identical across threads/tracing/monitoring"
    );
    assert_eq!(strip_volatile(&series_1), strip_volatile(&series_8));
    assert_ne!(
        strip_volatile(&series_1),
        strip_volatile(&series_other),
        "different seeds must change the sampled series"
    );
    // The scheduling-dependent pool samples are present in the raw sidecar
    // as series_volatile events — observable, but outside the contract.
    assert!(
        series_4.contains("\"event\": \"series_volatile\""),
        "pool counters must be sampled as series_volatile events"
    );
    assert!(series_1.contains("\"event\": \"series\""));
    assert!(series_1.contains("\"event\": \"series_histogram\""));
}

/// An interrupted-then-resumed checkpointed run continues its series
/// sidecar from the snapshot's cursor: the finished file must be
/// byte-identical (after volatile stripping) to the sidecar of a run
/// that was never interrupted.
#[test]
fn checkpoint_resume_continues_the_series_sidecar() {
    use aegis_experiments::checkpoint::{
        run_fig567_checkpointed, Checkpoint, CheckpointCtl, CheckpointOutcome,
    };
    use std::sync::atomic::{AtomicBool, Ordering};

    let opts = RunOptions {
        pages: 4,
        seed: 13,
        ..RunOptions::default()
    };
    let dir = std::env::temp_dir().join("aegis-det-series-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let straight_dir = dir.join("straight");
    let resumed_dir = dir.join("resumed");
    let path = dir.join("sr.ckpt.json");

    // Straight reference leg.
    {
        let run = RunTelemetry::with_buffer("sr", SharedBuf::new()).expect("buffer sink");
        let series = SeriesWriter::create("sr", &straight_dir, 0).expect("series");
        let observer = RunObserver {
            registry: Some(run.registry()),
            series: Some(&series),
            ..RunObserver::default()
        };
        match run_fig567_checkpointed(
            &opts,
            &observer,
            false,
            &CheckpointCtl {
                path: dir.join("straight.ckpt.json"),
                every: 2,
                interrupted: &AtomicBool::new(false),
                resume: None,
                fingerprint: vec![("command".to_owned(), "fig5".to_owned())],
                target_rse: None,
            },
        )
        .expect("straight run")
        {
            CheckpointOutcome::Complete(_) => {}
            CheckpointOutcome::Interrupted => panic!("nothing interrupts the straight leg"),
        }
        series.finish().expect("series finish");
        run.finish().expect("finish");
    }

    // Interrupted leg: the progress hook pulls the plug mid-run, so the
    // snapshot lands at a chunk barrier with the sidecar mid-unit.
    {
        let interrupted = AtomicBool::new(false);
        let pull_plug = |_: &str, done: usize, _: usize| {
            if done >= 2 {
                interrupted.store(true, Ordering::SeqCst);
            }
        };
        let run = RunTelemetry::with_buffer("sr", SharedBuf::new()).expect("buffer sink");
        let series = SeriesWriter::create("sr", &resumed_dir, 0).expect("series");
        let observer = RunObserver {
            registry: Some(run.registry()),
            progress: Some(&pull_plug),
            series: Some(&series),
            ..RunObserver::default()
        };
        let ctl = CheckpointCtl {
            path: path.clone(),
            every: 2,
            interrupted: &interrupted,
            resume: None,
            fingerprint: vec![("command".to_owned(), "fig5".to_owned())],
            target_rse: None,
        };
        match run_fig567_checkpointed(&opts, &observer, false, &ctl).expect("interrupted run") {
            CheckpointOutcome::Interrupted => {}
            CheckpointOutcome::Complete(_) => panic!("the pulled plug must stop the run"),
        }
        assert!(path.exists(), "interruption must leave a snapshot");
        run.finish().expect("finish");
        // The writer is dropped without finish(): an interrupted sidecar
        // is open-ended, exactly like the CLI leaves it.
    }

    // Resumed leg: reopen the sidecar at the snapshot's cursor.
    {
        let resume = Checkpoint::load(&path).expect("snapshot loads");
        let run = RunTelemetry::with_buffer("sr", SharedBuf::new()).expect("buffer sink");
        let series =
            SeriesWriter::resume("sr", &resumed_dir, 0, resume.series).expect("series resume");
        let observer = RunObserver {
            registry: Some(run.registry()),
            series: Some(&series),
            ..RunObserver::default()
        };
        let ctl = CheckpointCtl {
            path: path.clone(),
            every: 2,
            interrupted: &AtomicBool::new(false),
            resume: Some(resume),
            fingerprint: vec![("command".to_owned(), "fig5".to_owned())],
            target_rse: None,
        };
        match run_fig567_checkpointed(&opts, &observer, false, &ctl).expect("resumed run") {
            CheckpointOutcome::Complete(_) => {}
            CheckpointOutcome::Interrupted => panic!("nothing interrupts the resumed leg"),
        }
        series.finish().expect("series finish");
        run.finish().expect("finish");
    }

    let straight = std::fs::read_to_string(straight_dir.join("sr.series.jsonl")).expect("read");
    let resumed = std::fs::read_to_string(resumed_dir.join("sr.series.jsonl")).expect("read");
    assert_eq!(
        strip_volatile(&resumed),
        strip_volatile(&straight),
        "resume must continue the sidecar byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// PR 10 pin: turning on estimate telemetry and `--target-rse` early
/// stopping must not perturb the deterministic contract as long as the
/// target is never reached. Estimate snapshots live only in the series
/// sidecar (never the main event stream), and an unreachable target
/// leaves both the stripped stream and the sidecar byte-identical to a
/// run with early stopping disabled.
#[test]
fn unreached_target_rse_and_estimates_leave_the_stream_byte_identical() {
    use aegis_experiments::checkpoint::{
        run_fig567_checkpointed, CheckpointCtl, CheckpointOutcome,
    };
    use std::sync::atomic::AtomicBool;

    let dir = std::env::temp_dir().join("aegis-det-target-rse");
    let _ = std::fs::remove_dir_all(&dir);

    let leg = |tag: &str, target_rse: Option<f64>| {
        let opts = RunOptions {
            pages: 4,
            seed: 13,
            ..RunOptions::default()
        };
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("tr", buf.clone()).expect("buffer sink");
        let series_dir = dir.join(tag);
        let series = SeriesWriter::create("tr", &series_dir, 0).expect("series");
        let observer = RunObserver {
            registry: Some(run.registry()),
            series: Some(&series),
            ..RunObserver::default()
        };
        let ctl = CheckpointCtl {
            path: dir.join(format!("{tag}.ckpt.json")),
            every: 2,
            interrupted: &AtomicBool::new(false),
            resume: None,
            fingerprint: vec![("command".to_owned(), "fig5".to_owned())],
            target_rse,
        };
        let results = match run_fig567_checkpointed(&opts, &observer, false, &ctl)
            .expect("checkpointed run")
        {
            CheckpointOutcome::Complete(results) => results,
            CheckpointOutcome::Interrupted => panic!("nothing interrupts this leg"),
        };
        series.finish().expect("series finish");
        run.finish().expect("finish");
        let sidecar = std::fs::read_to_string(series_dir.join("tr.series.jsonl")).expect("sidecar");
        let summary_bits: Vec<(String, u64, u64)> = results
            .by_block
            .iter()
            .flat_map(|(_, summaries)| summaries.iter())
            .map(|s| {
                (
                    s.name.clone(),
                    s.mean_lifetime.to_bits(),
                    s.mean_faults_recovered.to_bits(),
                )
            })
            .collect();
        (buf.text(), sidecar, summary_bits)
    };

    // An RSE of 1e-12 is unreachable at 4 pages: the early-stop predicate
    // is evaluated at every barrier and never fires.
    let (stream_off, sidecar_off, results_off) = leg("off", None);
    let (stream_on, sidecar_on, results_on) = leg("on", Some(1e-12));
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        strip_volatile(&stream_on),
        strip_volatile(&stream_off),
        "an unreached --target-rse must not change the deterministic stream"
    );
    assert_eq!(
        strip_volatile(&sidecar_on),
        strip_volatile(&sidecar_off),
        "an unreached --target-rse must not change the series sidecar"
    );
    assert_eq!(
        results_on, results_off,
        "an unreached --target-rse must not change the results"
    );
    assert!(
        sidecar_on.contains("\"event\": \"series_estimate\""),
        "unit barriers must snapshot estimates into the sidecar"
    );
    assert!(
        !stream_on.contains("series_estimate"),
        "estimate snapshots must never leak into the main event stream"
    );
}

/// Block-death forensics is an exact replay: for every fig5 scheme, the
/// re-derived fault history reaches the same outcome as the engine's
/// block loop (same entropy consumption, same short-circuiting), and the
/// rendered report is byte-identical across replays.
#[test]
fn block_forensics_replays_the_engine_decision_for_decision() {
    for criterion in [
        FailureCriterion::default(),
        FailureCriterion::GuaranteedAllData,
    ] {
        let cfg = BlockTraceConfig {
            seed: 42,
            page_bits: 4096 * 8,
            block_bits: 512,
            criterion,
            page: 1,
            block: 12,
            partial_fraction: 0.0,
        };
        let timeline = derive_block_timeline(&cfg).expect("valid geometry");
        for policy in schemes::fig5_schemes(512) {
            let trace = trace_block(policy.as_ref(), &timeline, cfg.criterion);
            let engine = evaluate_block(policy.as_ref(), &timeline, cfg.criterion);
            assert_eq!(
                trace.outcome,
                engine,
                "{} must replay the engine verdict",
                policy.name()
            );
            let replayed = derive_block_timeline(&cfg).expect("valid geometry");
            assert_eq!(
                trace.report(&cfg),
                trace_block(policy.as_ref(), &replayed, cfg.criterion).report(&cfg),
                "{} report must be byte-identical across replays",
                policy.name()
            );
        }
    }
}

/// Distribution helpers consume entropy identically regardless of how the
/// generator is accessed (directly or through `dyn RngCore`), so
/// refactors that change static dispatch to dynamic cannot shift streams.
#[test]
fn dispatch_does_not_shift_streams() {
    let mut direct = SmallRng::seed_from_u64(3);
    let mut boxed: Box<dyn RngCore> = Box::new(SmallRng::seed_from_u64(3));
    for _ in 0..256 {
        assert_eq!(
            direct.random_range(0..1000usize),
            boxed.random_range(0..1000usize)
        );
        assert_eq!(
            direct.random::<f64>().to_bits(),
            boxed.random::<f64>().to_bits()
        );
        assert_eq!(direct.random_bool(0.3), boxed.random_bool(0.3));
    }
}

/// Page-range execution is a pure reindexing of the full run: evaluating
/// `[0, k)` and `[k, pages)` separately and concatenating gives the
/// bit-identical result of one `[0, pages)` pass, because every page's
/// randomness is its own seed-disjoint substream of the master seed.
/// This is the property checkpoint chunks and campaign shards build on.
#[test]
fn page_ranges_concatenate_to_the_full_run() {
    use aegis_pcm::pcm::montecarlo::{run_memory_range_with, RunHooks};

    let cfg = SimConfig::scaled(5, 512, 21);
    let policy = AegisPolicy::new(Rectangle::new(9, 61, 512).unwrap());
    let hooks = RunHooks::default();
    let full = run_memory_range_with(&policy, &cfg, 0, cfg.pages, &hooks);
    for split in 0..=cfg.pages {
        let head = run_memory_range_with(&policy, &cfg, 0, split, &hooks);
        let tail = run_memory_range_with(&policy, &cfg, split, cfg.pages, &hooks);
        let glue =
            |a: &[f64], b: &[f64]| -> Vec<u64> { a.iter().chain(b).map(|v| v.to_bits()).collect() };
        assert_eq!(
            glue(&head.page_lifetimes, &tail.page_lifetimes),
            full.page_lifetimes
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "split at {split} must concatenate bit-identically"
        );
        assert_eq!(
            glue(&head.unprotected_lifetimes, &tail.unprotected_lifetimes),
            full.unprotected_lifetimes
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        let mut faults = head.faults_recovered.clone();
        faults.extend(&tail.faults_recovered);
        assert_eq!(faults, full.faults_recovered);
        assert_eq!(head.capped_pages + tail.capped_pages, full.capped_pages);
    }
}

/// An interrupted-then-resumed checkpointed fig5/6/7 run serializes the
/// byte-identical deterministic event stream of a straight run, and its
/// results match bit for bit — the tentpole contract of `--resume`.
#[test]
fn checkpoint_interrupt_and_resume_replays_the_straight_run() {
    use aegis_experiments::checkpoint::{
        run_fig567_checkpointed, Checkpoint, CheckpointCtl, CheckpointOutcome,
    };
    use aegis_experiments::fig567;
    use std::sync::atomic::{AtomicBool, Ordering};

    let opts = RunOptions {
        pages: 4,
        seed: 13,
        ..RunOptions::default()
    };
    let dir = std::env::temp_dir().join("aegis-det-ckpt-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("det.ckpt.json");

    // Straight reference run, stream captured in memory.
    let straight_stream = {
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("ck-det", buf.clone()).expect("buffer sink");
        let observer = RunObserver::with_registry(run.registry());
        let _ = fig567::run_with_mode(&opts, &observer, false);
        run.finish().expect("finish");
        buf.text()
    };

    // Interrupted leg: the "SIGINT" lands before the first chunk barrier,
    // so the run snapshots immediately and stops.
    {
        let interrupted = AtomicBool::new(true);
        let ctl = CheckpointCtl {
            path: path.clone(),
            every: 2,
            interrupted: &interrupted,
            resume: None,
            fingerprint: vec![("command".to_owned(), "fig5".to_owned())],
            target_rse: None,
        };
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("ck-det", buf.clone()).expect("buffer sink");
        let observer = RunObserver::with_registry(run.registry());
        match run_fig567_checkpointed(&opts, &observer, false, &ctl).expect("checkpointed run") {
            CheckpointOutcome::Interrupted => {}
            CheckpointOutcome::Complete(_) => panic!("pending interrupt must stop the run"),
        }
        assert!(path.exists(), "interruption must leave a snapshot behind");
        run.finish().expect("finish");
        interrupted.store(false, Ordering::SeqCst);
    }

    // Resumed leg: continue from the snapshot to completion.
    let (resumed, resumed_stream) = {
        let resume = Checkpoint::load(&path).expect("snapshot loads");
        let interrupted = AtomicBool::new(false);
        let ctl = CheckpointCtl {
            path: path.clone(),
            every: 2,
            interrupted: &interrupted,
            resume: Some(resume),
            fingerprint: vec![("command".to_owned(), "fig5".to_owned())],
            target_rse: None,
        };
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("ck-det", buf.clone()).expect("buffer sink");
        let observer = RunObserver::with_registry(run.registry());
        let results =
            match run_fig567_checkpointed(&opts, &observer, false, &ctl).expect("resumed run") {
                CheckpointOutcome::Complete(results) => results,
                CheckpointOutcome::Interrupted => panic!("nothing interrupts the resumed leg"),
            };
        run.finish().expect("finish");
        (results, buf.text())
    };
    assert!(!path.exists(), "completion must remove the snapshot");
    assert_eq!(
        strip_volatile(&resumed_stream),
        strip_volatile(&straight_stream),
        "resume must serialize the straight run's deterministic stream byte for byte"
    );

    let straight = {
        let observer = RunObserver::default();
        fig567::run_with_mode(&opts, &observer, false)
    };
    assert_eq!(resumed.by_block.len(), straight.by_block.len());
    for ((rb, rs), (sb, ss)) in resumed.by_block.iter().zip(&straight.by_block) {
        assert_eq!(rb, sb);
        for (r, s) in rs.iter().zip(ss) {
            assert_eq!(r.name, s.name);
            assert_eq!(
                r.mean_faults_recovered.to_bits(),
                s.mean_faults_recovered.to_bits()
            );
            assert_eq!(r.mean_lifetime.to_bits(), s.mean_lifetime.to_bits());
            assert_eq!(r.half_lifetime.to_bits(), s.half_lifetime.to_bits());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flattens a fig8 sweep into a bit-exact comparison key.
fn fig8_bits(results: &aegis_experiments::fig8::Fig8) -> Vec<(usize, String, u64, u64)> {
    results
        .by_fraction
        .iter()
        .flat_map(|(percent, summaries)| {
            summaries.iter().map(|s| {
                (
                    *percent,
                    s.name.clone(),
                    s.mean_faults_recovered.to_bits(),
                    s.half_lifetime.to_bits(),
                )
            })
        })
        .collect()
}

/// The fig8 partially-stuck sweep obeys the same contract as every other
/// figure: worker threads are a pure throughput knob, the same seed
/// replays bit-identical results, and a different seed actually changes
/// them — including the partial-fault timelines the sweep is built on.
#[test]
fn fig8_sweep_is_thread_count_independent_and_seed_sensitive() {
    use aegis_experiments::fig8;
    let sweep = |seed: u64, threads: Option<usize>| {
        let opts = RunOptions {
            pages: 3,
            seed,
            threads,
            ..RunOptions::default()
        };
        fig8_bits(&fig8::run_with(&opts, &RunObserver::default()))
    };
    let single = sweep(31, Some(1));
    assert_eq!(single, sweep(31, Some(1)), "same seed must replay");
    for threads in [2usize, 4] {
        assert_eq!(
            single,
            sweep(31, Some(threads)),
            "threads={threads} must match the single-thread sweep"
        );
    }
    assert_ne!(single, sweep(32, Some(1)), "different seeds must differ");
}

/// Runs the fig8 sweep with telemetry attached (optionally traced) and
/// returns the raw JSONL event stream.
fn fig8_stream(seed: u64, threads: Option<usize>, traced: bool) -> String {
    let buf = SharedBuf::new();
    let run = RunTelemetry::with_buffer("fig8-det", buf.clone()).expect("buffer sink");
    let opts = RunOptions {
        pages: 2,
        seed,
        threads,
        ..RunOptions::default()
    };
    let tracer = if traced {
        Tracer::new(1024)
    } else {
        Tracer::disabled()
    };
    let observer = RunObserver {
        registry: Some(run.registry()),
        tracer: tracer.is_enabled().then_some(&tracer),
        ..RunObserver::default()
    };
    let _ = aegis_experiments::fig8::run_with(&opts, &observer);
    if traced {
        tracer
            .finish("fig8-det")
            .expect("an enabled tracer yields a log");
    }
    run.finish().expect("finish");
    buf.text()
}

/// fig8's telemetry stream is covered by the byte-identity contract:
/// thread counts and wall-clock tracing must not change a single stripped
/// byte, and reseeding must.
#[test]
fn fig8_telemetry_is_byte_identical_across_threads_and_tracing() {
    let single = fig8_stream(11, Some(1), false);
    assert_eq!(
        strip_volatile(&single),
        strip_volatile(&fig8_stream(11, Some(4), false)),
        "fig8 must stay thread-count independent"
    );
    assert_eq!(
        strip_volatile(&single),
        strip_volatile(&fig8_stream(11, Some(2), true)),
        "tracing a fig8 run must not perturb the stream"
    );
    assert_ne!(
        strip_volatile(&single),
        strip_volatile(&fig8_stream(12, Some(1), false)),
        "different seeds must change observed metrics"
    );
}

/// An interrupted-then-resumed checkpointed fig8 run serializes the
/// byte-identical deterministic event stream of a straight run, and its
/// sweep results match bit for bit.
#[test]
fn fig8_checkpoint_interrupt_and_resume_replays_the_straight_run() {
    use aegis_experiments::checkpoint::{
        run_fig8_checkpointed, Checkpoint, CheckpointCtl, Fig8CheckpointOutcome,
    };
    use aegis_experiments::fig8;
    use std::sync::atomic::AtomicBool;

    let opts = RunOptions {
        pages: 4,
        seed: 13,
        ..RunOptions::default()
    };
    let dir = std::env::temp_dir().join("aegis-det-fig8-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("fig8.ckpt.json");

    // Straight reference run, stream captured in memory.
    let straight_stream = {
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("f8-det", buf.clone()).expect("buffer sink");
        let observer = RunObserver::with_registry(run.registry());
        let _ = fig8::run_with(&opts, &observer);
        run.finish().expect("finish");
        buf.text()
    };

    // Interrupted leg: the pending "SIGINT" stops the run at the first
    // chunk barrier, leaving a snapshot behind.
    {
        let interrupted = AtomicBool::new(true);
        let ctl = CheckpointCtl {
            path: path.clone(),
            every: 2,
            interrupted: &interrupted,
            resume: None,
            fingerprint: vec![("command".to_owned(), "fig8".to_owned())],
            target_rse: None,
        };
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("f8-det", buf.clone()).expect("buffer sink");
        let observer = RunObserver::with_registry(run.registry());
        match run_fig8_checkpointed(&opts, &observer, &ctl).expect("checkpointed run") {
            Fig8CheckpointOutcome::Interrupted => {}
            Fig8CheckpointOutcome::Complete(_) => panic!("pending interrupt must stop the run"),
        }
        assert!(path.exists(), "interruption must leave a snapshot behind");
        run.finish().expect("finish");
    }

    // Resumed leg: continue from the snapshot to completion.
    let (resumed, resumed_stream) = {
        let resume = Checkpoint::load(&path).expect("snapshot loads");
        let interrupted = AtomicBool::new(false);
        let ctl = CheckpointCtl {
            path: path.clone(),
            every: 2,
            interrupted: &interrupted,
            resume: Some(resume),
            fingerprint: vec![("command".to_owned(), "fig8".to_owned())],
            target_rse: None,
        };
        let buf = SharedBuf::new();
        let run = RunTelemetry::with_buffer("f8-det", buf.clone()).expect("buffer sink");
        let observer = RunObserver::with_registry(run.registry());
        let results = match run_fig8_checkpointed(&opts, &observer, &ctl).expect("resumed run") {
            Fig8CheckpointOutcome::Complete(results) => results,
            Fig8CheckpointOutcome::Interrupted => panic!("nothing interrupts the resumed leg"),
        };
        run.finish().expect("finish");
        (results, buf.text())
    };
    assert!(!path.exists(), "completion must remove the snapshot");
    assert_eq!(
        strip_volatile(&resumed_stream),
        strip_volatile(&straight_stream),
        "resume must serialize the straight run's deterministic stream byte for byte"
    );
    let straight = fig8::run_with(&opts, &RunObserver::default());
    assert_eq!(fig8_bits(&resumed), fig8_bits(&straight));
    let _ = std::fs::remove_dir_all(&dir);
}

/// fig8 shard stripes tile the page space and glue back into the full
/// sweep bit for bit — the library-level half of the `shard`/`merge` CLI
/// contract for the new figure.
#[test]
fn fig8_shard_stripes_reproduce_the_full_sweep() {
    use aegis_experiments::shardmerge::{run_fig8_shard_units, shard_range};

    let opts = RunOptions {
        pages: 4,
        seed: 17,
        ..RunOptions::default()
    };
    let observer = RunObserver::default();
    let full = run_fig8_shard_units(&opts, &observer, 0, opts.pages);
    let parts: Vec<_> = (0..2usize)
        .map(|shard_id| {
            let (lo, hi) = shard_range(opts.pages, 2, shard_id);
            run_fig8_shard_units(&opts, &observer, lo, hi)
        })
        .collect();
    for (unit_idx, unit) in full.iter().enumerate() {
        let mut lifetimes = Vec::new();
        let mut faults = Vec::new();
        for part in &parts {
            lifetimes.extend(
                part[unit_idx]
                    .run
                    .page_lifetimes
                    .iter()
                    .map(|v| v.to_bits()),
            );
            faults.extend(part[unit_idx].run.faults_recovered.iter().copied());
        }
        assert_eq!(
            lifetimes,
            unit.run
                .page_lifetimes
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "unit {} must reassemble bit-identically",
            unit.scheme
        );
        assert_eq!(faults, unit.run.faults_recovered);
    }
}

/// Seed-disjoint shard substreams: every shard stripes a distinct page
/// range, the ranges tile the page space, and gluing per-shard unit
/// results back together reproduces the full run bit for bit.
#[test]
fn shard_stripes_tile_and_reproduce_the_full_run() {
    use aegis_experiments::shardmerge::{run_shard_units, shard_range};

    let opts = RunOptions {
        pages: 5,
        seed: 17,
        ..RunOptions::default()
    };
    let shards = 3;
    let mut edges = Vec::new();
    for shard_id in 0..shards {
        let (lo, hi) = shard_range(opts.pages, shards, shard_id);
        edges.push((lo, hi));
    }
    assert_eq!(edges.first().map(|&(lo, _)| lo), Some(0));
    assert_eq!(edges.last().map(|&(_, hi)| hi), Some(opts.pages));
    for pair in edges.windows(2) {
        assert_eq!(pair[0].1, pair[1].0, "stripes must tile without gaps");
    }

    let observer = RunObserver::default();
    let full = run_shard_units(&opts, &observer, false, 0, opts.pages);
    let parts: Vec<_> = edges
        .iter()
        .map(|&(lo, hi)| run_shard_units(&opts, &observer, false, lo, hi))
        .collect();
    for (unit_idx, unit) in full.iter().enumerate() {
        let mut lifetimes = Vec::new();
        let mut faults = Vec::new();
        for part in &parts {
            lifetimes.extend(
                part[unit_idx]
                    .run
                    .page_lifetimes
                    .iter()
                    .map(|v| v.to_bits()),
            );
            faults.extend(part[unit_idx].run.faults_recovered.iter().copied());
        }
        assert_eq!(
            lifetimes,
            unit.run
                .page_lifetimes
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "unit {} must reassemble bit-identically",
            unit.scheme
        );
        assert_eq!(faults, unit.run.faults_recovered);
    }
}
